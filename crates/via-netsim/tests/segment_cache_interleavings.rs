//! Exhaustive-interleaving harness for the segment-state memo tables.
//!
//! `PerfModel` memoizes per-segment latent state on first touch: all four
//! families (access, backbone, direct-WAN, AS→relay) live in pre-sized
//! `OnceLock` slot tables, indexed by their dense id/pair codes. The
//! contract under concurrent first touch is **build exactly once, observe
//! identical state** — a duplicated build would burn a second RNG stream
//! and a torn read would leak schedule order into results.
//!
//! Two layers of evidence:
//!
//! 1. [`two_thread_first_touch_schedules_are_exhaustive`] enumerates every
//!    interleaving of two logical threads each performing (build, read)
//!    against the same segment. `OnceLock::get_or_init` is a single atomic
//!    protocol step — any real schedule is equivalent to one sequential
//!    order of those steps — so running the six orders sequentially
//!    explores the whole coarse-grained schedule space for each segment
//!    family.
//! 2. [`racing_first_touch_builds_once_per_segment`] races real threads
//!    through the same first touch behind a barrier. This is the test the
//!    nightly ThreadSanitizer workflow runs under `-Zsanitizer=thread`.

// Test-harness helpers outside #[test] fns: panicking on a broken schedule
// generator is the correct behavior here, as in any test.
#![allow(clippy::expect_used)]

use std::sync::{Arc, Barrier};

use via_model::ids::{AsId, RelayId};
use via_model::time::SimTime;
use via_netsim::{SegMetrics, Segment, World, WorldConfig};

/// One segment per memo family: each lives in its own dense slot table.
fn family_segments() -> Vec<(&'static str, Segment)> {
    vec![
        ("access/OnceLock", Segment::Access(AsId(1))),
        (
            "backbone/OnceLock",
            Segment::backbone(RelayId(0), RelayId(2)),
        ),
        ("direct-wan/OnceLock", Segment::direct(AsId(0), AsId(3))),
        ("relay-wan/OnceLock", Segment::RelayWan(AsId(2), RelayId(1))),
    ]
}

/// A logical thread's program: build (first touch via `warm`) then read.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Step {
    Build(usize),
    Read(usize),
}

/// All interleavings of two two-step threads that preserve each thread's
/// program order: C(4, 2) = 6 schedules.
fn two_thread_schedules() -> Vec<Vec<Step>> {
    let mut schedules = Vec::new();
    // Choose the positions of thread 0's (Build, Read) among four slots.
    for a in 0..4 {
        for b in (a + 1)..4 {
            let mut sched = vec![None; 4];
            sched[a] = Some(Step::Build(0));
            sched[b] = Some(Step::Read(0));
            let mut other = [Step::Build(1), Step::Read(1)].into_iter();
            let sched: Vec<Step> = sched
                .into_iter()
                .map(|s| s.unwrap_or_else(|| other.next().expect("two free slots")))
                .collect();
            schedules.push(sched);
        }
    }
    assert_eq!(schedules.len(), 6);
    schedules
}

#[test]
fn two_thread_first_touch_schedules_are_exhaustive() {
    let t0 = SimTime(0);
    for (family, seg) in family_segments() {
        // Reference state from an undisputed sequential first touch.
        let reference = {
            let world = World::generate(&WorldConfig::tiny(), 7);
            world.perf().segment_mean(seg, t0)
        };

        for sched in two_thread_schedules() {
            // Fresh world per schedule: same seed, so every schedule starts
            // from an identical cold cache.
            let world = World::generate(&WorldConfig::tiny(), 7);
            let perf = world.perf();
            let mut reads: [Option<SegMetrics>; 2] = [None, None];
            for step in &sched {
                match *step {
                    Step::Build(_) => {
                        perf.warm([seg]);
                    }
                    Step::Read(t) => reads[t] = Some(perf.segment_mean(seg, t0)),
                }
            }
            assert_eq!(
                perf.segment_builds(),
                1,
                "{family}: schedule {sched:?} built the segment more than once"
            );
            for (t, read) in reads.iter().enumerate() {
                assert_eq!(
                    read.expect("both threads read"),
                    reference,
                    "{family}: thread {t} under schedule {sched:?} observed a \
                     state differing from the sequential reference"
                );
            }
        }
    }
}

/// Real-thread race over the same first touches. Eight workers all hit the
/// same four segments (one per memo family) back-to-back from a barrier;
/// the memo must build each exactly once and every worker must observe the
/// same state the sequential reference does.
#[test]
fn racing_first_touch_builds_once_per_segment() {
    let segments: Vec<Segment> = family_segments().into_iter().map(|(_, s)| s).collect();
    let t0 = SimTime(0);
    let reference: Vec<SegMetrics> = {
        let world = World::generate(&WorldConfig::tiny(), 7);
        segments
            .iter()
            .map(|&s| world.perf().segment_mean(s, t0))
            .collect()
    };

    let world = Arc::new(World::generate(&WorldConfig::tiny(), 7));
    let workers = 8;
    let barrier = Arc::new(Barrier::new(workers));
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let world = Arc::clone(&world);
            let barrier = Arc::clone(&barrier);
            let segments = segments.clone();
            std::thread::spawn(move || {
                barrier.wait();
                // Half the workers warm first (build step), half read cold:
                // both first-touch paths race on every table.
                if w % 2 == 0 {
                    world.perf().warm(segments.iter().copied());
                }
                segments
                    .iter()
                    .map(|&s| world.perf().segment_mean(s, t0))
                    .collect::<Vec<SegMetrics>>()
            })
        })
        .collect();

    for h in handles {
        let reads = h.join().expect("worker panicked");
        assert_eq!(reads, reference, "racing reader observed divergent state");
    }
    assert_eq!(
        world.perf().segment_builds(),
        segments.len() as u64,
        "concurrent first touches duplicated a segment build"
    );
}
