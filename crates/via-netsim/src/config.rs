//! World-generation configuration and tunable performance knobs.

use serde::{Deserialize, Serialize};

/// Top-level configuration for synthesizing a world.
///
/// Presets: [`WorldConfig::tiny`] for doc tests and unit tests,
/// [`WorldConfig::small`] for integration tests, and
/// [`WorldConfig::paper_scale`] for the experiment binaries (all 40 catalog
/// countries, ~200 ASes, 30 relays — the same *shape* as the paper's world,
/// scaled to a laptop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of countries, taken as a prefix of the catalog (max 40).
    pub n_countries: usize,
    /// Mean number of eyeball ASes per country; actual counts vary with
    /// country weight.
    pub ases_per_country: usize,
    /// Number of relay datacenters, taken as a prefix of the site catalog
    /// (max 30).
    pub n_relays: usize,
    /// Simulated horizon in days; episode processes are materialized up to
    /// this day.
    pub horizon_days: u64,
    /// Number of bouncing relay candidates enumerated per AS pair (nearest
    /// relays by detour distance).
    pub bounce_candidates: usize,
    /// Number of transit relay-pair candidates enumerated per AS pair.
    pub transit_candidates: usize,
    /// Performance-model tunables.
    pub perf: PerfKnobs,
}

impl WorldConfig {
    /// Minimal world for doc tests: 6 countries, 1–2 ASes each, 6 relays.
    pub fn tiny() -> Self {
        Self {
            n_countries: 6,
            ases_per_country: 2,
            n_relays: 6,
            horizon_days: 10,
            bounce_candidates: 4,
            transit_candidates: 4,
            perf: PerfKnobs::default(),
        }
    }

    /// Mid-size world for integration tests.
    pub fn small() -> Self {
        Self {
            n_countries: 16,
            ases_per_country: 3,
            n_relays: 12,
            horizon_days: 21,
            bounce_candidates: 6,
            transit_candidates: 6,
            perf: PerfKnobs::default(),
        }
    }

    /// Experiment-scale world mirroring the paper's diversity: all 40
    /// catalog countries, ~200 ASes, 30 relay sites, 8 weeks.
    pub fn paper_scale() -> Self {
        Self {
            n_countries: 40,
            ases_per_country: 5,
            n_relays: 30,
            horizon_days: 56,
            bounce_candidates: 8,
            transit_candidates: 8,
            perf: PerfKnobs::default(),
        }
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig::small()
    }
}

/// Tunables of the generative performance model.
///
/// The defaults are calibrated (see `via-experiments`, `fig02`) so that the
/// distribution of default-path metrics matches the paper's Figure 2: roughly
/// 15 % of calls beyond each poor threshold (320 ms RTT, 1.2 % loss, 12 ms
/// jitter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfKnobs {
    // --- access (last-mile) components, scaled by country tier 1..4 ---
    /// Mean access RTT contribution in ms at tier 1; grows with tier.
    pub access_rtt_base_ms: f64,
    /// Mean access loss in percent at tier 1; grows with tier.
    pub access_loss_base_pct: f64,
    /// Mean access jitter in ms at tier 1; grows with tier.
    pub access_jitter_base_ms: f64,

    // --- direct (BGP) WAN path ---
    /// Median RTT inflation over the speed-of-light bound for a domestic
    /// tier-1 pair.
    pub direct_inflation_base: f64,
    /// Log-scale sigma of pair inflation.
    pub direct_inflation_sigma: f64,
    /// Extra multiplicative inflation per tier step of the worse endpoint.
    pub direct_inflation_tier_step: f64,
    /// Extra inflation multiplier applied to international pairs.
    pub direct_inflation_intl: f64,
    /// Probability that an international pair is "pathological" (severe
    /// routing detour).
    pub pathological_prob_intl: f64,
    /// Probability that a domestic pair is pathological.
    pub pathological_prob_domestic: f64,
    /// Mean WAN loss (percent) of a tier-1 domestic direct path.
    pub direct_loss_base_pct: f64,
    /// Mean WAN jitter (ms) of a tier-1 domestic direct path.
    pub direct_jitter_base_ms: f64,

    // --- client ↔ relay WAN legs (cloud on-ramps are well peered) ---
    /// Median inflation of an AS→relay leg.
    pub relay_inflation_base: f64,
    /// Log-scale sigma of relay-leg inflation.
    pub relay_inflation_sigma: f64,
    /// Mean WAN loss (percent) of an AS→relay leg at tier 1.
    pub relay_loss_base_pct: f64,
    /// Mean WAN jitter (ms) of an AS→relay leg at tier 1.
    pub relay_jitter_base_ms: f64,

    // --- private backbone ---
    /// RTT inflation of the private backbone over the fiber bound.
    pub backbone_inflation: f64,
    /// Loss (percent) on backbone segments.
    pub backbone_loss_pct: f64,
    /// Jitter (ms) on backbone segments.
    pub backbone_jitter_ms: f64,
    /// Fixed per-relay forwarding delay added per traversed relay, ms
    /// (applied once per relay on the round trip).
    pub relay_hop_cost_ms: f64,

    // --- temporal dynamics ---
    /// Fraction of WAN segments that are chronically congested.
    pub chronic_fraction: f64,
    /// Fraction of WAN segments that are occasionally flaky (the rest are
    /// stable).
    pub flaky_fraction: f64,
    /// RTT added by a full-severity episode on a direct path, ms.
    pub episode_rtt_ms: f64,
    /// Loss multiplier at full episode severity.
    pub episode_loss_mult: f64,
    /// Jitter multiplier at full episode severity.
    pub episode_jitter_mult: f64,
    /// Scale of the diurnal swing (0 = none).
    pub diurnal_amplitude: f64,

    // --- per-call noise ---
    /// Probability that a call hits a transient outlier (severe short-lived
    /// congestion: RTT/jitter multiplied, loss added). These heavy tails are
    /// why VIA normalizes bandit rewards robustly (§4.5).
    pub call_spike_prob: f64,
    /// Maximum RTT/jitter multiplier of a spike (drawn uniformly in
    /// [1.5, this]).
    pub call_spike_mult: f64,
    /// Log-sigma of the multiplicative per-call RTT noise.
    pub call_rtt_sigma: f64,
    /// Shape of the per-call Gamma loss draw (small = heavier tail).
    pub call_loss_shape: f64,
    /// Log-sigma of the multiplicative per-call jitter noise.
    pub call_jitter_sigma: f64,
}

impl Default for PerfKnobs {
    fn default() -> Self {
        Self {
            access_rtt_base_ms: 5.0,
            access_loss_base_pct: 0.016,
            access_jitter_base_ms: 1.1,

            direct_inflation_base: 1.5,
            direct_inflation_sigma: 0.35,
            direct_inflation_tier_step: 0.22,
            direct_inflation_intl: 1.2,
            pathological_prob_intl: 0.10,
            pathological_prob_domestic: 0.03,
            direct_loss_base_pct: 0.04,
            direct_jitter_base_ms: 1.4,

            relay_inflation_base: 1.3,
            relay_inflation_sigma: 0.22,
            relay_loss_base_pct: 0.025,
            relay_jitter_base_ms: 0.8,

            backbone_inflation: 1.1,
            backbone_loss_pct: 0.01,
            backbone_jitter_ms: 0.4,
            relay_hop_cost_ms: 2.0,

            chronic_fraction: 0.10,
            flaky_fraction: 0.25,
            episode_rtt_ms: 90.0,
            episode_loss_mult: 6.0,
            episode_jitter_mult: 4.0,
            diurnal_amplitude: 0.6,

            call_spike_prob: 0.03,
            call_spike_mult: 4.0,
            call_rtt_sigma: 0.08,
            call_loss_shape: 0.45,
            call_jitter_sigma: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let t = WorldConfig::tiny();
        let s = WorldConfig::small();
        let p = WorldConfig::paper_scale();
        assert!(t.n_countries < s.n_countries && s.n_countries < p.n_countries);
        assert!(t.n_relays < s.n_relays && s.n_relays < p.n_relays);
    }

    #[test]
    fn presets_fit_catalogs() {
        let p = WorldConfig::paper_scale();
        assert!(p.n_countries <= crate::catalog::COUNTRIES.len());
        assert!(p.n_relays <= crate::catalog::SITES.len());
    }

    #[test]
    fn default_knobs_are_sane() {
        let k = PerfKnobs::default();
        assert!(k.direct_inflation_base > 1.0);
        assert!(k.relay_inflation_base < k.direct_inflation_base);
        assert!(k.backbone_inflation < k.relay_inflation_base);
        assert!(k.chronic_fraction + k.flaky_fraction < 1.0);
        assert!(k.episode_loss_mult >= 1.0 && k.episode_jitter_mult >= 1.0);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = WorldConfig::paper_scale();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: WorldConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
