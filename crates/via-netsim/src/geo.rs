//! Geographic primitives: coordinates, great-circle distance, and the
//! speed-of-light lower bound on round-trip time.
//!
//! The synthetic world places countries, ASes and datacenters at real
//! latitude/longitude coordinates. The *minimum possible* RTT between two
//! points is set by the great-circle distance and the propagation speed of
//! light in fiber (≈ 2/3 c ≈ 200 km/ms one way). Real Internet paths are
//! longer — path "inflation" over this bound is the central latent variable of
//! the performance model, and routing around inflated default paths is exactly
//! what a managed overlay exploits.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// One-way propagation speed of light in fiber, km per millisecond.
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// A point on the Earth's surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Builds a point, validating the coordinate ranges.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat_deg), "latitude out of range");
        assert!(
            (-180.0..=180.0).contains(&lon_deg),
            "longitude out of range"
        );
        Self { lat_deg, lon_deg }
    }

    /// Great-circle (haversine) distance to `other`, in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }

    /// Speed-of-light lower bound on the *round-trip* time to `other`, in
    /// milliseconds, assuming fiber along the great circle.
    pub fn min_rtt_ms(&self, other: &GeoPoint) -> f64 {
        2.0 * self.distance_km(other) / FIBER_KM_PER_MS
    }

    /// Local solar hour of day in [0, 24) for a given UTC hour. Used by the
    /// diurnal load model: each AS experiences its congestion peak in its own
    /// evening.
    pub fn local_hour(&self, utc_hour: f64) -> f64 {
        (utc_hour + self.lon_deg / 15.0).rem_euclid(24.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyc() -> GeoPoint {
        GeoPoint::new(40.71, -74.01)
    }
    fn london() -> GeoPoint {
        GeoPoint::new(51.51, -0.13)
    }
    fn sydney() -> GeoPoint {
        GeoPoint::new(-33.87, 151.21)
    }

    #[test]
    fn haversine_known_distances() {
        // NYC–London ≈ 5 570 km, NYC–Sydney ≈ 15 990 km.
        let d1 = nyc().distance_km(&london());
        assert!((d1 - 5570.0).abs() < 60.0, "NYC-London got {d1}");
        let d2 = nyc().distance_km(&sydney());
        assert!((d2 - 15990.0).abs() < 160.0, "NYC-Sydney got {d2}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = nyc();
        let b = sydney();
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
        assert!(a.distance_km(&a) < 1e-9);
    }

    #[test]
    fn min_rtt_matches_distance() {
        // NYC–London light-in-fiber RTT ≈ 2 × 5570/200 ≈ 55.7 ms.
        let rtt = nyc().min_rtt_ms(&london());
        assert!((rtt - 55.7).abs() < 1.0, "got {rtt}");
    }

    #[test]
    fn local_hour_wraps() {
        let p = GeoPoint::new(0.0, 150.0); // UTC+10
        assert!((p.local_hour(20.0) - 6.0).abs() < 1e-9);
        let w = GeoPoint::new(0.0, -75.0); // UTC-5
        assert!((w.local_hour(2.0) - 21.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn rejects_bad_latitude() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    fn triangle_inequality_on_sphere() {
        let a = nyc();
        let b = london();
        let c = sydney();
        assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
    }
}
