//! Static catalogs of countries and datacenter sites.
//!
//! The synthetic world draws its geography from real places so that
//! propagation delays, time zones, and the domestic/international mix are
//! plausible. Each country carries:
//!
//! * a **tier** (1 = excellent to 4 = poor) summarizing typical access-network
//!   and peering quality — the knob behind the per-country PNR skew in
//!   Figure 4b of the paper;
//! * a **call weight** shaping how much traffic originates there.
//!
//! Datacenter sites approximate the footprint of a large cloud provider; the
//! paper's relays live in "many tens of datacenters and edge clusters
//! worldwide" inside a single AS.

/// Static description of a country in the catalog.
#[derive(Debug, Clone, Copy)]
pub struct CountryInfo {
    /// Human-readable name.
    pub name: &'static str,
    /// Representative latitude (population centroid-ish).
    pub lat: f64,
    /// Representative longitude.
    pub lon: f64,
    /// Infrastructure quality tier: 1 (excellent) … 4 (poor).
    pub tier: u8,
    /// Relative share of call traffic originating here.
    pub call_weight: f64,
}

/// Static description of a datacenter site hosting a relay.
#[derive(Debug, Clone, Copy)]
pub struct SiteInfo {
    /// Site name (metro area).
    pub name: &'static str,
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
}

/// Country catalog, ordered roughly by call volume. World generation takes a
/// prefix of this list, so small configs keep the most important geographies.
pub const COUNTRIES: &[CountryInfo] = &[
    CountryInfo {
        name: "United States",
        lat: 39.8,
        lon: -98.6,
        tier: 1,
        call_weight: 10.0,
    },
    CountryInfo {
        name: "India",
        lat: 22.0,
        lon: 79.0,
        tier: 3,
        call_weight: 9.0,
    },
    CountryInfo {
        name: "United Kingdom",
        lat: 52.4,
        lon: -1.5,
        tier: 1,
        call_weight: 5.0,
    },
    CountryInfo {
        name: "Germany",
        lat: 51.1,
        lon: 10.4,
        tier: 1,
        call_weight: 5.0,
    },
    CountryInfo {
        name: "Brazil",
        lat: -14.2,
        lon: -51.9,
        tier: 3,
        call_weight: 5.0,
    },
    CountryInfo {
        name: "Philippines",
        lat: 12.9,
        lon: 121.8,
        tier: 4,
        call_weight: 4.0,
    },
    CountryInfo {
        name: "Russia",
        lat: 55.7,
        lon: 37.6,
        tier: 3,
        call_weight: 4.0,
    },
    CountryInfo {
        name: "France",
        lat: 46.6,
        lon: 2.4,
        tier: 1,
        call_weight: 4.0,
    },
    CountryInfo {
        name: "Mexico",
        lat: 23.6,
        lon: -102.6,
        tier: 3,
        call_weight: 3.5,
    },
    CountryInfo {
        name: "Indonesia",
        lat: -2.5,
        lon: 118.0,
        tier: 4,
        call_weight: 3.5,
    },
    CountryInfo {
        name: "Pakistan",
        lat: 30.4,
        lon: 69.3,
        tier: 4,
        call_weight: 3.0,
    },
    CountryInfo {
        name: "Nigeria",
        lat: 9.1,
        lon: 8.7,
        tier: 4,
        call_weight: 3.0,
    },
    CountryInfo {
        name: "Canada",
        lat: 56.1,
        lon: -106.3,
        tier: 1,
        call_weight: 3.0,
    },
    CountryInfo {
        name: "Spain",
        lat: 40.5,
        lon: -3.7,
        tier: 2,
        call_weight: 3.0,
    },
    CountryInfo {
        name: "Italy",
        lat: 41.9,
        lon: 12.6,
        tier: 2,
        call_weight: 3.0,
    },
    CountryInfo {
        name: "Vietnam",
        lat: 14.1,
        lon: 108.3,
        tier: 3,
        call_weight: 2.5,
    },
    CountryInfo {
        name: "Poland",
        lat: 51.9,
        lon: 19.1,
        tier: 2,
        call_weight: 2.5,
    },
    CountryInfo {
        name: "Ukraine",
        lat: 48.4,
        lon: 31.2,
        tier: 3,
        call_weight: 2.5,
    },
    CountryInfo {
        name: "Egypt",
        lat: 26.8,
        lon: 30.8,
        tier: 4,
        call_weight: 2.5,
    },
    CountryInfo {
        name: "Turkey",
        lat: 39.0,
        lon: 35.2,
        tier: 3,
        call_weight: 2.5,
    },
    CountryInfo {
        name: "Australia",
        lat: -25.3,
        lon: 133.8,
        tier: 2,
        call_weight: 2.5,
    },
    CountryInfo {
        name: "Japan",
        lat: 36.2,
        lon: 138.3,
        tier: 1,
        call_weight: 2.5,
    },
    CountryInfo {
        name: "Bangladesh",
        lat: 23.7,
        lon: 90.4,
        tier: 4,
        call_weight: 2.0,
    },
    CountryInfo {
        name: "Netherlands",
        lat: 52.1,
        lon: 5.3,
        tier: 1,
        call_weight: 2.0,
    },
    CountryInfo {
        name: "South Korea",
        lat: 35.9,
        lon: 127.8,
        tier: 1,
        call_weight: 2.0,
    },
    CountryInfo {
        name: "Argentina",
        lat: -38.4,
        lon: -63.6,
        tier: 3,
        call_weight: 2.0,
    },
    CountryInfo {
        name: "South Africa",
        lat: -30.6,
        lon: 22.9,
        tier: 3,
        call_weight: 2.0,
    },
    CountryInfo {
        name: "Colombia",
        lat: 4.6,
        lon: -74.1,
        tier: 3,
        call_weight: 2.0,
    },
    CountryInfo {
        name: "Saudi Arabia",
        lat: 23.9,
        lon: 45.1,
        tier: 3,
        call_weight: 2.0,
    },
    CountryInfo {
        name: "United Arab Emirates",
        lat: 23.4,
        lon: 53.8,
        tier: 2,
        call_weight: 2.0,
    },
    CountryInfo {
        name: "Singapore",
        lat: 1.35,
        lon: 103.8,
        tier: 1,
        call_weight: 1.5,
    },
    CountryInfo {
        name: "Sweden",
        lat: 60.1,
        lon: 18.6,
        tier: 1,
        call_weight: 1.5,
    },
    CountryInfo {
        name: "Kenya",
        lat: -0.02,
        lon: 37.9,
        tier: 4,
        call_weight: 1.5,
    },
    CountryInfo {
        name: "Thailand",
        lat: 15.9,
        lon: 101.0,
        tier: 3,
        call_weight: 1.5,
    },
    CountryInfo {
        name: "Chile",
        lat: -35.7,
        lon: -71.5,
        tier: 2,
        call_weight: 1.5,
    },
    CountryInfo {
        name: "Israel",
        lat: 31.0,
        lon: 34.9,
        tier: 2,
        call_weight: 1.5,
    },
    CountryInfo {
        name: "Sri Lanka",
        lat: 7.9,
        lon: 80.8,
        tier: 3,
        call_weight: 1.0,
    },
    CountryInfo {
        name: "Norway",
        lat: 60.5,
        lon: 8.5,
        tier: 1,
        call_weight: 1.0,
    },
    CountryInfo {
        name: "Peru",
        lat: -9.2,
        lon: -75.0,
        tier: 3,
        call_weight: 1.0,
    },
    CountryInfo {
        name: "Morocco",
        lat: 31.8,
        lon: -7.1,
        tier: 3,
        call_weight: 1.0,
    },
];

/// Datacenter sites: a realistic global cloud footprint. World generation
/// takes a prefix, so small configs keep wide coverage (the list interleaves
/// regions).
pub const SITES: &[SiteInfo] = &[
    SiteInfo {
        name: "Virginia",
        lat: 38.9,
        lon: -77.5,
    },
    SiteInfo {
        name: "Amsterdam",
        lat: 52.37,
        lon: 4.9,
    },
    SiteInfo {
        name: "Singapore",
        lat: 1.35,
        lon: 103.8,
    },
    SiteInfo {
        name: "Sao Paulo",
        lat: -23.55,
        lon: -46.6,
    },
    SiteInfo {
        name: "Tokyo",
        lat: 35.68,
        lon: 139.7,
    },
    SiteInfo {
        name: "Dublin",
        lat: 53.35,
        lon: -6.3,
    },
    SiteInfo {
        name: "California",
        lat: 37.4,
        lon: -121.9,
    },
    SiteInfo {
        name: "Mumbai",
        lat: 19.08,
        lon: 72.88,
    },
    SiteInfo {
        name: "Sydney",
        lat: -33.87,
        lon: 151.21,
    },
    SiteInfo {
        name: "Frankfurt",
        lat: 50.11,
        lon: 8.68,
    },
    SiteInfo {
        name: "Hong Kong",
        lat: 22.32,
        lon: 114.17,
    },
    SiteInfo {
        name: "Texas",
        lat: 32.78,
        lon: -96.8,
    },
    SiteInfo {
        name: "London",
        lat: 51.51,
        lon: -0.13,
    },
    SiteInfo {
        name: "Seoul",
        lat: 37.57,
        lon: 126.98,
    },
    SiteInfo {
        name: "Johannesburg",
        lat: -26.2,
        lon: 28.05,
    },
    SiteInfo {
        name: "Paris",
        lat: 48.86,
        lon: 2.35,
    },
    SiteInfo {
        name: "Oregon",
        lat: 45.6,
        lon: -121.2,
    },
    SiteInfo {
        name: "Dubai",
        lat: 25.2,
        lon: 55.27,
    },
    SiteInfo {
        name: "Santiago",
        lat: -33.45,
        lon: -70.67,
    },
    SiteInfo {
        name: "Stockholm",
        lat: 59.33,
        lon: 18.07,
    },
    SiteInfo {
        name: "Chennai",
        lat: 13.08,
        lon: 80.27,
    },
    SiteInfo {
        name: "Ohio",
        lat: 40.0,
        lon: -83.0,
    },
    SiteInfo {
        name: "Warsaw",
        lat: 52.23,
        lon: 21.01,
    },
    SiteInfo {
        name: "Osaka",
        lat: 34.69,
        lon: 135.5,
    },
    SiteInfo {
        name: "Montreal",
        lat: 45.5,
        lon: -73.57,
    },
    SiteInfo {
        name: "Milan",
        lat: 45.46,
        lon: 9.19,
    },
    SiteInfo {
        name: "Jakarta",
        lat: -6.2,
        lon: 106.85,
    },
    SiteInfo {
        name: "Queretaro",
        lat: 20.59,
        lon: -100.39,
    },
    SiteInfo {
        name: "Madrid",
        lat: 40.42,
        lon: -3.7,
    },
    SiteInfo {
        name: "Melbourne",
        lat: -37.81,
        lon: 144.96,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;

    #[test]
    fn catalogs_are_nontrivial() {
        assert!(COUNTRIES.len() >= 40);
        assert!(SITES.len() >= 30);
    }

    #[test]
    fn coordinates_are_valid() {
        for c in COUNTRIES {
            let _ = GeoPoint::new(c.lat, c.lon);
            assert!((1..=4).contains(&c.tier), "{} tier", c.name);
            assert!(c.call_weight > 0.0);
        }
        for s in SITES {
            let _ = GeoPoint::new(s.lat, s.lon);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = COUNTRIES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTRIES.len());

        let mut sites: Vec<&str> = SITES.iter().map(|s| s.name).collect();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), SITES.len());
    }

    #[test]
    fn weights_are_descending_overall() {
        // The catalog is ordered by importance: the first entry should carry
        // the largest weight and the tail the smallest.
        assert!(COUNTRIES[0].call_weight >= COUNTRIES.last().unwrap().call_weight);
    }
}
