//! The ground-truth path-performance model.
//!
//! [`PerfModel`] answers two questions for any (source AS, destination AS,
//! relaying option, time):
//!
//! * [`PerfModel::option_mean`] — the *expected* metrics of the option at
//!   that instant (latent world state: static segment quality + active
//!   episodes + diurnal load). The oracle strategy of §3.2 reads this
//!   directly; no real system can.
//! * [`PerfModel::sample_option`] — one realized call's metrics: the mean
//!   plus heavy-tailed per-call noise. This is all that VIA and the baseline
//!   strategies ever observe, matching §5.1's methodology of drawing a random
//!   call from the same (pair, option, window) population.
//!
//! Segment latents are derived deterministically from the world seed, so the
//! model is a pure function of `(config, seed, query)` — queries can come in
//! any order, from any component, and agree.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Gamma, LogNormal};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock};
use via_model::ids::{AsId, RelayId};
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::seed;
use via_model::time::SimTime;

use crate::config::{PerfKnobs, WorldConfig};
use crate::geo::GeoPoint;
use crate::segments::{draw_stability, EpisodeSeries, SegMetrics, Segment, SegmentPath, Stability};
use crate::topology::{AsInfo, Relay};

/// Static latents plus episode series for one segment.
#[derive(Debug, Clone)]
struct SegState {
    /// Fixed RTT contribution (propagation × inflation, or access delay), ms.
    rtt_ms: f64,
    /// Base loss, percent.
    loss_pct: f64,
    /// Base jitter, ms.
    jitter_ms: f64,
    /// Sensitivity to diurnal load (multiplies the configured amplitude).
    diurnal_sens: f64,
    /// Scale of episode penalties for this segment class (backbone ≈ 0).
    episode_scale: f64,
    /// Mean longitude of the segment endpoints, for local-time peaks.
    lon_deg: f64,
    /// Daily severity series.
    episodes: EpisodeSeries,
}

/// Number of shards in the sparse segment table. Power of two so shard
/// selection is a mask; 64 keeps first-touch write contention negligible
/// for any realistic worker count.
const SPARSE_SHARDS: usize = 64;

/// Ground-truth performance model. Cheap to query; the model is logically
/// immutable — segment latents are memoized on first touch, but the memo is
/// a pure function of `(config, seed, segment)`.
///
/// The read side is built for parallel replay (see DESIGN.md, *Concurrency
/// and memory layout*): the dense segment families — access (one slot per
/// AS) and backbone (one slot per relay pair) — live in pre-sized
/// [`OnceLock`] slot tables indexed directly by id, so a hit is a plain
/// array load with no lock and no reference-count traffic. The sparse
/// families (direct-WAN pairs and AS→relay attach legs, quadratic key
/// spaces of which a trace touches a sliver) live in a [`SPARSE_SHARDS`]-way
/// sharded `RwLock<HashMap>`; steady-state reads take a shared lock on the
/// segment's shard only, and a first touch builds the state exactly once
/// under the shard's write lock. [`PerfModel::warm`] can prebuild every
/// segment a trace will touch so replay itself never takes a write lock.
#[derive(Debug)]
pub struct PerfModel {
    world_seed: u64,
    knobs: PerfKnobs,
    horizon_days: u64,
    as_pos: Vec<GeoPoint>,
    as_tier: Vec<u8>,
    relay_pos: Vec<GeoPoint>,
    /// Dense access slots, indexed by AS id.
    access: Box<[OnceLock<SegState>]>,
    /// Dense backbone slots, indexed by canonical relay pair
    /// (`lo * n_relays + hi`).
    backbone: Box<[OnceLock<SegState>]>,
    /// Sharded sparse table for `DirectWan` / `RelayWan` segments.
    sparse: Vec<RwLock<HashMap<Segment, SegState>>>,
    /// Segment states built so far (each touched segment builds exactly
    /// once; diagnostics and the duplicate-work regression tests).
    builds: AtomicU64,
}

impl PerfModel {
    /// Builds the model for a generated topology.
    pub(crate) fn new(
        world_seed: u64,
        config: WorldConfig,
        ases: &[AsInfo],
        relays: &[Relay],
    ) -> Self {
        let n_ases = ases.len();
        let n_relays = relays.len();
        Self {
            world_seed,
            knobs: config.perf,
            horizon_days: config.horizon_days,
            as_pos: ases.iter().map(|a| a.pos).collect(),
            as_tier: ases.iter().map(|a| a.tier).collect(),
            relay_pos: relays.iter().map(|r| r.pos).collect(),
            access: (0..n_ases).map(|_| OnceLock::new()).collect(),
            backbone: (0..n_relays * n_relays).map(|_| OnceLock::new()).collect(),
            sparse: (0..SPARSE_SHARDS).map(|_| RwLock::default()).collect(),
            builds: AtomicU64::new(0),
        }
    }

    /// Number of ASes the model knows about.
    pub fn n_ases(&self) -> usize {
        self.as_pos.len()
    }

    /// Number of relays the model knows about.
    pub fn n_relays(&self) -> usize {
        self.relay_pos.len()
    }

    /// Number of segment states materialized so far. Each touched segment is
    /// built exactly once — concurrent first touches never duplicate the
    /// episode-series generation — so after any workload this equals the
    /// number of distinct segments queried.
    pub fn segment_builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Shard of a sparse segment: a splitmix of the stable seed code, so the
    /// spread is uniform and identical across runs.
    fn sparse_shard(&self, segment: Segment) -> &RwLock<HashMap<Segment, SegState>> {
        let h = seed::splitmix64(segment.seed_code()) as usize;
        &self.sparse[h & (SPARSE_SHARDS - 1)]
    }

    /// Runs `f` against the segment's latent state, materializing it on
    /// first touch. Dense families resolve to a direct slot load; sparse
    /// families take a shared read lock on one shard (exclusive only while
    /// building a first-touch entry).
    fn with_state<R>(&self, segment: Segment, f: impl FnOnce(&SegState) -> R) -> R {
        let dense_slot = match segment {
            Segment::Access(a) => self.access.get(a.index()),
            Segment::Backbone(r1, r2) => self
                .backbone
                .get(r1.index() * self.relay_pos.len() + r2.index()),
            Segment::DirectWan(..) | Segment::RelayWan(..) => None,
        };
        if let Some(slot) = dense_slot {
            return f(slot.get_or_init(|| self.build_state(segment)));
        }
        // Sparse path. Lock poisoning cannot leave the memo inconsistent
        // (entries are pure derived data, inserted whole): recover.
        let shard = self.sparse_shard(segment);
        {
            let guard = shard.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(s) = guard.get(&segment) {
                return f(s);
            }
        }
        let mut guard = shard.write().unwrap_or_else(PoisonError::into_inner);
        f(guard
            .entry(segment)
            .or_insert_with(|| self.build_state(segment)))
    }

    /// Eagerly materializes the latent state of each given segment.
    /// Duplicates (and already-built segments) are skipped by the memo
    /// tables themselves. Purely an initialization-cost move: results are
    /// identical whether or not (and in whatever order) segments are warmed.
    /// Returns the number of segments built by this call.
    pub fn warm(&self, segments: impl IntoIterator<Item = Segment>) -> u64 {
        let before = self.segment_builds();
        for seg in segments {
            self.with_state(seg, |_| ());
        }
        self.segment_builds() - before
    }

    fn build_state(&self, segment: Segment) -> SegState {
        self.builds.fetch_add(1, Ordering::Relaxed);
        let k = &self.knobs;
        let mut rng = StdRng::seed_from_u64(seed::derive_indexed(
            self.world_seed,
            "segment-latents",
            segment.seed_code(),
        ));

        match segment {
            Segment::Access(a) => {
                let tier = f64::from(self.as_tier[a.index()]);
                let rtt = lognormal_mean(&mut rng, k.access_rtt_base_ms * (0.6 + 0.45 * tier), 0.3);
                let loss = lognormal_mean(&mut rng, k.access_loss_base_pct * tier.powf(1.8), 0.5);
                let jitter =
                    lognormal_mean(&mut rng, k.access_jitter_base_ms * (0.5 + 0.5 * tier), 0.4);
                let stability = draw_stability(
                    &mut rng,
                    self.as_tier[a.index()],
                    k.chronic_fraction * 0.6,
                    k.flaky_fraction * 0.8,
                );
                SegState {
                    rtt_ms: rtt,
                    loss_pct: loss,
                    jitter_ms: jitter,
                    diurnal_sens: rng.random_range(0.6..1.4),
                    episode_scale: 0.5,
                    lon_deg: self.as_pos[a.index()].lon_deg,
                    episodes: EpisodeSeries::generate(
                        self.world_seed,
                        segment,
                        stability,
                        self.horizon_days,
                    ),
                }
            }
            Segment::DirectWan(a, b) => {
                let pa = self.as_pos[a.index()];
                let pb = self.as_pos[b.index()];
                let tier_class = self.as_tier[a.index()].max(self.as_tier[b.index()]);
                let tier = f64::from(tier_class);
                // International here means "far apart"; country identity lives
                // in topology, but distance is the physical driver.
                let dist = pa.distance_km(&pb);
                let intl_like = dist > 2_500.0;

                let mut inflation_median =
                    k.direct_inflation_base * (1.0 + k.direct_inflation_tier_step * (tier - 1.0));
                if intl_like {
                    inflation_median *= k.direct_inflation_intl;
                }
                let mut inflation =
                    lognormal_median(&mut rng, inflation_median, k.direct_inflation_sigma);
                let p_path = if intl_like {
                    k.pathological_prob_intl
                } else {
                    k.pathological_prob_domestic
                };
                if rng.random::<f64>() < p_path {
                    inflation *= rng.random_range(1.8..3.2);
                }

                // Short paths still pay peering/queueing latency: add a floor.
                let rtt = pa.min_rtt_ms(&pb) * inflation + rng.random_range(4.0..12.0);

                let loss_mean =
                    k.direct_loss_base_pct * tier.powf(1.6) * if intl_like { 1.8 } else { 1.0 };
                let loss = lognormal_mean(&mut rng, loss_mean, 0.6);
                let jitter_mean = k.direct_jitter_base_ms
                    * (0.5 + 0.5 * tier)
                    * if intl_like { 1.5 } else { 1.0 };
                let jitter = lognormal_mean(&mut rng, jitter_mean, 0.5);

                let stability =
                    draw_stability(&mut rng, tier_class, k.chronic_fraction, k.flaky_fraction);
                SegState {
                    rtt_ms: rtt,
                    loss_pct: loss,
                    jitter_ms: jitter,
                    diurnal_sens: rng.random_range(0.5..1.5),
                    episode_scale: 1.0,
                    lon_deg: (pa.lon_deg + pb.lon_deg) / 2.0,
                    episodes: EpisodeSeries::generate(
                        self.world_seed,
                        segment,
                        stability,
                        self.horizon_days,
                    ),
                }
            }
            Segment::RelayWan(a, r) => {
                let pa = self.as_pos[a.index()];
                let pr = self.relay_pos[r.index()];
                let tier_class = self.as_tier[a.index()];
                let tier = f64::from(tier_class);
                let inflation_median = k.relay_inflation_base * (1.0 + 0.08 * (tier - 1.0));
                let inflation =
                    lognormal_median(&mut rng, inflation_median, k.relay_inflation_sigma);
                let rtt = pa.min_rtt_ms(&pr) * inflation + rng.random_range(2.0..8.0);
                // Loss and jitter accumulate with public-WAN path length: a
                // short on-ramp to a nearby relay is much cleaner than a
                // half-planet bounce leg — the reason transit relaying
                // (short on-ramps + private backbone) wins on long hauls.
                let dist_factor = 0.4 + pa.distance_km(&pr) / 4_000.0;
                let loss = lognormal_mean(
                    &mut rng,
                    k.relay_loss_base_pct * tier.powf(1.4) * dist_factor,
                    0.5,
                );
                let jitter = lognormal_mean(
                    &mut rng,
                    k.relay_jitter_base_ms * (0.6 + 0.4 * tier) * dist_factor,
                    0.4,
                );
                let stability = draw_stability(
                    &mut rng,
                    tier_class,
                    k.chronic_fraction * 0.7,
                    k.flaky_fraction * 0.8,
                );
                SegState {
                    rtt_ms: rtt,
                    loss_pct: loss,
                    jitter_ms: jitter,
                    diurnal_sens: rng.random_range(0.4..1.1),
                    episode_scale: 0.6,
                    lon_deg: (pa.lon_deg + pr.lon_deg) / 2.0,
                    episodes: EpisodeSeries::generate(
                        self.world_seed,
                        segment,
                        stability,
                        self.horizon_days,
                    ),
                }
            }
            Segment::Backbone(r1, r2) => {
                let p1 = self.relay_pos[r1.index()];
                let p2 = self.relay_pos[r2.index()];
                SegState {
                    rtt_ms: p1.min_rtt_ms(&p2) * k.backbone_inflation,
                    loss_pct: k.backbone_loss_pct,
                    jitter_ms: k.backbone_jitter_ms,
                    diurnal_sens: 0.05,
                    episode_scale: 0.0,
                    lon_deg: (p1.lon_deg + p2.lon_deg) / 2.0,
                    episodes: EpisodeSeries::generate(
                        self.world_seed,
                        segment,
                        Stability::Stable,
                        self.horizon_days,
                    ),
                }
            }
        }
    }

    /// Mean metrics contributed by one segment at time `t` (latent state:
    /// episodes + diurnal load, no per-call noise).
    pub fn segment_mean(&self, segment: Segment, t: SimTime) -> SegMetrics {
        let k = &self.knobs;
        self.with_state(segment, |s| {
            let sev = s.episodes.on_day(t.day()) * s.episode_scale;
            // Diurnal load peaks at 20:00 local time at the segment midpoint.
            let local =
                GeoPoint::new(0.0, s.lon_deg.clamp(-180.0, 180.0)).local_hour(t.hour_of_day());
            let evening = 0.5 * (1.0 + ((local - 20.0) / 24.0 * std::f64::consts::TAU).cos());
            let d = k.diurnal_amplitude * s.diurnal_sens * evening;

            let episode_rtt = sev * k.episode_rtt_ms;
            let loss_mult = 1.0 + sev * (k.episode_loss_mult - 1.0);
            let jitter_mult = 1.0 + sev * (k.episode_jitter_mult - 1.0);

            SegMetrics {
                rtt_ms: s.rtt_ms + episode_rtt + 6.0 * d,
                loss_pct: (s.loss_pct * loss_mult * (1.0 + 0.8 * d)).min(100.0),
                jitter_ms: s.jitter_ms * jitter_mult * (1.0 + 0.8 * d),
            }
        })
    }

    /// Segments traversed by an option between `src` and `dst`, plus the
    /// number of relay hops (for fixed forwarding cost). Returns an inline
    /// fixed-capacity path — no heap allocation on the sample hot path.
    pub fn segments_of(&self, src: AsId, dst: AsId, option: RelayOption) -> SegmentPath {
        match option.canonical() {
            RelayOption::Direct => SegmentPath::new(
                &[
                    Segment::Access(src),
                    Segment::direct(src, dst),
                    Segment::Access(dst),
                ],
                0,
            ),
            RelayOption::Bounce(r) => SegmentPath::new(
                &[
                    Segment::Access(src),
                    Segment::RelayWan(src, r),
                    Segment::RelayWan(dst, r),
                    Segment::Access(dst),
                ],
                1,
            ),
            RelayOption::Transit(r1, r2) => {
                // Pick the orientation with the shorter on-ramps: the managed
                // network routes sensibly.
                let d_fwd = self.as_pos[src.index()].distance_km(&self.relay_pos[r1.index()])
                    + self.as_pos[dst.index()].distance_km(&self.relay_pos[r2.index()]);
                let d_rev = self.as_pos[src.index()].distance_km(&self.relay_pos[r2.index()])
                    + self.as_pos[dst.index()].distance_km(&self.relay_pos[r1.index()]);
                let (rin, rout) = if d_fwd <= d_rev { (r1, r2) } else { (r2, r1) };
                SegmentPath::new(
                    &[
                        Segment::Access(src),
                        Segment::RelayWan(src, rin),
                        Segment::backbone(rin, rout),
                        Segment::RelayWan(dst, rout),
                        Segment::Access(dst),
                    ],
                    2,
                )
            }
        }
    }

    /// Expected end-to-end metrics of `option` at time `t`, *excluding*
    /// per-call transient spikes (which inflate realized means uniformly by
    /// `call_spike_prob × E[spike_mult − 1]` ≈ 5 % and therefore do not
    /// change option rankings).
    pub fn option_mean(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        t: SimTime,
    ) -> PathMetrics {
        let path = self.segments_of(src, dst, option);
        let mut acc = SegMetrics::default();
        for seg in path.segments() {
            acc = acc.chain(&self.segment_mean(*seg, t));
        }
        PathMetrics::new(
            acc.rtt_ms + path.hops() as f64 * self.knobs.relay_hop_cost_ms,
            acc.loss_pct,
            acc.jitter_ms,
        )
    }

    /// Draws one realized call over `option` at time `t`: the mean plus
    /// per-call noise (multiplicative lognormal on RTT and jitter, Gamma on
    /// loss — heavy-tailed, mean-preserving).
    pub fn sample_option(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        t: SimTime,
        rng: &mut StdRng,
    ) -> PathMetrics {
        let mean = self.option_mean(src, dst, option, t);
        let k = &self.knobs;

        let rtt_noise = lognormal_mean(rng, 1.0, k.call_rtt_sigma);
        let jitter_noise = lognormal_mean(rng, 1.0, k.call_jitter_sigma);

        let loss = if mean.loss_pct > 1e-9 {
            // Degenerate knob values (shape ≤ 0) fall back to the mean
            // itself rather than panicking.
            Gamma::new(k.call_loss_shape, mean.loss_pct / k.call_loss_shape)
                .map_or(mean.loss_pct, |d| d.sample(rng))
        } else {
            0.0
        };

        // Transient outliers: short-lived congestion events that per-call
        // averages cannot hide — the heavy tail that breaks naive reward
        // normalization (§4.5).
        let (spike_mult, spike_loss) = if rng.random::<f64>() < k.call_spike_prob {
            (
                rng.random_range(1.5..k.call_spike_mult.max(1.6)),
                rng.random_range(0.5..3.0),
            )
        } else {
            (1.0, 0.0)
        };

        PathMetrics::new(
            mean.rtt_ms * rtt_noise * spike_mult,
            loss + spike_loss,
            mean.jitter_ms * jitter_noise * spike_mult,
        )
    }

    /// The controller's knowledge of inter-relay performance (§3.2: "we also
    /// have information from Skype on the RTT, loss and jitter between their
    /// relay nodes"). Static backbone metrics, no client noise.
    pub fn backbone_metrics(&self, r1: RelayId, r2: RelayId) -> PathMetrics {
        let m = self.segment_mean(Segment::backbone(r1, r2), SimTime::ZERO);
        PathMetrics::new(m.rtt_ms, m.loss_pct, m.jitter_ms)
    }
}

/// Lognormal with a given *mean* (log-sigma `sigma`), sampled once.
fn lognormal_mean(rng: &mut StdRng, mean: f64, sigma: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let mu = mean.ln() - sigma * sigma / 2.0;
    // `new` only fails for non-finite mu or negative sigma; fall back to
    // the target mean instead of panicking on degenerate parameters.
    LogNormal::new(mu, sigma).map_or(mean, |d| d.sample(rng))
}

/// Lognormal with a given *median*, sampled once.
fn lognormal_median(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    LogNormal::new(median.ln(), sigma).map_or(median, |d| d.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::topology::World;
    use via_model::stats::OnlineStats;

    fn world() -> World {
        World::generate(&WorldConfig::tiny(), 42)
    }

    #[test]
    fn means_are_deterministic_across_queries() {
        let w = world();
        let src = AsId(0);
        let dst = AsId(5);
        let t = SimTime::from_days(3);
        let m1 = w.perf().option_mean(src, dst, RelayOption::Direct, t);
        let m2 = w.perf().option_mean(src, dst, RelayOption::Direct, t);
        assert_eq!(m1, m2);
    }

    #[test]
    fn two_models_agree_regardless_of_query_order() {
        let w1 = world();
        let w2 = world();
        let t = SimTime::from_days(2);
        // Warm w2's cache in a different order first.
        let _ = w2
            .perf()
            .option_mean(AsId(3), AsId(4), RelayOption::Direct, t);
        let a = w1
            .perf()
            .option_mean(AsId(0), AsId(5), RelayOption::Bounce(RelayId(1)), t);
        let b = w2
            .perf()
            .option_mean(AsId(0), AsId(5), RelayOption::Bounce(RelayId(1)), t);
        assert_eq!(a, b);
    }

    #[test]
    fn samples_scatter_around_mean() {
        let w = world();
        let t = SimTime::from_days(1);
        let mean = w
            .perf()
            .option_mean(AsId(0), AsId(7), RelayOption::Direct, t);
        let mut rng = StdRng::seed_from_u64(1);
        let mut rtt = OnlineStats::new();
        let mut loss = OnlineStats::new();
        for _ in 0..4000 {
            let s = w
                .perf()
                .sample_option(AsId(0), AsId(7), RelayOption::Direct, t, &mut rng);
            rtt.push(s.rtt_ms);
            loss.push(s.loss_pct);
        }
        let rtt_mean = rtt.mean().unwrap();
        // Transient spikes (call_spike_prob) uniformly inflate realized
        // means ~5% above the spike-free `option_mean`; option rankings are
        // unaffected.
        assert!(
            (rtt_mean - mean.rtt_ms) / mean.rtt_ms > -0.02,
            "sample mean {rtt_mean} fell below model mean {}",
            mean.rtt_ms
        );
        assert!(
            (rtt_mean - mean.rtt_ms).abs() / mean.rtt_ms < 0.12,
            "sample mean {rtt_mean} vs model mean {}",
            mean.rtt_ms
        );
        if mean.loss_pct > 0.01 {
            // Spikes also add ~0.05% absolute loss on average.
            let loss_mean = loss.mean().unwrap();
            assert!(
                loss_mean >= mean.loss_pct * 0.7 && loss_mean <= mean.loss_pct * 1.3 + 0.1,
                "loss sample mean {loss_mean} vs {}",
                mean.loss_pct
            );
        }
    }

    #[test]
    fn backbone_beats_public_wan() {
        let w = world();
        let t = SimTime::ZERO;
        // Compare the backbone segment against a direct WAN segment over a
        // similar distance: the backbone must be much cleaner.
        let bb = w.perf().backbone_metrics(RelayId(0), RelayId(1));
        assert!(bb.loss_pct < 0.05);
        assert!(bb.jitter_ms < 1.0);
        let direct = w.perf().segment_mean(Segment::direct(AsId(0), AsId(9)), t);
        assert!(direct.loss_pct > bb.loss_pct);
    }

    #[test]
    fn transit_orientation_picks_short_on_ramps() {
        let w = world();
        let path = w.perf().segments_of(
            AsId(0),
            AsId(9),
            RelayOption::Transit(RelayId(0), RelayId(1)),
        );
        assert_eq!(path.hops(), 2);
        assert_eq!(path.len(), 5);
        // First relay leg must attach to the source AS.
        match path.segments()[1] {
            Segment::RelayWan(a, _) => assert_eq!(a, AsId(0)),
            ref s => panic!("unexpected segment {s:?}"),
        }
    }

    #[test]
    fn concurrent_first_touch_builds_each_segment_once() {
        let w = world();
        // A sparse (DirectWan) segment that nothing has touched yet: many
        // threads race to materialize it concurrently.
        let seg = Segment::direct(AsId(2), AsId(11));
        let t = SimTime::from_days(1);
        assert_eq!(w.perf().segment_builds(), 0);
        let means: Vec<SegMetrics> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| w.perf().segment_mean(seg, t)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            w.perf().segment_builds(),
            1,
            "racing first touches must build the segment exactly once"
        );
        for m in &means[1..] {
            assert_eq!(*m, means[0]);
        }
        // Re-querying (and warming) an already-built segment builds nothing.
        let _ = w.perf().segment_mean(seg, t);
        assert_eq!(w.perf().warm([seg]), 0);
        assert_eq!(w.perf().segment_builds(), 1);
    }

    #[test]
    fn warm_pass_does_not_change_results() {
        let cold = world();
        let warm = world();
        let t = SimTime::from_days(2);
        let opt = RelayOption::Transit(RelayId(0), RelayId(2));
        let path = warm.perf().segments_of(AsId(1), AsId(8), opt);
        let built = warm.perf().warm(path.segments().iter().copied());
        assert_eq!(built, path.len() as u64);
        assert_eq!(
            cold.perf().option_mean(AsId(1), AsId(8), opt, t),
            warm.perf().option_mean(AsId(1), AsId(8), opt, t),
        );
    }

    #[test]
    fn rtt_respects_physics() {
        let w = World::generate(&WorldConfig::small(), 3);
        let t = SimTime::from_days(1);
        for (a, b) in [(AsId(0), AsId(20)), (AsId(3), AsId(33))] {
            let lower = w.ases[a.index()].pos.min_rtt_ms(&w.ases[b.index()].pos);
            let m = w.perf().option_mean(a, b, RelayOption::Direct, t);
            assert!(
                m.rtt_ms >= lower,
                "model RTT {} under the speed of light {}",
                m.rtt_ms,
                lower
            );
        }
    }

    #[test]
    fn diurnal_variation_moves_metrics() {
        let w = world();
        let seg = Segment::direct(AsId(0), AsId(7));
        let mut values: Vec<f64> = (0..24)
            .map(|h| w.perf().segment_mean(seg, SimTime::from_hours(h)).jitter_ms)
            .collect();
        values.sort_by(f64::total_cmp);
        assert!(
            values.last().unwrap() > &(values[0] * 1.05),
            "expected diurnal swing, got flat {values:?}"
        );
    }

    #[test]
    fn loss_never_exceeds_bounds() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(2);
        let t = SimTime::from_days(5);
        for _ in 0..500 {
            let s = w
                .perf()
                .sample_option(AsId(1), AsId(8), RelayOption::Direct, t, &mut rng);
            assert!((0.0..=100.0).contains(&s.loss_pct));
            assert!(s.rtt_ms >= 0.0 && s.jitter_ms >= 0.0);
            assert!(s.is_finite());
        }
    }
}
