//! The ground-truth path-performance model.
//!
//! [`PerfModel`] answers two questions for any (source AS, destination AS,
//! relaying option, time):
//!
//! * [`PerfModel::option_mean`] — the *expected* metrics of the option at
//!   that instant (latent world state: static segment quality + active
//!   episodes + diurnal load). The oracle strategy of §3.2 reads this
//!   directly; no real system can.
//! * [`PerfModel::sample_option`] — one realized call's metrics: the mean
//!   plus heavy-tailed per-call noise. This is all that VIA and the baseline
//!   strategies ever observe, matching §5.1's methodology of drawing a random
//!   call from the same (pair, option, window) population.
//!
//! Segment latents are derived deterministically from the world seed, so the
//! model is a pure function of `(config, seed, query)` — queries can come in
//! any order, from any component, and agree.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Gamma, LogNormal};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use via_model::ids::{AsId, RelayId};
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::seed;
use via_model::time::SimTime;

use crate::config::{PerfKnobs, WorldConfig};
use crate::geo::GeoPoint;
use crate::segments::{draw_stability, EpisodeSeries, SegMetrics, Segment, SegmentPath, Stability};
use crate::topology::{AsInfo, Relay};

/// Static latents plus episode series for one segment.
#[derive(Debug, Clone)]
struct SegState {
    /// Fixed RTT contribution (propagation × inflation, or access delay), ms.
    rtt_ms: f64,
    /// Base loss, percent.
    loss_pct: f64,
    /// Base jitter, ms.
    jitter_ms: f64,
    /// Sensitivity to diurnal load (multiplies the configured amplitude).
    diurnal_sens: f64,
    /// Scale of episode penalties for this segment class (backbone ≈ 0).
    episode_scale: f64,
    /// Mean longitude of the segment endpoints, for local-time peaks.
    lon_deg: f64,
    /// Daily severity series.
    episodes: EpisodeSeries,
}

/// Ground-truth performance model. Cheap to query; the model is logically
/// immutable — segment latents are memoized on first touch, but the memo is
/// a pure function of `(config, seed, segment)`.
///
/// The read side is built for parallel replay (see DESIGN.md, *Concurrency
/// and memory layout*): every segment family lives in a pre-sized
/// [`OnceLock`] slot table indexed directly by id — access (one slot per
/// AS), backbone (relay pair), direct WAN (AS pair) and AS→relay attach
/// legs — so a hit is a plain array load with no lock and no hashing, and a
/// first touch builds the state exactly once under the slot's own
/// initializer. The quadratic tables hold *empty* slots for untouched keys
/// (a slot is pointer-plus-payload-sized, ~4 MB total for the paper-scale
/// 200-AS world), which is the price for making the per-call realize path
/// — three slot loads per direct path — branch-and-lock-free.
/// [`PerfModel::warm`] can prebuild every segment a trace will touch so
/// replay itself never runs a first-touch initializer.
#[derive(Debug)]
pub struct PerfModel {
    world_seed: u64,
    knobs: PerfKnobs,
    horizon_days: u64,
    as_pos: Vec<GeoPoint>,
    as_tier: Vec<u8>,
    relay_pos: Vec<GeoPoint>,
    /// Dense access slots, indexed by AS id.
    access: Box<[OnceLock<SegState>]>,
    /// Dense backbone slots, indexed by canonical relay pair
    /// (`lo * n_relays + hi`).
    backbone: Box<[OnceLock<SegState>]>,
    /// Dense direct-WAN slots, indexed by canonical AS pair
    /// (`lo * n_ases + hi`).
    direct: Box<[OnceLock<SegState>]>,
    /// Dense AS→relay attach-leg slots (`a * n_relays + r`).
    relay_wan: Box<[OnceLock<SegState>]>,
    /// Dense AS↔relay great-circle distances (`as * n_relays + relay`),
    /// precomputed so transit-orientation picks on the scoring hot path are
    /// table loads instead of four haversines per query.
    as_relay_km: Box<[f64]>,
    /// Per-call RTT noise (`lognormal_mean` at mean 1.0), prebuilt from the
    /// knobs; `None` when the sigma knob is degenerate (noise factor 1.0).
    rtt_noise: Option<LogNormal<f64>>,
    /// Per-call jitter noise, same construction.
    jitter_noise: Option<LogNormal<f64>>,
    /// Segment states built so far (each touched segment builds exactly
    /// once; diagnostics and the duplicate-work regression tests).
    builds: AtomicU64,
}

/// Unit-mean lognormal noise distribution, parameterized exactly as
/// `lognormal_mean(rng, 1.0, sigma)` computes it so prebuilt draws are
/// bit-identical to the inline construction.
fn unit_lognormal(sigma: f64) -> Option<LogNormal<f64>> {
    LogNormal::new(1.0f64.ln() - sigma * sigma / 2.0, sigma).ok()
}

impl PerfModel {
    /// Builds the model for a generated topology.
    pub(crate) fn new(
        world_seed: u64,
        config: WorldConfig,
        ases: &[AsInfo],
        relays: &[Relay],
    ) -> Self {
        let n_ases = ases.len();
        let n_relays = relays.len();
        let as_relay_km = ases
            .iter()
            .flat_map(|a| relays.iter().map(|r| a.pos.distance_km(&r.pos)))
            .collect();
        let rtt_noise = unit_lognormal(config.perf.call_rtt_sigma);
        let jitter_noise = unit_lognormal(config.perf.call_jitter_sigma);
        Self {
            world_seed,
            knobs: config.perf,
            horizon_days: config.horizon_days,
            as_pos: ases.iter().map(|a| a.pos).collect(),
            as_tier: ases.iter().map(|a| a.tier).collect(),
            relay_pos: relays.iter().map(|r| r.pos).collect(),
            access: (0..n_ases).map(|_| OnceLock::new()).collect(),
            backbone: (0..n_relays * n_relays).map(|_| OnceLock::new()).collect(),
            direct: (0..n_ases * n_ases).map(|_| OnceLock::new()).collect(),
            relay_wan: (0..n_ases * n_relays).map(|_| OnceLock::new()).collect(),
            as_relay_km,
            rtt_noise,
            jitter_noise,
            builds: AtomicU64::new(0),
        }
    }

    /// Number of ASes the model knows about.
    pub fn n_ases(&self) -> usize {
        self.as_pos.len()
    }

    /// Number of relays the model knows about.
    pub fn n_relays(&self) -> usize {
        self.relay_pos.len()
    }

    /// Number of segment states materialized so far. Each touched segment is
    /// built exactly once — concurrent first touches never duplicate the
    /// episode-series generation — so after any workload this equals the
    /// number of distinct segments queried.
    pub fn segment_builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Runs `f` against the segment's latent state, materializing it on
    /// first touch. Every family resolves to a direct slot load; a cold
    /// slot builds its state exactly once under the `OnceLock` initializer
    /// (concurrent first touches block rather than duplicate work).
    fn with_state<R>(&self, segment: Segment, f: impl FnOnce(&SegState) -> R) -> R {
        let n_relays = self.relay_pos.len();
        let slot = match segment {
            Segment::Access(a) => &self.access[a.index()],
            Segment::Backbone(r1, r2) => &self.backbone[r1.index() * n_relays + r2.index()],
            Segment::DirectWan(a, b) => &self.direct[a.index() * self.as_pos.len() + b.index()],
            Segment::RelayWan(a, r) => &self.relay_wan[a.index() * n_relays + r.index()],
        };
        f(slot.get_or_init(|| self.build_state(segment)))
    }

    /// Eagerly materializes the latent state of each given segment.
    /// Duplicates (and already-built segments) are skipped by the memo
    /// tables themselves. Purely an initialization-cost move: results are
    /// identical whether or not (and in whatever order) segments are warmed.
    /// Returns the number of segments built by this call.
    pub fn warm(&self, segments: impl IntoIterator<Item = Segment>) -> u64 {
        let before = self.segment_builds();
        for seg in segments {
            self.with_state(seg, |_| ());
        }
        self.segment_builds() - before
    }

    fn build_state(&self, segment: Segment) -> SegState {
        self.builds.fetch_add(1, Ordering::Relaxed);
        let k = &self.knobs;
        let mut rng = StdRng::seed_from_u64(seed::derive_indexed(
            self.world_seed,
            "segment-latents",
            segment.seed_code(),
        ));

        match segment {
            Segment::Access(a) => {
                let tier = f64::from(self.as_tier[a.index()]);
                let rtt = lognormal_mean(&mut rng, k.access_rtt_base_ms * (0.6 + 0.45 * tier), 0.3);
                let loss = lognormal_mean(&mut rng, k.access_loss_base_pct * tier.powf(1.8), 0.5);
                let jitter =
                    lognormal_mean(&mut rng, k.access_jitter_base_ms * (0.5 + 0.5 * tier), 0.4);
                let stability = draw_stability(
                    &mut rng,
                    self.as_tier[a.index()],
                    k.chronic_fraction * 0.6,
                    k.flaky_fraction * 0.8,
                );
                SegState {
                    rtt_ms: rtt,
                    loss_pct: loss,
                    jitter_ms: jitter,
                    diurnal_sens: rng.random_range(0.6..1.4),
                    episode_scale: 0.5,
                    lon_deg: self.as_pos[a.index()].lon_deg,
                    episodes: EpisodeSeries::generate(
                        self.world_seed,
                        segment,
                        stability,
                        self.horizon_days,
                    ),
                }
            }
            Segment::DirectWan(a, b) => {
                let pa = self.as_pos[a.index()];
                let pb = self.as_pos[b.index()];
                let tier_class = self.as_tier[a.index()].max(self.as_tier[b.index()]);
                let tier = f64::from(tier_class);
                // International here means "far apart"; country identity lives
                // in topology, but distance is the physical driver.
                let dist = pa.distance_km(&pb);
                let intl_like = dist > 2_500.0;

                let mut inflation_median =
                    k.direct_inflation_base * (1.0 + k.direct_inflation_tier_step * (tier - 1.0));
                if intl_like {
                    inflation_median *= k.direct_inflation_intl;
                }
                let mut inflation =
                    lognormal_median(&mut rng, inflation_median, k.direct_inflation_sigma);
                let p_path = if intl_like {
                    k.pathological_prob_intl
                } else {
                    k.pathological_prob_domestic
                };
                if rng.random::<f64>() < p_path {
                    inflation *= rng.random_range(1.8..3.2);
                }

                // Short paths still pay peering/queueing latency: add a floor.
                let rtt = pa.min_rtt_ms(&pb) * inflation + rng.random_range(4.0..12.0);

                let loss_mean =
                    k.direct_loss_base_pct * tier.powf(1.6) * if intl_like { 1.8 } else { 1.0 };
                let loss = lognormal_mean(&mut rng, loss_mean, 0.6);
                let jitter_mean = k.direct_jitter_base_ms
                    * (0.5 + 0.5 * tier)
                    * if intl_like { 1.5 } else { 1.0 };
                let jitter = lognormal_mean(&mut rng, jitter_mean, 0.5);

                let stability =
                    draw_stability(&mut rng, tier_class, k.chronic_fraction, k.flaky_fraction);
                SegState {
                    rtt_ms: rtt,
                    loss_pct: loss,
                    jitter_ms: jitter,
                    diurnal_sens: rng.random_range(0.5..1.5),
                    episode_scale: 1.0,
                    lon_deg: (pa.lon_deg + pb.lon_deg) / 2.0,
                    episodes: EpisodeSeries::generate(
                        self.world_seed,
                        segment,
                        stability,
                        self.horizon_days,
                    ),
                }
            }
            Segment::RelayWan(a, r) => {
                let pa = self.as_pos[a.index()];
                let pr = self.relay_pos[r.index()];
                let tier_class = self.as_tier[a.index()];
                let tier = f64::from(tier_class);
                let inflation_median = k.relay_inflation_base * (1.0 + 0.08 * (tier - 1.0));
                let inflation =
                    lognormal_median(&mut rng, inflation_median, k.relay_inflation_sigma);
                let rtt = pa.min_rtt_ms(&pr) * inflation + rng.random_range(2.0..8.0);
                // Loss and jitter accumulate with public-WAN path length: a
                // short on-ramp to a nearby relay is much cleaner than a
                // half-planet bounce leg — the reason transit relaying
                // (short on-ramps + private backbone) wins on long hauls.
                let dist_factor = 0.4 + pa.distance_km(&pr) / 4_000.0;
                let loss = lognormal_mean(
                    &mut rng,
                    k.relay_loss_base_pct * tier.powf(1.4) * dist_factor,
                    0.5,
                );
                let jitter = lognormal_mean(
                    &mut rng,
                    k.relay_jitter_base_ms * (0.6 + 0.4 * tier) * dist_factor,
                    0.4,
                );
                let stability = draw_stability(
                    &mut rng,
                    tier_class,
                    k.chronic_fraction * 0.7,
                    k.flaky_fraction * 0.8,
                );
                SegState {
                    rtt_ms: rtt,
                    loss_pct: loss,
                    jitter_ms: jitter,
                    diurnal_sens: rng.random_range(0.4..1.1),
                    episode_scale: 0.6,
                    lon_deg: (pa.lon_deg + pr.lon_deg) / 2.0,
                    episodes: EpisodeSeries::generate(
                        self.world_seed,
                        segment,
                        stability,
                        self.horizon_days,
                    ),
                }
            }
            Segment::Backbone(r1, r2) => {
                let p1 = self.relay_pos[r1.index()];
                let p2 = self.relay_pos[r2.index()];
                SegState {
                    rtt_ms: p1.min_rtt_ms(&p2) * k.backbone_inflation,
                    loss_pct: k.backbone_loss_pct,
                    jitter_ms: k.backbone_jitter_ms,
                    diurnal_sens: 0.05,
                    episode_scale: 0.0,
                    lon_deg: (p1.lon_deg + p2.lon_deg) / 2.0,
                    episodes: EpisodeSeries::generate(
                        self.world_seed,
                        segment,
                        Stability::Stable,
                        self.horizon_days,
                    ),
                }
            }
        }
    }

    /// Mean metrics contributed by one segment at time `t` (latent state:
    /// episodes + diurnal load, no per-call noise).
    pub fn segment_mean(&self, segment: Segment, t: SimTime) -> SegMetrics {
        self.mean_from_day(&self.seg_day_state(segment, t.day()), t)
    }

    /// Captures the day-scoped slice of a segment's latent state: everything
    /// [`PerfModel::segment_mean`] reads except the intra-day diurnal
    /// factor. One slot-table touch; the result is a small `Copy` value the
    /// scratch can keep, so repeated means of a hot segment within a day
    /// never revisit the slot table or the episode series.
    fn seg_day_state(&self, segment: Segment, day: u64) -> SegDayState {
        self.with_state(segment, |s| SegDayState {
            day,
            sev: s.episodes.on_day(day) * s.episode_scale,
            rtt_ms: s.rtt_ms,
            loss_pct: s.loss_pct,
            jitter_ms: s.jitter_ms,
            diurnal_sens: s.diurnal_sens,
            lon_deg: s.lon_deg,
        })
    }

    /// Captures one path's day-scoped latent parts: the day state of every
    /// segment plus the hop count. A caller that realizes many calls of the
    /// same `(src, dst)` pair within one simulated day (the replay engine's
    /// pair groups) can hold this on the stack and get each call's path
    /// mean from [`PerfModel::mean_from_parts`] without touching any memo
    /// map or slot table.
    pub fn path_day_parts(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        day: u64,
    ) -> PathDayParts {
        let path = self.segments_of(src, dst, option);
        let mut segs = [SegDayState::default(); SegmentPath::MAX];
        for (slot, seg) in segs.iter_mut().zip(path.segments()) {
            *slot = self.seg_day_state(*seg, day);
        }
        PathDayParts {
            src,
            dst,
            day,
            path,
            segs,
        }
    }

    /// [`PerfModel::path_day_parts`] that serves segments already in the
    /// scratch's day memo (the access legs of an active pair are almost
    /// always resident, kept current by the chosen-path realizes) and only
    /// falls back to the slot tables for the rest — typically just the
    /// pair-specific WAN segment. Misses are *not* inserted into the memo:
    /// quadratically-keyed segments captured once per pair group would
    /// bloat it past cache residency and slow every chosen-path probe.
    /// Values are bit-identical to `path_day_parts` either way — memo
    /// entries are themselves `seg_day_state` captures for the same day.
    pub fn path_day_parts_scratch(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        day: u64,
        scratch: &SampleScratch,
    ) -> PathDayParts {
        let path = self.segments_of(src, dst, option);
        let mut segs = [SegDayState::default(); SegmentPath::MAX];
        for (slot, seg) in segs.iter_mut().zip(path.segments()) {
            *slot = match scratch.day_states.get(seg) {
                Some(ds) if ds.day == day => *ds,
                _ => self.seg_day_state(*seg, day),
            };
        }
        PathDayParts {
            src,
            dst,
            day,
            path,
            segs,
        }
    }

    /// The path mean at instant `t` from captured day parts — bit-identical
    /// to [`PerfModel::option_mean_scratch`] for the same path and day: the
    /// same per-segment formula ([`PerfModel::mean_from_day`]), the same
    /// left-folded chain, the same hop-cost expression.
    pub fn mean_from_parts(&self, parts: &PathDayParts, t: SimTime) -> PathMetrics {
        let mut acc = SegMetrics::default();
        for s in &parts.segs[..parts.path.segments().len()] {
            acc = acc.chain(&self.mean_from_day(s, t));
        }
        PathMetrics::new(
            acc.rtt_ms + parts.path.hops() as f64 * self.knobs.relay_hop_cost_ms,
            acc.loss_pct,
            acc.jitter_ms,
        )
    }

    /// [`PerfModel::mean_from_parts`] that serves segments already in the
    /// scratch's *instant* memo. When the chosen path of the same call was
    /// scored first at the same `t`, the pair's two access legs are memo
    /// hits, so a direct-path baseline mean costs one `mean_from_day` (the
    /// pair's WAN leg) plus the chain. Memo entries at instant `t` are
    /// `mean_from_day` results over same-day captures of the same segment,
    /// so hits are bit-identical to the recompute they replace.
    pub fn mean_from_parts_scratch(
        &self,
        parts: &PathDayParts,
        t: SimTime,
        scratch: &SampleScratch,
    ) -> PathMetrics {
        if scratch.t != Some(t) {
            return self.mean_from_parts(parts, t);
        }
        let mut acc = SegMetrics::default();
        for (seg, s) in parts.path.segments().iter().zip(&parts.segs) {
            let m = match scratch.seg_means.get(seg) {
                Some(m) => *m,
                None => self.mean_from_day(s, t),
            };
            acc = acc.chain(&m);
        }
        PathMetrics::new(
            acc.rtt_ms + parts.path.hops() as f64 * self.knobs.relay_hop_cost_ms,
            acc.loss_pct,
            acc.jitter_ms,
        )
    }

    /// The time-of-day half of [`PerfModel::segment_mean`]: pure stack math
    /// over a captured [`SegDayState`]. The single home of the mean formula
    /// — every caller goes through here, so cached day states are
    /// bit-identical to fresh `segment_mean` calls by construction.
    fn mean_from_day(&self, s: &SegDayState, t: SimTime) -> SegMetrics {
        let k = &self.knobs;
        // Diurnal load peaks at 20:00 local time at the segment midpoint.
        let local = GeoPoint::new(0.0, s.lon_deg.clamp(-180.0, 180.0)).local_hour(t.hour_of_day());
        let evening = 0.5 * (1.0 + ((local - 20.0) / 24.0 * std::f64::consts::TAU).cos());
        let d = k.diurnal_amplitude * s.diurnal_sens * evening;

        let episode_rtt = s.sev * k.episode_rtt_ms;
        let loss_mult = 1.0 + s.sev * (k.episode_loss_mult - 1.0);
        let jitter_mult = 1.0 + s.sev * (k.episode_jitter_mult - 1.0);

        SegMetrics {
            rtt_ms: s.rtt_ms + episode_rtt + 6.0 * d,
            loss_pct: (s.loss_pct * loss_mult * (1.0 + 0.8 * d)).min(100.0),
            jitter_ms: s.jitter_ms * jitter_mult * (1.0 + 0.8 * d),
        }
    }

    /// Segments traversed by an option between `src` and `dst`, plus the
    /// number of relay hops (for fixed forwarding cost). Returns an inline
    /// fixed-capacity path — no heap allocation on the sample hot path.
    pub fn segments_of(&self, src: AsId, dst: AsId, option: RelayOption) -> SegmentPath {
        match option.canonical() {
            RelayOption::Direct => SegmentPath::new(
                &[
                    Segment::Access(src),
                    Segment::direct(src, dst),
                    Segment::Access(dst),
                ],
                0,
            ),
            RelayOption::Bounce(r) => SegmentPath::new(
                &[
                    Segment::Access(src),
                    Segment::RelayWan(src, r),
                    Segment::RelayWan(dst, r),
                    Segment::Access(dst),
                ],
                1,
            ),
            RelayOption::Transit(r1, r2) => {
                // Pick the orientation with the shorter on-ramps: the managed
                // network routes sensibly. Distances come from the precomputed
                // AS↔relay table (same haversine values, no trig per query).
                let n = self.relay_pos.len();
                let d = |a: AsId, r: RelayId| self.as_relay_km[a.index() * n + r.index()];
                let d_fwd = d(src, r1) + d(dst, r2);
                let d_rev = d(src, r2) + d(dst, r1);
                let (rin, rout) = if d_fwd <= d_rev { (r1, r2) } else { (r2, r1) };
                SegmentPath::new(
                    &[
                        Segment::Access(src),
                        Segment::RelayWan(src, rin),
                        Segment::backbone(rin, rout),
                        Segment::RelayWan(dst, rout),
                        Segment::Access(dst),
                    ],
                    2,
                )
            }
        }
    }

    /// Expected end-to-end metrics of `option` at time `t`, *excluding*
    /// per-call transient spikes (which inflate realized means uniformly by
    /// `call_spike_prob × E[spike_mult − 1]` ≈ 5 % and therefore do not
    /// change option rankings).
    pub fn option_mean(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        t: SimTime,
    ) -> PathMetrics {
        let path = self.segments_of(src, dst, option);
        let mut acc = SegMetrics::default();
        for seg in path.segments() {
            acc = acc.chain(&self.segment_mean(*seg, t));
        }
        PathMetrics::new(
            acc.rtt_ms + path.hops() as f64 * self.knobs.relay_hop_cost_ms,
            acc.loss_pct,
            acc.jitter_ms,
        )
    }

    /// Draws one realized call over `option` at time `t`: the mean plus
    /// per-call noise (multiplicative lognormal on RTT and jitter, Gamma on
    /// loss — heavy-tailed, mean-preserving).
    pub fn sample_option(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        t: SimTime,
        rng: &mut StdRng,
    ) -> PathMetrics {
        let mean = self.option_mean(src, dst, option, t);
        self.noise_around(mean, rng)
    }

    /// Like [`PerfModel::sample_option`] but reusing per-time segment means
    /// from `scratch` — same draws, same result, amortized cost when a call
    /// scores several options at one instant (they share access legs and
    /// often relay legs). Draw-for-draw and bit-for-bit identical to the
    /// scratch-free path, so mixing the two APIs cannot change a replay.
    pub fn sample_option_scratch(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        t: SimTime,
        rng: &mut StdRng,
        scratch: &mut SampleScratch,
    ) -> PathMetrics {
        let mean = self.option_mean_scratch(src, dst, option, t, scratch);
        self.noise_around(mean, rng)
    }

    /// Like [`PerfModel::option_mean`] but memoizing segment means in
    /// `scratch` for the current instant. Values are bit-identical: the
    /// memo caches `segment_mean` results (pure per `(segment, t)`) and the
    /// chain still folds them in path order.
    pub fn option_mean_scratch(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        t: SimTime,
        scratch: &mut SampleScratch,
    ) -> PathMetrics {
        if scratch.t != Some(t) {
            scratch.seg_means.clear();
            scratch.t = Some(t);
        }
        let path = self.segments_of(src, dst, option);
        let mut acc = SegMetrics::default();
        for seg in path.segments() {
            let m = match scratch.seg_means.get(seg) {
                Some(m) => *m,
                None => {
                    // Two-level memo: a same-day hit serves the mean from the
                    // scratch-resident day state (stack math only) instead of
                    // re-reading the slot table and episode series.
                    let m = match scratch.day_states.get(seg) {
                        Some(ds) if ds.day == t.day() => self.mean_from_day(ds, t),
                        _ => {
                            let ds = self.seg_day_state(*seg, t.day());
                            let m = self.mean_from_day(&ds, t);
                            scratch.day_states.insert(*seg, ds);
                            m
                        }
                    };
                    scratch.seg_means.insert(*seg, m);
                    m
                }
            };
            acc = acc.chain(&m);
        }
        PathMetrics::new(
            acc.rtt_ms + path.hops() as f64 * self.knobs.relay_hop_cost_ms,
            acc.loss_pct,
            acc.jitter_ms,
        )
    }

    /// Draws one realized call over `option` together with a
    /// common-random-numbers baseline realization of `baseline` at the same
    /// instant, from one set of noise draws.
    ///
    /// The first returned value is draw-for-draw and bit-for-bit identical
    /// to [`PerfModel::sample_option_scratch`] for `option` — mixing this
    /// API into a replay cannot change any call outcome or the RNG stream.
    /// The second applies the *same* multiplicative RTT/jitter factors, the
    /// same scale-free gamma loss parts and the same spike event to the
    /// baseline's mean, so the pair differs only through the two path means.
    /// That is the textbook CRN pairing — the baseline shares the call's own
    /// luck instead of drawing an independent realization — and it makes a
    /// per-call quality-delta baseline cost segment-mean math only, with no
    /// extra transcendental noise draws.
    #[allow(clippy::too_many_arguments)] // mirrors the from_parts entry point
    pub fn sample_option_paired_scratch(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        baseline: RelayOption,
        t: SimTime,
        rng: &mut StdRng,
        scratch: &mut SampleScratch,
    ) -> (PathMetrics, PathMetrics) {
        let base = self.option_mean_scratch(src, dst, baseline, t, scratch);
        let chosen = self.option_mean_scratch(src, dst, option, t, scratch);
        self.noise_around_paired(chosen, base, rng)
    }

    /// [`PerfModel::sample_option_paired_scratch`] with the baseline's day
    /// parts supplied by the caller — for hot loops that amortize the
    /// baseline path's latent state across many calls of one pair (see
    /// [`PerfModel::path_day_parts`]). The chosen path is scored *first* so
    /// the baseline's mean can serve the pair's shared access legs from the
    /// instant memo ([`PerfModel::mean_from_parts_scratch`]). Mean order
    /// doesn't touch the RNG, and `parts` covering the pair's direct path
    /// reproduces `option_mean_scratch` exactly, so this is bit-identical
    /// to the plain paired call.
    #[allow(clippy::too_many_arguments)] // the paired hot-path entry point
    pub fn sample_option_paired_from_parts(
        &self,
        src: AsId,
        dst: AsId,
        option: RelayOption,
        parts: &PathDayParts,
        t: SimTime,
        rng: &mut StdRng,
        scratch: &mut SampleScratch,
    ) -> (PathMetrics, PathMetrics) {
        let chosen = self.option_mean_scratch(src, dst, option, t, scratch);
        let base = self.mean_from_parts_scratch(parts, t, scratch);
        self.noise_around_paired(chosen, base, rng)
    }

    /// CRN-paired form of [`PerfModel::noise_around`]: one set of draws,
    /// applied to both means. The `chosen` result must stay bit-identical to
    /// `noise_around(chosen, rng)` — every expression applied to `chosen`
    /// below mirrors that path exactly, including the gamma fallback
    /// branches and the left-associated `dv * scale * boost` order.
    fn noise_around_paired(
        &self,
        chosen: PathMetrics,
        baseline: PathMetrics,
        rng: &mut StdRng,
    ) -> (PathMetrics, PathMetrics) {
        let k = &self.knobs;

        let rtt_noise = self.rtt_noise.map_or(1.0, |d| d.sample(rng));
        let jitter_noise = self.jitter_noise.map_or(1.0, |d| d.sample(rng));

        let (loss, base_loss) = if chosen.loss_pct > 1e-9 {
            match Gamma::new(k.call_loss_shape, chosen.loss_pct / k.call_loss_shape) {
                Ok(d) => {
                    // `Gamma::sample` is exactly `dv * scale * boost`; reusing
                    // the scale-free parts under the baseline's scale is the
                    // CRN share.
                    let (dv, boost) = d.sample_parts(rng);
                    let loss = dv * (chosen.loss_pct / k.call_loss_shape) * boost;
                    let base_loss = if baseline.loss_pct > 1e-9 {
                        dv * (baseline.loss_pct / k.call_loss_shape) * boost
                    } else {
                        0.0
                    };
                    (loss, base_loss)
                }
                // Degenerate shape knob: both sides fall back to their means,
                // mirroring `noise_around`'s draw-free fallback.
                Err(_) => (chosen.loss_pct, baseline.loss_pct),
            }
        } else {
            // A loss-free chosen path draws no gamma, so there are no parts
            // to share: the baseline keeps its spike-free mean loss.
            (
                0.0,
                if baseline.loss_pct > 1e-9 {
                    baseline.loss_pct
                } else {
                    0.0
                },
            )
        };

        let (spike_mult, spike_loss) = if rng.random::<f64>() < k.call_spike_prob {
            (
                rng.random_range(1.5..k.call_spike_mult.max(1.6)),
                rng.random_range(0.5..3.0),
            )
        } else {
            (1.0, 0.0)
        };

        (
            PathMetrics::new(
                chosen.rtt_ms * rtt_noise * spike_mult,
                loss + spike_loss,
                chosen.jitter_ms * jitter_noise * spike_mult,
            ),
            PathMetrics::new(
                baseline.rtt_ms * rtt_noise * spike_mult,
                base_loss + spike_loss,
                baseline.jitter_ms * jitter_noise * spike_mult,
            ),
        )
    }

    /// Applies the per-call noise model around an option mean: RTT/jitter
    /// noise from the prebuilt unit-mean lognormals, Gamma loss, transient
    /// spikes. One code path shared by both sampling APIs so the draw
    /// sequence is identical.
    fn noise_around(&self, mean: PathMetrics, rng: &mut StdRng) -> PathMetrics {
        let k = &self.knobs;

        let rtt_noise = self.rtt_noise.map_or(1.0, |d| d.sample(rng));
        let jitter_noise = self.jitter_noise.map_or(1.0, |d| d.sample(rng));

        let loss = if mean.loss_pct > 1e-9 {
            // Degenerate knob values (shape ≤ 0) fall back to the mean
            // itself rather than panicking.
            Gamma::new(k.call_loss_shape, mean.loss_pct / k.call_loss_shape)
                .map_or(mean.loss_pct, |d| d.sample(rng))
        } else {
            0.0
        };

        // Transient outliers: short-lived congestion events that per-call
        // averages cannot hide — the heavy tail that breaks naive reward
        // normalization (§4.5).
        let (spike_mult, spike_loss) = if rng.random::<f64>() < k.call_spike_prob {
            (
                rng.random_range(1.5..k.call_spike_mult.max(1.6)),
                rng.random_range(0.5..3.0),
            )
        } else {
            (1.0, 0.0)
        };

        PathMetrics::new(
            mean.rtt_ms * rtt_noise * spike_mult,
            loss + spike_loss,
            mean.jitter_ms * jitter_noise * spike_mult,
        )
    }

    /// The controller's knowledge of inter-relay performance (§3.2: "we also
    /// have information from Skype on the RTT, loss and jitter between their
    /// relay nodes"). Static backbone metrics, no client noise.
    pub fn backbone_metrics(&self, r1: RelayId, r2: RelayId) -> PathMetrics {
        let m = self.segment_mean(Segment::backbone(r1, r2), SimTime::ZERO);
        PathMetrics::new(m.rtt_ms, m.loss_pct, m.jitter_ms)
    }
}

/// Reusable memo for scoring several options at one instant (one call's
/// candidate set, a racing stage, an oracle scan). Caches `segment_mean`
/// results keyed by segment for the current [`SimTime`]; moving to a new
/// instant invalidates the cache automatically. Candidate paths share their
/// access legs (and often relay legs), so a k-option scan touches each
/// distinct segment's episode/diurnal math once instead of per option.
///
/// Purely a cost move: cached values are bit-identical to fresh
/// `segment_mean` calls, and no RNG state lives here.
#[derive(Debug, Clone, Default)]
pub struct SampleScratch {
    seg_means: HashMap<Segment, SegMetrics, std::hash::BuildHasherDefault<SegMemoHasher>>,
    /// Day-scoped latent state per segment. Unlike `seg_means` this survives
    /// moving to a new instant (most calls advance within the same simulated
    /// day), so a trace that revisits a segment pays the slot-table and
    /// episode-series reads once per day instead of once per call. Entries
    /// carry their day and are replaced in place when it rolls over; memory
    /// is bounded by the number of distinct segments the worker touches.
    day_states: HashMap<Segment, SegDayState, std::hash::BuildHasherDefault<SegMemoHasher>>,
    t: Option<SimTime>,
}

/// One path's captured day-scoped latent parts — see
/// [`PerfModel::path_day_parts`]. Holds the `(src, dst, day)` key it was
/// captured for so callers caching one of these can check
/// [`PathDayParts::covers`] before reuse.
#[derive(Debug, Clone, Copy)]
pub struct PathDayParts {
    src: AsId,
    dst: AsId,
    day: u64,
    /// The captured path itself — keeps the segment keys alongside their
    /// day states so memo-probing consumers can look means up by segment.
    path: SegmentPath,
    segs: [SegDayState; SegmentPath::MAX],
}

impl PathDayParts {
    /// Whether these parts were captured for exactly this endpoint pair and
    /// simulated day — the precondition for
    /// [`PerfModel::mean_from_parts`] to reproduce `option_mean_scratch`.
    #[inline]
    pub fn covers(&self, src: AsId, dst: AsId, day: u64) -> bool {
        self.src == src && self.dst == dst && self.day == day
    }
}

/// Day-scoped slice of one segment's latent state: everything
/// [`PerfModel::segment_mean`] reads except the intra-day diurnal factor.
/// See [`PerfModel::seg_day_state`].
#[derive(Debug, Clone, Copy, Default)]
struct SegDayState {
    day: u64,
    sev: f64,
    rtt_ms: f64,
    loss_pct: f64,
    jitter_ms: f64,
    diurnal_sens: f64,
    lon_deg: f64,
}

/// Multiply–rotate hasher for the scratch memo. SipHash (the `HashMap`
/// default) costs tens of nanoseconds per probe, which is measurable at
/// three lookups per sampled option; segment keys are a couple of small
/// integers, so a splitmix-finished mix is plenty. Only memo *performance*
/// depends on this hasher — hits return cached values that are bit-identical
/// either way, and nothing iterates the map.
#[derive(Debug, Clone, Default)]
struct SegMemoHasher(u64);

impl std::hash::Hasher for SegMemoHasher {
    fn finish(&self) -> u64 {
        seed::splitmix64(self.0)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(29) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

impl SampleScratch {
    /// An empty scratch. One per worker/thread; reuse across calls.
    pub fn new() -> SampleScratch {
        SampleScratch::default()
    }
}

/// Lognormal with a given *mean* (log-sigma `sigma`), sampled once.
fn lognormal_mean(rng: &mut StdRng, mean: f64, sigma: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let mu = mean.ln() - sigma * sigma / 2.0;
    // `new` only fails for non-finite mu or negative sigma; fall back to
    // the target mean instead of panicking on degenerate parameters.
    LogNormal::new(mu, sigma).map_or(mean, |d| d.sample(rng))
}

/// Lognormal with a given *median*, sampled once.
fn lognormal_median(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    LogNormal::new(median.ln(), sigma).map_or(median, |d| d.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::topology::World;
    use via_model::stats::OnlineStats;

    fn world() -> World {
        World::generate(&WorldConfig::tiny(), 42)
    }

    #[test]
    fn means_are_deterministic_across_queries() {
        let w = world();
        let src = AsId(0);
        let dst = AsId(5);
        let t = SimTime::from_days(3);
        let m1 = w.perf().option_mean(src, dst, RelayOption::Direct, t);
        let m2 = w.perf().option_mean(src, dst, RelayOption::Direct, t);
        assert_eq!(m1, m2);
    }

    #[test]
    fn two_models_agree_regardless_of_query_order() {
        let w1 = world();
        let w2 = world();
        let t = SimTime::from_days(2);
        // Warm w2's cache in a different order first.
        let _ = w2
            .perf()
            .option_mean(AsId(3), AsId(4), RelayOption::Direct, t);
        let a = w1
            .perf()
            .option_mean(AsId(0), AsId(5), RelayOption::Bounce(RelayId(1)), t);
        let b = w2
            .perf()
            .option_mean(AsId(0), AsId(5), RelayOption::Bounce(RelayId(1)), t);
        assert_eq!(a, b);
    }

    #[test]
    fn samples_scatter_around_mean() {
        let w = world();
        let t = SimTime::from_days(1);
        let mean = w
            .perf()
            .option_mean(AsId(0), AsId(7), RelayOption::Direct, t);
        let mut rng = StdRng::seed_from_u64(1);
        let mut rtt = OnlineStats::new();
        let mut loss = OnlineStats::new();
        for _ in 0..4000 {
            let s = w
                .perf()
                .sample_option(AsId(0), AsId(7), RelayOption::Direct, t, &mut rng);
            rtt.push(s.rtt_ms);
            loss.push(s.loss_pct);
        }
        let rtt_mean = rtt.mean().unwrap();
        // Transient spikes (call_spike_prob) uniformly inflate realized
        // means ~5% above the spike-free `option_mean`; option rankings are
        // unaffected.
        assert!(
            (rtt_mean - mean.rtt_ms) / mean.rtt_ms > -0.02,
            "sample mean {rtt_mean} fell below model mean {}",
            mean.rtt_ms
        );
        assert!(
            (rtt_mean - mean.rtt_ms).abs() / mean.rtt_ms < 0.12,
            "sample mean {rtt_mean} vs model mean {}",
            mean.rtt_ms
        );
        if mean.loss_pct > 0.01 {
            // Spikes also add ~0.05% absolute loss on average.
            let loss_mean = loss.mean().unwrap();
            assert!(
                loss_mean >= mean.loss_pct * 0.7 && loss_mean <= mean.loss_pct * 1.3 + 0.1,
                "loss sample mean {loss_mean} vs {}",
                mean.loss_pct
            );
        }
    }

    #[test]
    fn scratch_sampling_is_bit_identical_to_plain_sampling() {
        let w = world();
        let mut scratch = SampleScratch::new();
        let options = [
            RelayOption::Direct,
            RelayOption::Bounce(RelayId(1)),
            RelayOption::Transit(RelayId(0), RelayId(2)),
            RelayOption::Transit(RelayId(3), RelayId(1)),
        ];
        // Interleave times so the scratch invalidation path is exercised,
        // and compare full RNG streams, not just single draws.
        let mut plain_rng = StdRng::seed_from_u64(99);
        let mut scratch_rng = StdRng::seed_from_u64(99);
        for day in [1u64, 4, 1, 9] {
            let t = SimTime::from_days(day);
            for &opt in &options {
                assert_eq!(
                    w.perf().option_mean(AsId(0), AsId(7), opt, t),
                    w.perf()
                        .option_mean_scratch(AsId(0), AsId(7), opt, t, &mut scratch),
                    "means diverge for {opt:?} day {day}"
                );
                let a = w
                    .perf()
                    .sample_option(AsId(0), AsId(7), opt, t, &mut plain_rng);
                let b = w.perf().sample_option_scratch(
                    AsId(0),
                    AsId(7),
                    opt,
                    t,
                    &mut scratch_rng,
                    &mut scratch,
                );
                assert_eq!(
                    a.rtt_ms.to_bits(),
                    b.rtt_ms.to_bits(),
                    "rtt diverges for {opt:?} day {day}"
                );
                assert_eq!(a.loss_pct.to_bits(), b.loss_pct.to_bits());
                assert_eq!(a.jitter_ms.to_bits(), b.jitter_ms.to_bits());
            }
        }
        // And the two RNGs must have consumed identical draw counts.
        assert_eq!(
            plain_rng.random::<u64>(),
            scratch_rng.random::<u64>(),
            "draw streams desynced"
        );
    }

    #[test]
    fn paired_sampling_keeps_chosen_bit_identical_and_streams_synced() {
        let w = world();
        let mut scratch_a = SampleScratch::new();
        let mut scratch_b = SampleScratch::new();
        let mut rng_a = StdRng::seed_from_u64(123);
        let mut rng_b = StdRng::seed_from_u64(123);
        let options = [
            RelayOption::Direct,
            RelayOption::Bounce(RelayId(2)),
            RelayOption::Transit(RelayId(0), RelayId(3)),
        ];
        for day in [0u64, 3, 3, 8] {
            let t = SimTime::from_days(day);
            for &opt in &options {
                let plain = w.perf().sample_option_scratch(
                    AsId(1),
                    AsId(6),
                    opt,
                    t,
                    &mut rng_a,
                    &mut scratch_a,
                );
                let (chosen, base) = w.perf().sample_option_paired_scratch(
                    AsId(1),
                    AsId(6),
                    opt,
                    RelayOption::Direct,
                    t,
                    &mut rng_b,
                    &mut scratch_b,
                );
                assert_eq!(
                    plain.rtt_ms.to_bits(),
                    chosen.rtt_ms.to_bits(),
                    "chosen rtt diverges for {opt:?} day {day}"
                );
                assert_eq!(plain.loss_pct.to_bits(), chosen.loss_pct.to_bits());
                assert_eq!(plain.jitter_ms.to_bits(), chosen.jitter_ms.to_bits());
                assert!(base.is_finite());
                if opt == RelayOption::Direct {
                    // Pairing an option with itself must be exact, not close.
                    assert_eq!(chosen, base);
                }
            }
        }
        // The paired API must consume exactly the draws the plain API does.
        assert_eq!(
            rng_a.random::<u64>(),
            rng_b.random::<u64>(),
            "draw streams desynced"
        );
    }

    #[test]
    fn path_day_parts_reproduce_option_means_exactly() {
        // The pair-group baseline cache rests on this identity: a mean
        // computed from captured day parts must be bit-for-bit what
        // `option_mean_scratch` returns at any instant of that day.
        let w = world();
        let mut scratch = SampleScratch::new();
        let options = [
            RelayOption::Direct,
            RelayOption::Bounce(RelayId(1)),
            RelayOption::Transit(RelayId(2), RelayId(0)),
        ];
        for day in [0u64, 2, 7] {
            for &opt in &options {
                let parts = w.perf().path_day_parts(AsId(3), AsId(9), opt, day);
                assert!(parts.covers(AsId(3), AsId(9), day));
                assert!(!parts.covers(AsId(3), AsId(9), day + 1));
                assert!(!parts.covers(AsId(9), AsId(3), day));
                for hour in [0u64, 5, 13, 23] {
                    let t = SimTime(day * 86_400 + hour * 3_600 + 17);
                    let from_parts = w.perf().mean_from_parts(&parts, t);
                    // The memo-served capture must agree whatever mix of
                    // day-memo hits and slot fallbacks it resolved from.
                    let via_scratch =
                        w.perf()
                            .path_day_parts_scratch(AsId(3), AsId(9), opt, day, &scratch);
                    assert_eq!(
                        w.perf().mean_from_parts(&via_scratch, t),
                        from_parts,
                        "scratch-served parts diverge for {opt:?} day {day} hour {hour}"
                    );
                    let fresh =
                        w.perf()
                            .option_mean_scratch(AsId(3), AsId(9), opt, t, &mut scratch);
                    assert_eq!(
                        from_parts.rtt_ms.to_bits(),
                        fresh.rtt_ms.to_bits(),
                        "rtt diverges for {opt:?} day {day} hour {hour}"
                    );
                    assert_eq!(from_parts.loss_pct.to_bits(), fresh.loss_pct.to_bits());
                    assert_eq!(from_parts.jitter_ms.to_bits(), fresh.jitter_ms.to_bits());
                    // After the fresh scan the instant memo holds this path's
                    // segment means; the memo-probing mean must serve them
                    // (and miss-fallback segments alike) bit-identically.
                    assert_eq!(
                        w.perf().mean_from_parts_scratch(&parts, t, &scratch),
                        from_parts,
                        "memo-served mean diverges for {opt:?} day {day} hour {hour}"
                    );
                }
            }
        }
    }

    #[test]
    fn paired_baseline_shares_the_calls_noise() {
        // CRN pairing: both realizations carry the same multiplicative luck,
        // so the rtt ratio to the respective means is identical per call.
        let w = world();
        let t = SimTime::from_days(2);
        let opt = RelayOption::Bounce(RelayId(1));
        let mean_c = w.perf().option_mean(AsId(0), AsId(7), opt, t);
        let mean_b = w
            .perf()
            .option_mean(AsId(0), AsId(7), RelayOption::Direct, t);
        let mut scratch = SampleScratch::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let (c, b) = w.perf().sample_option_paired_scratch(
                AsId(0),
                AsId(7),
                opt,
                RelayOption::Direct,
                t,
                &mut rng,
                &mut scratch,
            );
            let rc = c.rtt_ms / mean_c.rtt_ms;
            let rb = b.rtt_ms / mean_b.rtt_ms;
            assert!(
                (rc - rb).abs() < 1e-12 * rc.abs().max(1.0),
                "rtt noise not shared: {rc} vs {rb}"
            );
        }
    }

    #[test]
    fn backbone_beats_public_wan() {
        let w = world();
        let t = SimTime::ZERO;
        // Compare the backbone segment against a direct WAN segment over a
        // similar distance: the backbone must be much cleaner.
        let bb = w.perf().backbone_metrics(RelayId(0), RelayId(1));
        assert!(bb.loss_pct < 0.05);
        assert!(bb.jitter_ms < 1.0);
        let direct = w.perf().segment_mean(Segment::direct(AsId(0), AsId(9)), t);
        assert!(direct.loss_pct > bb.loss_pct);
    }

    #[test]
    fn transit_orientation_picks_short_on_ramps() {
        let w = world();
        let path = w.perf().segments_of(
            AsId(0),
            AsId(9),
            RelayOption::Transit(RelayId(0), RelayId(1)),
        );
        assert_eq!(path.hops(), 2);
        assert_eq!(path.len(), 5);
        // First relay leg must attach to the source AS.
        match path.segments()[1] {
            Segment::RelayWan(a, _) => assert_eq!(a, AsId(0)),
            ref s => panic!("unexpected segment {s:?}"),
        }
    }

    #[test]
    fn concurrent_first_touch_builds_each_segment_once() {
        let w = world();
        // A sparse (DirectWan) segment that nothing has touched yet: many
        // threads race to materialize it concurrently.
        let seg = Segment::direct(AsId(2), AsId(11));
        let t = SimTime::from_days(1);
        assert_eq!(w.perf().segment_builds(), 0);
        let means: Vec<SegMetrics> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| w.perf().segment_mean(seg, t)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            w.perf().segment_builds(),
            1,
            "racing first touches must build the segment exactly once"
        );
        for m in &means[1..] {
            assert_eq!(*m, means[0]);
        }
        // Re-querying (and warming) an already-built segment builds nothing.
        let _ = w.perf().segment_mean(seg, t);
        assert_eq!(w.perf().warm([seg]), 0);
        assert_eq!(w.perf().segment_builds(), 1);
    }

    #[test]
    fn warm_pass_does_not_change_results() {
        let cold = world();
        let warm = world();
        let t = SimTime::from_days(2);
        let opt = RelayOption::Transit(RelayId(0), RelayId(2));
        let path = warm.perf().segments_of(AsId(1), AsId(8), opt);
        let built = warm.perf().warm(path.segments().iter().copied());
        assert_eq!(built, path.len() as u64);
        assert_eq!(
            cold.perf().option_mean(AsId(1), AsId(8), opt, t),
            warm.perf().option_mean(AsId(1), AsId(8), opt, t),
        );
    }

    #[test]
    fn rtt_respects_physics() {
        let w = World::generate(&WorldConfig::small(), 3);
        let t = SimTime::from_days(1);
        for (a, b) in [(AsId(0), AsId(20)), (AsId(3), AsId(33))] {
            let lower = w.ases[a.index()].pos.min_rtt_ms(&w.ases[b.index()].pos);
            let m = w.perf().option_mean(a, b, RelayOption::Direct, t);
            assert!(
                m.rtt_ms >= lower,
                "model RTT {} under the speed of light {}",
                m.rtt_ms,
                lower
            );
        }
    }

    #[test]
    fn diurnal_variation_moves_metrics() {
        let w = world();
        let seg = Segment::direct(AsId(0), AsId(7));
        let mut values: Vec<f64> = (0..24)
            .map(|h| w.perf().segment_mean(seg, SimTime::from_hours(h)).jitter_ms)
            .collect();
        values.sort_by(f64::total_cmp);
        assert!(
            values.last().unwrap() > &(values[0] * 1.05),
            "expected diurnal swing, got flat {values:?}"
        );
    }

    #[test]
    fn loss_never_exceeds_bounds() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(2);
        let t = SimTime::from_days(5);
        for _ in 0..500 {
            let s = w
                .perf()
                .sample_option(AsId(1), AsId(8), RelayOption::Direct, t, &mut rng);
            assert!((0.0..=100.0).contains(&s.loss_pct));
            assert!(s.rtt_ms >= 0.0 && s.jitter_ms >= 0.0);
            assert!(s.is_finite());
        }
    }
}
