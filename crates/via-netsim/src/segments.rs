//! Network segments and their latent performance parameters.
//!
//! The performance model decomposes every end-to-end path into segments
//! (§4.4 of the paper uses the same decomposition for tomography):
//!
//! ```text
//! direct:        access(src) + wan_direct(src, dst)            + access(dst)
//! bounce(r):     access(src) + wan_relay(src,r) + wan_relay(dst,r) + access(dst)
//! transit(r1,r2):access(src) + wan_relay(src,r1) + backbone(r1,r2)
//!                            + wan_relay(dst,r2) + access(dst)
//! ```
//!
//! Each WAN segment carries *static latents* (inflation over the fiber bound,
//! base loss, base jitter) drawn once per world seed, and a *daily episode
//! process* (a two-state Markov chain over days with per-episode severity)
//! that produces the persistence/prevalence structure of §2.4. Access
//! segments model the last mile and are shared by every relaying option for
//! the same endpoint — which is exactly why relaying cannot fix a poor last
//! hop (§2.2).

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use via_model::ids::{AsId, RelayId};
use via_model::seed;

/// A key identifying one segment of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Last-mile + intra-AS component of an endpoint AS.
    Access(AsId),
    /// Public-Internet WAN path between two ASes (direct/default route).
    /// Stored canonically (lo, hi).
    DirectWan(AsId, AsId),
    /// Public-Internet leg between an AS and a relay datacenter.
    RelayWan(AsId, RelayId),
    /// Private backbone segment between two relays. Stored canonically.
    Backbone(RelayId, RelayId),
}

impl Segment {
    /// Canonical direct-WAN segment (order independent).
    pub fn direct(a: AsId, b: AsId) -> Segment {
        if a <= b {
            Segment::DirectWan(a, b)
        } else {
            Segment::DirectWan(b, a)
        }
    }

    /// Canonical backbone segment (order independent).
    pub fn backbone(a: RelayId, b: RelayId) -> Segment {
        if a <= b {
            Segment::Backbone(a, b)
        } else {
            Segment::Backbone(b, a)
        }
    }

    /// A stable 64-bit code for seeding this segment's random streams.
    pub fn seed_code(&self) -> u64 {
        match *self {
            Segment::Access(a) => 0x01_0000_0000 | u64::from(a.0),
            Segment::DirectWan(a, b) => 0x02_0000_0000 | (u64::from(a.0) << 20) | u64::from(b.0),
            Segment::RelayWan(a, r) => 0x03_0000_0000 | (u64::from(a.0) << 20) | u64::from(r.0),
            Segment::Backbone(a, b) => 0x04_0000_0000 | (u64::from(a.0) << 20) | u64::from(b.0),
        }
    }
}

/// The segments traversed by one relaying option, stored inline.
///
/// Every option decomposes into at most five segments (transit:
/// `access + relay-wan + backbone + relay-wan + access`), so the path fits
/// in a fixed-capacity array — the per-call sample path never touches the
/// heap. Returned by `PerfModel::segments_of`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPath {
    segs: [Segment; SegmentPath::MAX],
    len: u8,
    hops: u8,
}

impl SegmentPath {
    /// Maximum number of segments any option decomposes into.
    pub const MAX: usize = 5;

    /// Builds a path from up to [`SegmentPath::MAX`] segments and a relay
    /// hop count. Segments beyond the capacity are ignored (no option
    /// produces them; callers are the perf model's own decompositions).
    pub fn new(segments: &[Segment], hops: u8) -> Self {
        // Pad unused slots with a neutral value; `len` masks them off.
        let mut segs = [Segment::Access(AsId(0)); Self::MAX];
        let len = segments.len().min(Self::MAX);
        segs[..len].copy_from_slice(&segments[..len]);
        Self {
            segs,
            // `len` is `min`-clamped to `Self::MAX` (= 5) on the line above,
            // so this narrowing can never truncate.
            // via-audit: allow(cast-truncation)
            len: len as u8,
            hops,
        }
    }

    /// The traversed segments, in path order.
    pub fn segments(&self) -> &[Segment] {
        &self.segs[..usize::from(self.len)]
    }

    /// Number of relay hops (0 direct, 1 bounce, 2 transit), for the fixed
    /// forwarding cost.
    pub fn hops(&self) -> usize {
        usize::from(self.hops)
    }

    /// Number of segments in the path.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when the path holds no segments.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<'a> IntoIterator for &'a SegmentPath {
    type Item = &'a Segment;
    type IntoIter = std::slice::Iter<'a, Segment>;

    fn into_iter(self) -> Self::IntoIter {
        self.segments().iter()
    }
}

/// Mean performance contribution of one segment at one instant
/// (round-trip, both directions of the call traverse it).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SegMetrics {
    /// Round-trip latency contribution in ms.
    pub rtt_ms: f64,
    /// Loss probability contribution in percent.
    pub loss_pct: f64,
    /// Jitter contribution in ms (composed in quadrature).
    pub jitter_ms: f64,
}

impl SegMetrics {
    /// Composes two independent segments in series: RTT adds, loss combines
    /// through complements (1−(1−p)(1−q)), jitter adds in quadrature
    /// (independent delay-variation processes).
    pub fn chain(&self, other: &SegMetrics) -> SegMetrics {
        let p1 = (self.loss_pct / 100.0).clamp(0.0, 1.0);
        let p2 = (other.loss_pct / 100.0).clamp(0.0, 1.0);
        SegMetrics {
            rtt_ms: self.rtt_ms + other.rtt_ms,
            loss_pct: 100.0 * (1.0 - (1.0 - p1) * (1.0 - p2)),
            jitter_ms: (self.jitter_ms.powi(2) + other.jitter_ms.powi(2)).sqrt(),
        }
    }
}

/// How episode-prone a segment is. Drawn per segment from tier-dependent
/// class probabilities; the three classes reproduce the skewed
/// persistence/prevalence distributions of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stability {
    /// ~10 % of segments: long-lived, near-permanent congestion.
    Chronic,
    /// ~25 %: short episodes a few times a month.
    Flaky,
    /// The rest: rare, brief episodes.
    Stable,
}

impl Stability {
    /// Daily probability of entering an episode when currently normal.
    pub fn enter_prob(self) -> f64 {
        match self {
            Stability::Chronic => 0.65,
            Stability::Flaky => 0.12,
            Stability::Stable => 0.025,
        }
    }

    /// Daily probability of remaining in an ongoing episode.
    pub fn stay_prob(self) -> f64 {
        match self {
            Stability::Chronic => 0.85,
            Stability::Flaky => 0.50,
            Stability::Stable => 0.35,
        }
    }
}

/// The daily episode-severity series of one segment.
///
/// `severity[d] ∈ [0, 1]`: 0 means normal operation on day `d`; positive
/// values scale the episode's RTT/loss/jitter penalties. Generated once per
/// segment by walking the Markov chain from day 0, so any query order yields
/// identical results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSeries {
    severity: Vec<f32>,
}

impl EpisodeSeries {
    /// Walks the two-state chain for `days` days. `world_seed` and the
    /// segment's stable code determine the stream; `stability` sets the
    /// transition probabilities.
    pub fn generate(world_seed: u64, segment: Segment, stability: Stability, days: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed::derive_indexed(
            world_seed,
            "episodes",
            segment.seed_code(),
        ));
        let mut severity = Vec::with_capacity(days as usize);
        let mut current: f32 = 0.0;
        for _ in 0..days {
            if current == 0.0 {
                if rng.random::<f64>() < stability.enter_prob() {
                    current = rng.random_range(0.25..=1.0);
                }
            } else if rng.random::<f64>() < stability.stay_prob() {
                // Severity drifts a little within an episode.
                let drift: f32 = rng.random_range(-0.1..=0.1);
                current = (current + drift).clamp(0.15, 1.0);
            } else {
                current = 0.0;
            }
            severity.push(current);
        }
        Self { severity }
    }

    /// Severity on day `d`; days beyond the horizon repeat the final day so
    /// queries never panic.
    pub fn on_day(&self, d: u64) -> f64 {
        if self.severity.is_empty() {
            return 0.0;
        }
        let idx = (d as usize).min(self.severity.len() - 1);
        f64::from(self.severity[idx])
    }

    /// Fraction of days with an active episode (the "prevalence" of §2.4).
    pub fn prevalence(&self) -> f64 {
        if self.severity.is_empty() {
            return 0.0;
        }
        self.severity.iter().filter(|&&s| s > 0.0).count() as f64 / self.severity.len() as f64
    }

    /// Median length (in days) of maximal runs of consecutive episode days
    /// (the "persistence" of §2.4). Returns 0.0 when no episodes occur.
    pub fn persistence(&self) -> f64 {
        let mut runs = Vec::new();
        let mut run = 0u64;
        for &s in &self.severity {
            if s > 0.0 {
                run += 1;
            } else if run > 0 {
                runs.push(run as f64);
                run = 0;
            }
        }
        if run > 0 {
            runs.push(run as f64);
        }
        via_model::stats::percentile(&runs, 50.0).unwrap_or(0.0)
    }
}

/// Draws a stability class for a segment given its quality tier (1 best … 4
/// worst) and the configured class fractions. Worse tiers shift probability
/// mass toward `Chronic`/`Flaky`.
pub fn draw_stability(
    rng: &mut StdRng,
    tier: u8,
    chronic_fraction: f64,
    flaky_fraction: f64,
) -> Stability {
    let tier_shift = f64::from(tier.saturating_sub(1)) / 3.0; // 0 (tier1) .. 1 (tier4)
    let p_chronic = chronic_fraction * (0.5 + tier_shift);
    let p_flaky = flaky_fraction * (0.6 + 0.8 * tier_shift);
    let u: f64 = rng.random();
    if u < p_chronic {
        Stability::Chronic
    } else if u < p_chronic + p_flaky {
        Stability::Flaky
    } else {
        Stability::Stable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg() -> Segment {
        Segment::direct(AsId(3), AsId(7))
    }

    #[test]
    fn segment_canonicalization() {
        assert_eq!(Segment::direct(AsId(7), AsId(3)), seg());
        assert_eq!(
            Segment::backbone(RelayId(5), RelayId(1)),
            Segment::Backbone(RelayId(1), RelayId(5))
        );
    }

    #[test]
    fn seed_codes_distinguish_kinds() {
        let a = Segment::Access(AsId(1)).seed_code();
        let d = Segment::direct(AsId(0), AsId(1)).seed_code();
        let r = Segment::RelayWan(AsId(0), RelayId(1)).seed_code();
        let b = Segment::backbone(RelayId(0), RelayId(1)).seed_code();
        let all = [a, d, r, b];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn segment_path_is_inline_and_ordered() {
        let segs = [
            Segment::Access(AsId(1)),
            Segment::direct(AsId(1), AsId(2)),
            Segment::Access(AsId(2)),
        ];
        let path = SegmentPath::new(&segs, 0);
        assert_eq!(path.len(), 3);
        assert!(!path.is_empty());
        assert_eq!(path.hops(), 0);
        assert_eq!(path.segments(), &segs);
        let collected: Vec<Segment> = path.into_iter().copied().collect();
        assert_eq!(collected, segs);
        // Oversized input clamps to capacity instead of panicking.
        let many = [Segment::Access(AsId(0)); 9];
        assert_eq!(SegmentPath::new(&many, 2).len(), SegmentPath::MAX);
    }

    #[test]
    fn chain_composition_rules() {
        let a = SegMetrics {
            rtt_ms: 100.0,
            loss_pct: 1.0,
            jitter_ms: 3.0,
        };
        let b = SegMetrics {
            rtt_ms: 50.0,
            loss_pct: 2.0,
            jitter_ms: 4.0,
        };
        let c = a.chain(&b);
        assert_eq!(c.rtt_ms, 150.0);
        // 1 - 0.99*0.98 = 0.0298.
        assert!((c.loss_pct - 2.98).abs() < 1e-9);
        assert!((c.jitter_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn chain_with_zero_is_identity() {
        let a = SegMetrics {
            rtt_ms: 10.0,
            loss_pct: 0.5,
            jitter_ms: 2.0,
        };
        let z = SegMetrics::default();
        let c = a.chain(&z);
        assert!((c.rtt_ms - a.rtt_ms).abs() < 1e-12);
        assert!((c.loss_pct - a.loss_pct).abs() < 1e-9);
        assert!((c.jitter_ms - a.jitter_ms).abs() < 1e-9);
    }

    #[test]
    fn episodes_are_deterministic() {
        let e1 = EpisodeSeries::generate(42, seg(), Stability::Flaky, 30);
        let e2 = EpisodeSeries::generate(42, seg(), Stability::Flaky, 30);
        assert_eq!(e1, e2);
        let e3 = EpisodeSeries::generate(43, seg(), Stability::Flaky, 30);
        assert_ne!(e1, e3, "different world seeds must differ");
    }

    #[test]
    fn chronic_has_higher_prevalence_than_stable() {
        // Average over many segments to wash out noise.
        let mut chronic = 0.0;
        let mut stable = 0.0;
        for i in 0..50 {
            let s = Segment::direct(AsId(i), AsId(i + 1));
            chronic += EpisodeSeries::generate(7, s, Stability::Chronic, 60).prevalence();
            stable += EpisodeSeries::generate(7, s, Stability::Stable, 60).prevalence();
        }
        assert!(
            chronic / 50.0 > 3.0 * (stable / 50.0).max(0.01),
            "chronic {chronic} vs stable {stable}"
        );
    }

    #[test]
    fn on_day_clamps_beyond_horizon() {
        let e = EpisodeSeries::generate(1, seg(), Stability::Chronic, 5);
        assert_eq!(e.on_day(100), e.on_day(4));
    }

    #[test]
    fn persistence_of_known_series() {
        let e = EpisodeSeries {
            severity: vec![0.0, 0.5, 0.5, 0.0, 0.6, 0.0, 0.7, 0.7, 0.7, 0.0],
        };
        // Runs: 2, 1, 3 → median 2.
        assert_eq!(e.persistence(), 2.0);
        assert!((e.prevalence() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn draw_stability_respects_tiers() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut chronic_t4 = 0;
        let mut chronic_t1 = 0;
        for _ in 0..5000 {
            if draw_stability(&mut rng, 4, 0.10, 0.25) == Stability::Chronic {
                chronic_t4 += 1;
            }
            if draw_stability(&mut rng, 1, 0.10, 0.25) == Stability::Chronic {
                chronic_t1 += 1;
            }
        }
        assert!(
            chronic_t4 > 2 * chronic_t1,
            "tier 4 should be chronic far more often ({chronic_t4} vs {chronic_t1})"
        );
    }

    proptest! {
        #[test]
        fn severity_stays_in_unit_range(seed in 0u64..1000, days in 1u64..100) {
            let e = EpisodeSeries::generate(seed, seg(), Stability::Flaky, days);
            for d in 0..days {
                let s = e.on_day(d);
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }

        #[test]
        fn chain_is_commutative(
            r1 in 0f64..500.0, l1 in 0f64..20.0, j1 in 0f64..50.0,
            r2 in 0f64..500.0, l2 in 0f64..20.0, j2 in 0f64..50.0,
        ) {
            let a = SegMetrics { rtt_ms: r1, loss_pct: l1, jitter_ms: j1 };
            let b = SegMetrics { rtt_ms: r2, loss_pct: l2, jitter_ms: j2 };
            let ab = a.chain(&b);
            let ba = b.chain(&a);
            prop_assert!((ab.rtt_ms - ba.rtt_ms).abs() < 1e-9);
            prop_assert!((ab.loss_pct - ba.loss_pct).abs() < 1e-9);
            prop_assert!((ab.jitter_ms - ba.jitter_ms).abs() < 1e-9);
        }

        #[test]
        fn chain_never_exceeds_bounds(
            r1 in 0f64..500.0, l1 in 0f64..100.0, j1 in 0f64..50.0,
            r2 in 0f64..500.0, l2 in 0f64..100.0, j2 in 0f64..50.0,
        ) {
            let a = SegMetrics { rtt_ms: r1, loss_pct: l1, jitter_ms: j1 };
            let b = SegMetrics { rtt_ms: r2, loss_pct: l2, jitter_ms: j2 };
            let c = a.chain(&b);
            prop_assert!(c.loss_pct <= 100.0 + 1e-9);
            prop_assert!(c.loss_pct + 1e-9 >= l1.min(100.0).max(l2.min(100.0)) - 1e-9);
            prop_assert!(c.jitter_ms + 1e-9 >= j1.max(j2));
        }
    }
}
