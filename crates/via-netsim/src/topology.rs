//! World generation: countries, eyeball ASes, relay fleet, and candidate
//! relaying options.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use via_model::ids::{AsId, CountryId, RelayId};
use via_model::options::RelayOption;
use via_model::seed;

use crate::catalog;
use crate::config::WorldConfig;
use crate::geo::GeoPoint;
use crate::perf::PerfModel;

/// A country instantiated in the world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Country {
    /// Dense id.
    pub id: CountryId,
    /// Catalog name.
    pub name: String,
    /// Representative location.
    pub pos: GeoPoint,
    /// Quality tier, 1 (excellent) … 4 (poor).
    pub tier: u8,
    /// Relative call-traffic weight.
    pub weight: f64,
}

/// An eyeball AS (ISP) instantiated in the world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    /// Dense id.
    pub id: AsId,
    /// Country this AS serves.
    pub country: CountryId,
    /// PoP location (country centroid plus jitter).
    pub pos: GeoPoint,
    /// Quality tier; mostly the country tier, occasionally one better or
    /// worse (ISPs within a country differ — the reason Figure 17a finds
    /// AS-level decisions beat country-level ones).
    pub tier: u8,
    /// Relative share of the country's calls carried by this AS.
    pub weight: f64,
}

/// A relay datacenter in the managed network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relay {
    /// Dense id.
    pub id: RelayId,
    /// Site name.
    pub name: String,
    /// Site location.
    pub pos: GeoPoint,
}

/// The fully generated world: topology plus the ground-truth performance
/// model. Everything is deterministic in `(config, seed)`.
#[derive(Debug)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// Seed the world was generated from.
    pub seed: u64,
    /// Instantiated countries.
    pub countries: Vec<Country>,
    /// Instantiated ASes, grouped contiguously by country.
    pub ases: Vec<AsInfo>,
    /// Relay fleet.
    pub relays: Vec<Relay>,
    perf: PerfModel,
}

impl World {
    /// Generates a world from a configuration and a seed.
    ///
    /// # Panics
    /// Panics if the configuration requests more countries or relays than the
    /// catalog provides, or zero ASes per country.
    pub fn generate(config: &WorldConfig, world_seed: u64) -> World {
        assert!(
            config.n_countries >= 2 && config.n_countries <= catalog::COUNTRIES.len(),
            "n_countries out of range"
        );
        assert!(
            config.n_relays >= 2 && config.n_relays <= catalog::SITES.len(),
            "n_relays out of range"
        );
        assert!(config.ases_per_country >= 1, "need at least one AS/country");

        let mut rng = StdRng::seed_from_u64(seed::derive(world_seed, "topology"));

        let countries: Vec<Country> = catalog::COUNTRIES[..config.n_countries]
            .iter()
            .zip(0u32..)
            .map(|(c, i)| Country {
                id: CountryId(i),
                name: c.name.to_string(),
                pos: GeoPoint::new(c.lat, c.lon),
                tier: c.tier,
                weight: c.call_weight,
            })
            .collect();

        let mut ases = Vec::new();
        let mut next_as_id: u32 = 0;
        for country in &countries {
            // Bigger countries host more ASes: scale by sqrt(weight).
            let scale = (country.weight / 3.0).sqrt().clamp(0.5, 2.5);
            let n = ((config.ases_per_country as f64 * scale).round() as usize).max(1);
            for k in 0..n {
                let id = AsId(next_as_id);
                next_as_id += 1;
                // Jitter the PoP position around the country centroid.
                let lat = (country.pos.lat_deg + rng.random_range(-3.0..3.0)).clamp(-89.0, 89.0);
                let lon = wrap_lon(country.pos.lon_deg + rng.random_range(-4.0..4.0));
                // Tier varies ±1 around the country tier for some ASes.
                let tier_delta: i8 = match rng.random_range(0..10) {
                    0 => -1,
                    1 | 2 => 1,
                    _ => 0,
                };
                let tier = country.tier.saturating_add_signed(tier_delta).clamp(1, 4);
                // Zipf-ish within-country market share.
                let weight = 1.0 / (k as f64 + 1.0);
                ases.push(AsInfo {
                    id,
                    country: country.id,
                    pos: GeoPoint::new(lat, lon),
                    tier,
                    weight,
                });
            }
        }

        let relays: Vec<Relay> = catalog::SITES[..config.n_relays]
            .iter()
            .zip(0u32..)
            .map(|(s, i)| Relay {
                id: RelayId(i),
                name: s.name.to_string(),
                pos: GeoPoint::new(s.lat, s.lon),
            })
            .collect();

        let perf = PerfModel::new(world_seed, config.clone(), &ases, &relays);

        World {
            config: config.clone(),
            seed: world_seed,
            countries,
            ases,
            relays,
            perf,
        }
    }

    /// The ground-truth performance model.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Country of an AS.
    pub fn country_of(&self, a: AsId) -> CountryId {
        self.ases[a.index()].country
    }

    /// True if the two ASes are in different countries — the paper's
    /// definition of an international call.
    pub fn is_international(&self, a: AsId, b: AsId) -> bool {
        self.country_of(a) != self.country_of(b)
    }

    /// Enumerates the candidate relaying options for a source–destination AS
    /// pair: the direct path, the `bounce_candidates` single relays with the
    /// smallest geographic detour, and up to `transit_candidates` transit
    /// pairs formed from relays near each endpoint.
    ///
    /// The managed overlay never considers *every* O(R²) pair for every call;
    /// like the paper's deployment (9–20 options per pair, §5.5), the
    /// candidate set is small and geographically sensible. Options are
    /// returned in canonical form, deduplicated, `Direct` first.
    pub fn candidate_options(&self, src: AsId, dst: AsId) -> Vec<RelayOption> {
        let mut scratch = CandidateScratch::default();
        let mut options = Vec::new();
        self.candidate_options_into(src, dst, &mut scratch, &mut options);
        options
    }

    /// Allocation-free form of [`World::candidate_options`]: fills `out`
    /// (cleared first) using `scratch`'s reusable ranking buffers. Replay
    /// workers hold one [`CandidateScratch`] each, so steady-state candidate
    /// enumeration performs no heap allocation. The produced options (content
    /// and order) are identical to [`World::candidate_options`].
    pub fn candidate_options_into(
        &self,
        src: AsId,
        dst: AsId,
        scratch: &mut CandidateScratch,
        out: &mut Vec<RelayOption>,
    ) {
        let src_pos = self.ases[src.index()].pos;
        let dst_pos = self.ases[dst.index()].pos;

        // Rank relays by bounce detour distance.
        let by_detour = &mut scratch.by_detour;
        by_detour.clear();
        by_detour.extend(self.relays.iter().map(|r| {
            let d = src_pos.distance_km(&r.pos) + r.pos.distance_km(&dst_pos);
            (d, r.id)
        }));
        by_detour.sort_by(|a, b| a.0.total_cmp(&b.0));

        out.clear();
        out.push(RelayOption::Direct);
        for &(_, r) in by_detour.iter().take(self.config.bounce_candidates) {
            out.push(RelayOption::Bounce(r));
        }

        // Transit: ingress relays near the source, egress relays near the
        // destination, ranked by total stitched distance.
        let near_src = &mut scratch.near_src;
        near_src.clear();
        near_src.extend(
            self.relays
                .iter()
                .map(|r| (src_pos.distance_km(&r.pos), r.id)),
        );
        near_src.sort_by(|a, b| a.0.total_cmp(&b.0));
        let near_dst = &mut scratch.near_dst;
        near_dst.clear();
        near_dst.extend(
            self.relays
                .iter()
                .map(|r| (dst_pos.distance_km(&r.pos), r.id)),
        );
        near_dst.sort_by(|a, b| a.0.total_cmp(&b.0));

        let k = self.config.transit_candidates.max(1);
        let take = (k as f64).sqrt().ceil() as usize + 1;
        let transits = &mut scratch.transits;
        transits.clear();
        for &(d_in, r_in) in near_src.iter().take(take) {
            for &(d_out, r_out) in near_dst.iter().take(take) {
                if r_in == r_out {
                    continue;
                }
                let bb = self.relays[r_in.index()]
                    .pos
                    .distance_km(&self.relays[r_out.index()].pos);
                let total = d_in + bb + d_out;
                transits.push((total, RelayOption::Transit(r_in, r_out).canonical()));
            }
        }
        transits.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, t) in transits.iter() {
            if out.len() >= 1 + self.config.bounce_candidates + self.config.transit_candidates {
                break;
            }
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
}

/// Reusable ranking buffers for [`World::candidate_options_into`]. Holding
/// one per worker keeps candidate enumeration allocation-free after the
/// first few calls (buffers retain their high-water capacity).
#[derive(Debug, Default)]
pub struct CandidateScratch {
    by_detour: Vec<(f64, RelayId)>,
    near_src: Vec<(f64, RelayId)>,
    near_dst: Vec<(f64, RelayId)>,
    transits: Vec<(f64, RelayOption)>,
}

fn wrap_lon(lon: f64) -> f64 {
    let mut l = lon;
    while l > 180.0 {
        l -= 360.0;
    }
    while l < -180.0 {
        l += 360.0;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(&WorldConfig::tiny(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let w1 = world();
        let w2 = world();
        assert_eq!(w1.ases.len(), w2.ases.len());
        for (a, b) in w1.ases.iter().zip(&w2.ases) {
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.tier, b.tier);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = World::generate(&WorldConfig::tiny(), 1);
        let w2 = World::generate(&WorldConfig::tiny(), 2);
        let same = w1
            .ases
            .iter()
            .zip(&w2.ases)
            .all(|(a, b)| a.pos == b.pos && a.tier == b.tier);
        assert!(!same);
    }

    #[test]
    fn entities_have_dense_ids() {
        let w = world();
        for (i, a) in w.ases.iter().enumerate() {
            assert_eq!(a.id.index(), i);
        }
        for (i, r) in w.relays.iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
        assert_eq!(w.countries.len(), 6);
        assert_eq!(w.relays.len(), 6);
    }

    #[test]
    fn as_tiers_within_range() {
        let w = World::generate(&WorldConfig::small(), 9);
        for a in &w.ases {
            assert!((1..=4).contains(&a.tier));
            // AS must be near its country.
            let c = &w.countries[a.country.index()];
            assert!(a.pos.distance_km(&c.pos) < 900.0);
        }
    }

    #[test]
    fn international_classification() {
        let w = world();
        let first_country = w.ases[0].country;
        let other = w
            .ases
            .iter()
            .find(|a| a.country != first_country)
            .expect("tiny world has multiple countries");
        assert!(w.is_international(w.ases[0].id, other.id));
        assert!(!w.is_international(w.ases[0].id, w.ases[0].id));
    }

    #[test]
    fn candidate_options_shape() {
        let w = world();
        let src = w.ases[0].id;
        let dst = w.ases.last().unwrap().id;
        let opts = w.candidate_options(src, dst);
        assert_eq!(opts[0], RelayOption::Direct);
        let bounces = opts.iter().filter(|o| o.is_bounce()).count();
        let transits = opts.iter().filter(|o| o.is_transit()).count();
        assert_eq!(bounces, w.config.bounce_candidates.min(w.relays.len()));
        assert!(transits >= 1, "expected at least one transit candidate");
        assert!(opts.len() <= 1 + w.config.bounce_candidates + w.config.transit_candidates);
        // No duplicates.
        let mut dedup = opts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), opts.len());
    }

    #[test]
    fn candidate_options_are_canonical() {
        let w = world();
        for o in w.candidate_options(w.ases[0].id, w.ases[1].id) {
            assert_eq!(o, o.canonical());
        }
    }

    #[test]
    fn wrap_lon_behaviour() {
        assert_eq!(wrap_lon(190.0), -170.0);
        assert_eq!(wrap_lon(-185.0), 175.0);
        assert_eq!(wrap_lon(45.0), 45.0);
    }

    #[test]
    #[should_panic(expected = "n_countries out of range")]
    fn rejects_oversized_config() {
        let mut cfg = WorldConfig::tiny();
        cfg.n_countries = 1000;
        World::generate(&cfg, 1);
    }
}
