//! Synthetic Internet substrate for the VIA reproduction.
//!
//! The paper evaluates on 430 million real Skype calls; that trace is
//! proprietary, so this crate builds a *generative world* that reproduces the
//! statistical structure the paper measures:
//!
//! * **Geography** ([`geo`], [`catalog`]) — countries and datacenter sites at
//!   real coordinates, so propagation delays, time zones and the
//!   international/domestic mix are plausible.
//! * **Topology** ([`topology`]) — eyeball ASes per country with quality
//!   tiers and market-share weights, plus a relay fleet in one provider AS.
//! * **Performance** ([`perf`], [`segments`]) — every end-to-end path
//!   decomposes into access, public-WAN, and backbone segments. Segments
//!   carry static latents (RTT inflation over the fiber bound, base loss and
//!   jitter), day-scale congestion episodes with skewed
//!   persistence/prevalence (§2.4 of the paper), a diurnal load cycle, and
//!   heavy-tailed per-call noise.
//!
//! The model exposes both the latent mean (for the oracle of §3.2) and
//! realized samples (all any practical strategy observes), and is a
//! deterministic pure function of `(config, seed)`.
//!
//! ```
//! use via_netsim::{World, WorldConfig};
//! use via_model::{RelayOption, SimTime};
//!
//! let world = World::generate(&WorldConfig::tiny(), 7);
//! let src = world.ases[0].id;
//! let dst = world.ases.last().unwrap().id;
//! let options = world.candidate_options(src, dst);
//! assert_eq!(options[0], RelayOption::Direct);
//! let mean = world.perf().option_mean(src, dst, options[1], SimTime::from_days(1));
//! assert!(mean.rtt_ms > 0.0);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod geo;
pub mod perf;
pub mod segments;
pub mod topology;

pub use config::{PerfKnobs, WorldConfig};
pub use geo::GeoPoint;
pub use perf::{PathDayParts, PerfModel, SampleScratch};
pub use segments::{SegMetrics, Segment, SegmentPath, Stability};
pub use topology::{AsInfo, CandidateScratch, Country, Relay, World};
