//! Seeded fault injection for the §5.5 testbed.
//!
//! A production relay-selection service must absorb relays dying mid-call,
//! clients that never register, and a lossy control plane. This module
//! describes those failures as data — a [`FaultPlan`] — so the harness can
//! inject them deterministically: every random decision draws from an RNG
//! derived from the plan seed and a stable per-connection label, so two runs
//! with the same plan inject byte-identical fault schedules.
//!
//! Faults are scoped to the *steady-state call plane* (`Call` and `Report`
//! frames). The registration handshake (`Register`/`Welcome`) and teardown
//! (`Finished`/`Done`) are exempt by design: the request–response retry
//! protocol that recovers a lost frame only exists once a client is enrolled,
//! and losing a `Register` would simply look like the already-covered
//! "client never registers" partition fault.

use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;
use via_model::seed;

use crate::protocol::RelayIndex;

/// Kill one relay at a deterministic point in the call schedule: immediately
/// before the caller of pair `pair_idx` places its round-`round` call through
/// `relay`. Anchoring the kill to a schedule position (rather than a timer)
/// keeps same-seed runs identical regardless of wall-clock noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayKill {
    /// Relay to kill.
    pub relay: RelayIndex,
    /// Pair index (plan order) whose call triggers the kill.
    pub pair_idx: usize,
    /// Round whose call triggers the kill.
    pub round: u32,
}

/// A complete, seeded description of the failures to inject into one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault RNG stream (frame fates, backoff jitter).
    pub seed: u64,
    /// Percentage of call-plane control frames silently dropped.
    pub frame_drop_pct: f64,
    /// Percentage of call-plane control frames delivered twice.
    pub frame_dup_pct: f64,
    /// Fixed delay applied before each delivered call-plane frame, ms.
    pub frame_delay_ms: u64,
    /// Kill a relay mid-session at a schedule point.
    pub kill_relay: Option<RelayKill>,
    /// Blackhole the probe leg of `(pair_idx, relay)`: the relay session is
    /// installed with 100% loss in both directions, so the relay path is
    /// up but carries nothing.
    pub blackhole: Option<(usize, RelayIndex)>,
    /// Partition the client with this index: it is never started, so it
    /// never registers and every pair naming it fails with a per-pair cause.
    pub partition_client: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default for ordinary runs).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            frame_drop_pct: 0.0,
            frame_dup_pct: 0.0,
            frame_delay_ms: 0,
            kill_relay: None,
            blackhole: None,
            partition_client: None,
        }
    }

    /// A ready-made chaos plan sized to a testbed of `n_pairs` pairs and
    /// `n_relays` relays: 10% control-frame drop, 5% duplication, the last
    /// relay killed at the round-1 call of pair 0, and the probe leg of
    /// (last pair, relay 0) blackholed. No client is partitioned, so every
    /// pair still produces (possibly degraded) reports.
    pub fn chaos(seed: u64, n_pairs: usize, n_relays: usize) -> FaultPlan {
        FaultPlan {
            seed,
            frame_drop_pct: 10.0,
            frame_dup_pct: 5.0,
            frame_delay_ms: 0,
            kill_relay: (n_relays > 1).then(|| RelayKill {
                relay: RelayIndex::try_from(n_relays - 1).unwrap_or(RelayIndex::MAX),
                pair_idx: 0,
                round: 1,
            }),
            blackhole: (n_pairs > 0 && n_relays > 0).then(|| (n_pairs - 1, 0)),
            partition_client: None,
        }
    }

    /// True when the plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.frame_drop_pct <= 0.0
            && self.frame_dup_pct <= 0.0
            && self.frame_delay_ms == 0
            && self.kill_relay.is_none()
            && self.blackhole.is_none()
            && self.partition_client.is_none()
    }

    /// True when any call-plane frame fault (drop / duplicate / delay) is
    /// enabled.
    pub fn has_frame_faults(&self) -> bool {
        self.frame_drop_pct > 0.0 || self.frame_dup_pct > 0.0 || self.frame_delay_ms > 0
    }

    /// The frame-fault stream for one connection, identified by a stable
    /// `role` label and `index` (e.g. `("client-report", 2)`). Returns `None`
    /// when the plan has no frame faults, so the fault-free path costs
    /// nothing.
    pub fn frame_faults(&self, role: &str, index: u64) -> Option<FrameFaults> {
        self.has_frame_faults()
            .then(|| FrameFaults::new(self, role, index))
    }
}

/// The fate the fault injector assigns to one outgoing call-plane frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// The frame is silently discarded (the peer's deadline recovers it).
    Drop,
    /// The frame is delivered, optionally twice back-to-back.
    Deliver {
        /// Deliver a second, identical copy immediately after the first.
        duplicate: bool,
    },
}

/// Per-connection seeded stream of frame fates.
#[derive(Debug)]
pub struct FrameFaults {
    rng: StdRng,
    drop_pct: f64,
    dup_pct: f64,
    delay: Duration,
}

impl FrameFaults {
    fn new(plan: &FaultPlan, role: &str, index: u64) -> FrameFaults {
        FrameFaults {
            rng: StdRng::seed_from_u64(seed::derive_indexed(plan.seed, role, index)),
            drop_pct: plan.frame_drop_pct,
            dup_pct: plan.frame_dup_pct,
            delay: Duration::from_millis(plan.frame_delay_ms),
        }
    }

    /// Draws the fate of the next outgoing frame.
    pub fn next_fate(&mut self) -> FrameFate {
        if self.rng.random::<f64>() * 100.0 < self.drop_pct {
            return FrameFate::Drop;
        }
        let duplicate = self.dup_pct > 0.0 && self.rng.random::<f64>() * 100.0 < self.dup_pct;
        FrameFate::Deliver { duplicate }
    }

    /// Fixed pre-delivery delay for frames this stream delivers.
    pub fn delay(&self) -> Duration {
        self.delay
    }
}

/// Bounded-retry policy with seeded exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1 is always made.
    pub attempts: u32,
    /// Base backoff before the second attempt, ms.
    pub base_ms: u64,
    /// Backoff ceiling, ms.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_ms: 100,
            max_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep after failed attempt number `attempt` (0-based):
    /// `base · 2^attempt`, capped at `max_ms`, jittered into `[0.5, 1.0]×`
    /// by the seeded RNG — deterministic per connection, decorrelated across
    /// connections.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_ms);
        let jitter = 0.5 + 0.5 * rng.random::<f64>();
        Duration::from_millis(((exp as f64) * jitter).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(!plan.has_frame_faults());
        assert!(plan.frame_faults("x", 0).is_none());
    }

    #[test]
    fn frame_fates_are_deterministic_per_label() {
        let plan = FaultPlan {
            seed: 9,
            frame_drop_pct: 30.0,
            frame_dup_pct: 20.0,
            ..FaultPlan::none()
        };
        let draw = |role: &str, index: u64| -> Vec<FrameFate> {
            let mut f = plan.frame_faults(role, index).expect("faults enabled");
            (0..64).map(|_| f.next_fate()).collect()
        };
        assert_eq!(draw("ctrl", 0), draw("ctrl", 0));
        assert_ne!(draw("ctrl", 0), draw("ctrl", 1), "streams must differ");
        assert_ne!(draw("ctrl", 0), draw("client", 0));
    }

    #[test]
    fn fate_rates_match_the_plan() {
        let plan = FaultPlan {
            seed: 4,
            frame_drop_pct: 25.0,
            frame_dup_pct: 10.0,
            ..FaultPlan::none()
        };
        let mut f = plan.frame_faults("rate", 0).expect("faults enabled");
        let n = 20_000;
        let mut drops = 0;
        let mut dups = 0;
        for _ in 0..n {
            match f.next_fate() {
                FrameFate::Drop => drops += 1,
                FrameFate::Deliver { duplicate: true } => dups += 1,
                FrameFate::Deliver { duplicate: false } => {}
            }
        }
        let drop_rate = f64::from(drops) / f64::from(n);
        assert!((drop_rate - 0.25).abs() < 0.02, "drop rate {drop_rate}");
        // Duplication is drawn only for delivered frames: 0.75 × 0.10.
        let dup_rate = f64::from(dups) / f64::from(n);
        assert!((dup_rate - 0.075).abs() < 0.02, "dup rate {dup_rate}");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            attempts: 5,
            base_ms: 100,
            max_ms: 500,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for attempt in 0..6 {
            let b = policy.backoff(attempt, &mut rng);
            let exp = (100u64 << attempt).min(500);
            assert!(
                b >= Duration::from_millis(exp / 2),
                "attempt {attempt}: {b:?}"
            );
            assert!(b <= Duration::from_millis(exp), "attempt {attempt}: {b:?}");
        }
        // Huge attempt numbers must not overflow the shift.
        let _ = policy.backoff(u32::MAX, &mut rng);
    }

    #[test]
    fn chaos_plan_targets_are_in_range() {
        let plan = FaultPlan::chaos(7, 3, 4);
        assert!(plan.has_frame_faults());
        let kill = plan.kill_relay.expect("kill configured");
        assert_eq!(kill.relay, 3);
        assert_eq!(plan.blackhole, Some((2, 0)));
        // Degenerate sizes fall back to fewer faults rather than panicking.
        let tiny = FaultPlan::chaos(7, 0, 1);
        assert!(tiny.kill_relay.is_none());
        assert!(tiny.blackhole.is_none());
    }
}
