//! Network impairment emulation for the testbed data plane.
//!
//! The paper's testbed spanned five countries, so probe streams experienced
//! real WAN delay, jitter and loss. Our testbed runs on loopback; the relay
//! applies a netem-like impairment to every forwarded packet instead:
//! configurable base delay, Gaussian jitter, and random loss, with delivery
//! scheduled by a [`DelayLine`] worker thread (a timing wheel would be
//! overkill at probe rates; a binary heap + condvar is exact and simple).

use rand::prelude::*;
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Impairment parameters of one emulated path leg (one direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairParams {
    /// Base one-way delay, ms.
    pub delay_ms: f64,
    /// Jitter magnitude (std-dev of the delay noise), ms.
    pub jitter_ms: f64,
    /// Packet loss probability, percent.
    pub loss_pct: f64,
    /// Probability that one byte of the packet is corrupted in flight,
    /// percent. Receivers must parse defensively; a corrupted probe is
    /// dropped at the parser and shows up as loss.
    pub corrupt_pct: f64,
}

impl ImpairParams {
    /// A clean leg: no delay, jitter, loss, or corruption.
    pub const CLEAN: ImpairParams = ImpairParams {
        delay_ms: 0.0,
        jitter_ms: 0.0,
        loss_pct: 0.0,
        corrupt_pct: 0.0,
    };

    /// A dead leg: every packet is dropped. Used by the fault injector to
    /// blackhole a probe path while the relay itself stays up.
    pub const BLACKHOLE: ImpairParams = ImpairParams {
        delay_ms: 0.0,
        jitter_ms: 0.0,
        loss_pct: 100.0,
        corrupt_pct: 0.0,
    };

    /// Decides whether to corrupt this packet, and if so which byte to
    /// flip and with what XOR mask (never zero, so the byte always changes).
    pub fn sample_corruption(&self, len: usize, rng: &mut StdRng) -> Option<(usize, u8)> {
        if len == 0 || rng.random::<f64>() * 100.0 >= self.corrupt_pct {
            return None;
        }
        let idx = rng.random_range(0..len);
        let mask = rng.random_range(1..=u8::MAX);
        Some((idx, mask))
    }

    /// Samples this leg's fate for one packet: `None` if dropped, otherwise
    /// the delay to apply.
    pub fn sample(&self, rng: &mut StdRng) -> Option<Duration> {
        if rng.random::<f64>() * 100.0 < self.loss_pct {
            return None;
        }
        // Truncated Gaussian jitter (Box–Muller; no extra deps needed here).
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let delay = (self.delay_ms + self.jitter_ms * gauss).max(0.0);
        Some(Duration::from_micros((delay * 1_000.0) as u64))
    }

    /// Series composition of two legs: delays add, jitter adds in
    /// quadrature, loss combines through complements.
    pub fn chain(&self, other: &ImpairParams) -> ImpairParams {
        let p1 = self.loss_pct / 100.0;
        let p2 = other.loss_pct / 100.0;
        let c1 = self.corrupt_pct / 100.0;
        let c2 = other.corrupt_pct / 100.0;
        ImpairParams {
            delay_ms: self.delay_ms + other.delay_ms,
            jitter_ms: (self.jitter_ms.powi(2) + other.jitter_ms.powi(2)).sqrt(),
            loss_pct: 100.0 * (1.0 - (1.0 - p1) * (1.0 - p2)),
            corrupt_pct: 100.0 * (1.0 - (1.0 - c1) * (1.0 - c2)),
        }
    }
}

/// A scheduled outgoing packet.
struct Pending {
    release: Instant,
    payload: Vec<u8>,
    dest: SocketAddr,
    /// Tie-break so the heap never compares payloads.
    seq: u64,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.release == other.release && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.release
            .cmp(&other.release)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Delayed UDP sender: packets handed to [`DelayLine::send_after`] are
/// transmitted on the given socket once their delay elapses.
pub struct DelayLine {
    inner: Arc<DelayLineInner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

struct DelayLineInner {
    queue: Mutex<BinaryHeap<Reverse<Pending>>>,
    cv: Condvar,
    stop: AtomicBool,
    counter: std::sync::atomic::AtomicU64,
}

impl DelayLine {
    /// Spawns the worker thread over a cloned handle of `socket`.
    pub fn new(socket: UdpSocket) -> std::io::Result<DelayLine> {
        let inner = Arc::new(DelayLineInner {
            queue: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            counter: std::sync::atomic::AtomicU64::new(0),
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("via-delayline".into())
            .spawn(move || Self::worker_loop(&worker_inner, &socket))?;
        Ok(DelayLine {
            inner,
            worker: Some(worker),
        })
    }

    fn worker_loop(inner: &DelayLineInner, socket: &UdpSocket) {
        // A panicking queue user would poison this std mutex; the heap of
        // pending packets is still structurally valid (pushes are a single
        // `BinaryHeap::push`), so recover the guard rather than crash the
        // data plane mid-measurement.
        let mut guard = inner
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if inner.stop.load(Ordering::Relaxed) {
                return;
            }
            let now = Instant::now();
            // Send everything due.
            while let Some(Reverse(head)) = guard.peek() {
                if head.release <= now {
                    let Some(Reverse(p)) = guard.pop() else { break };
                    // Best-effort: a vanished receiver must not kill the line.
                    let _ = socket.send_to(&p.payload, p.dest);
                } else {
                    break;
                }
            }
            // Sleep until the next release or a new packet arrives.
            let wait = match guard.peek() {
                Some(Reverse(head)) => head.release.saturating_duration_since(Instant::now()),
                None => Duration::from_millis(50),
            };
            guard = inner
                .cv
                .wait_timeout(guard, wait)
                .map(|(g, _)| g)
                .unwrap_or_else(|p| p.into_inner().0);
        }
    }

    /// Schedules `payload` for transmission to `dest` after `delay`.
    pub fn send_after(&self, delay: Duration, payload: Vec<u8>, dest: SocketAddr) {
        let p = Pending {
            release: Instant::now() + delay,
            payload,
            dest,
            seq: self
                .inner
                .counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        };
        self.inner
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Reverse(p));
        self.inner.cv.notify_one();
    }
}

impl Drop for DelayLine {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.cv.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_leg_never_drops_or_delays() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = ImpairParams::CLEAN.sample(&mut rng).unwrap();
            assert_eq!(d, Duration::ZERO);
        }
    }

    #[test]
    fn loss_rate_is_respected() {
        let p = ImpairParams {
            delay_ms: 1.0,
            jitter_ms: 0.0,
            loss_pct: 25.0,
            corrupt_pct: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let dropped = (0..20_000).filter(|_| p.sample(&mut rng).is_none()).count();
        let rate = dropped as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn chain_composes_legs() {
        let a = ImpairParams {
            delay_ms: 10.0,
            jitter_ms: 3.0,
            loss_pct: 1.0,
            corrupt_pct: 1.0,
        };
        let b = ImpairParams {
            delay_ms: 20.0,
            jitter_ms: 4.0,
            loss_pct: 2.0,
            corrupt_pct: 2.0,
        };
        let c = a.chain(&b);
        assert_eq!(c.delay_ms, 30.0);
        assert!((c.jitter_ms - 5.0).abs() < 1e-9);
        assert!((c.loss_pct - 2.98).abs() < 1e-9);
        assert!((c.corrupt_pct - 2.98).abs() < 1e-9);
    }

    #[test]
    fn corruption_sampling_respects_rate_and_never_nops() {
        let p = ImpairParams {
            corrupt_pct: 30.0,
            ..ImpairParams::CLEAN
        };
        let mut rng = StdRng::seed_from_u64(8);
        let mut hits = 0;
        for _ in 0..10_000 {
            if let Some((idx, mask)) = p.sample_corruption(64, &mut rng) {
                hits += 1;
                assert!(idx < 64);
                assert_ne!(mask, 0, "mask must actually change the byte");
            }
        }
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "corruption rate {rate}");
        assert!(ImpairParams::CLEAN
            .sample_corruption(64, &mut rng)
            .is_none());
        assert!(p.sample_corruption(0, &mut rng).is_none());
    }

    #[test]
    fn delay_line_delivers_in_order_with_delay() {
        let recv = UdpSocket::bind("127.0.0.1:0").unwrap();
        recv.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let dest = recv.local_addr().unwrap();
        let send_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let line = DelayLine::new(send_sock).unwrap();

        let t0 = Instant::now();
        // Scheduled out of order: the 5 ms packet must arrive first.
        line.send_after(Duration::from_millis(40), vec![2], dest);
        line.send_after(Duration::from_millis(5), vec![1], dest);

        let mut buf = [0u8; 16];
        let (n, _) = recv.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], &[1]);
        let first_at = t0.elapsed();
        let (n, _) = recv.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], &[2]);
        let second_at = t0.elapsed();

        assert!(first_at >= Duration::from_millis(4), "{first_at:?}");
        assert!(second_at >= Duration::from_millis(38), "{second_at:?}");
    }

    #[test]
    fn delay_line_shuts_down_cleanly() {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let line = DelayLine::new(sock).unwrap();
        drop(line); // must not hang
    }
}
