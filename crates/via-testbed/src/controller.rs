//! The central controller: registration, session setup, call orchestration,
//! and measurement collection.
//!
//! Mirrors the Azure-hosted controller of §5.5: it "orchestrated each client
//! to make calls to the other clients … back-to-back calls using 9–20
//! different relaying options, 4–5 times each". Pairs with distinct callers
//! are driven in parallel (one orchestration thread per caller connection);
//! a caller's own calls run strictly back-to-back.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use via_model::metrics::PathMetrics;

use crate::error::TestbedError;
use crate::protocol::{read_frame, write_frame, ClientMsg, ControllerMsg, RelayIndex};

/// One caller–callee pair and its relaying options.
#[derive(Debug, Clone)]
pub struct PairSpec {
    /// Caller client name.
    pub caller: String,
    /// Callee client name.
    pub callee: String,
    /// Relay options: (index for reporting, relay UDP address).
    pub relays: Vec<(RelayIndex, SocketAddr)>,
}

/// Orchestration parameters.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Back-to-back sweeps per pair (paper: 4–5).
    pub rounds: u32,
    /// Probe packets per call.
    pub probes: u16,
    /// Gap between probes, ms.
    pub gap_ms: u64,
    /// The pair plan.
    pub pairs: Vec<PairSpec>,
}

/// One collected measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRecord {
    /// Caller name.
    pub caller: String,
    /// Callee name.
    pub callee: String,
    /// Relay used.
    pub relay: RelayIndex,
    /// Sweep index.
    pub round: u32,
    /// Measured metrics.
    pub metrics: PathMetrics,
}

/// Runs the controller: waits for `expected_clients` registrations on
/// `listener`, installs sessions via `registrar` — a callback invoked as
/// `(relay, session_id, caller_addr, callee_addr)` before any calls are
/// placed — orchestrates all calls, releases the clients, and returns the
/// collected reports.
pub fn run_controller(
    listener: TcpListener,
    cfg: ControllerConfig,
    expected_clients: usize,
    registrar: impl Fn(RelayIndex, u16, SocketAddr, SocketAddr),
) -> Result<Vec<ReportRecord>, TestbedError> {
    // Phase 1: registration.
    let mut clients: HashMap<String, (TcpStream, SocketAddr)> = HashMap::new();
    while clients.len() < expected_clients {
        let (mut stream, peer) = listener.accept()?;
        let msg: ClientMsg = read_frame(&mut stream)?;
        match msg {
            ClientMsg::Register { name, udp_port } => {
                let udp_addr = SocketAddr::new(peer.ip(), udp_port);
                write_frame(&mut stream, &ControllerMsg::Welcome)?;
                clients.insert(name, (stream, udp_addr));
            }
            other => {
                return Err(TestbedError::Protocol(format!(
                    "expected Register, got {other:?}"
                )))
            }
        }
    }

    // Phase 2: session installation. One session id per (pair, relay).
    let mut session_of: HashMap<(usize, RelayIndex), u16> = HashMap::new();
    let mut next_session: u16 = 1;
    for (pair_idx, pair) in cfg.pairs.iter().enumerate() {
        let caller_addr = clients
            .get(&pair.caller)
            .ok_or_else(|| TestbedError::Protocol(format!("unknown caller {}", pair.caller)))?
            .1;
        let callee_addr = clients
            .get(&pair.callee)
            .ok_or_else(|| TestbedError::Protocol(format!("unknown callee {}", pair.callee)))?
            .1;
        for &(relay, _) in &pair.relays {
            let id = next_session;
            next_session = next_session.wrapping_add(1);
            registrar(relay, id, caller_addr, callee_addr);
            session_of.insert((pair_idx, relay), id);
        }
    }

    // Phase 3: orchestration, one thread per caller.
    let reports: Arc<Mutex<Vec<ReportRecord>>> = Arc::new(Mutex::new(Vec::new()));
    let mut by_caller: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, p) in cfg.pairs.iter().enumerate() {
        by_caller.entry(p.caller.clone()).or_default().push(i);
    }

    let mut threads = Vec::new();
    for (caller, pair_indices) in by_caller {
        let (mut stream, _) = clients
            .remove(&caller)
            .ok_or_else(|| TestbedError::Protocol(format!("unknown caller {caller}")))?;
        let pairs: Vec<(usize, PairSpec)> = pair_indices
            .into_iter()
            .map(|i| (i, cfg.pairs[i].clone()))
            .collect();
        let sessions = session_of.clone();
        let reports = Arc::clone(&reports);
        let rounds = cfg.rounds;
        let probes = cfg.probes;
        let gap_ms = cfg.gap_ms;
        let callee_addrs: HashMap<String, SocketAddr> = pairs
            .iter()
            .map(|(_, p)| {
                (
                    p.callee.clone(),
                    clients
                        .get(&p.callee)
                        .map(|c| c.1)
                        // The callee may itself be a caller (already removed);
                        // its UDP address was captured during registration and
                        // embedded in the relay sessions, so it is only used
                        // for the informational field of the Call message.
                        .unwrap_or_else(|| "127.0.0.1:0".parse().expect("valid")),
                )
            })
            .collect();

        threads.push(
            std::thread::Builder::new()
                .name(format!("via-ctrl-{caller}"))
                .spawn(move || -> Result<TcpStream, TestbedError> {
                    for round in 0..rounds {
                        for (pair_idx, pair) in &pairs {
                            for &(relay, relay_addr) in &pair.relays {
                                let session = sessions[&(*pair_idx, relay)];
                                write_frame(
                                    &mut stream,
                                    &ControllerMsg::Call {
                                        callee_addr: callee_addrs[&pair.callee].to_string(),
                                        relay_addr: relay_addr.to_string(),
                                        relay,
                                        session,
                                        round,
                                        probes,
                                        gap_ms,
                                        callee: pair.callee.clone(),
                                    },
                                )?;
                                let reply: ClientMsg = read_frame(&mut stream)?;
                                match reply {
                                    ClientMsg::Report {
                                        caller,
                                        callee,
                                        relay,
                                        round,
                                        metrics,
                                    } => reports.lock().push(ReportRecord {
                                        caller,
                                        callee,
                                        relay,
                                        round,
                                        metrics,
                                    }),
                                    other => {
                                        return Err(TestbedError::Protocol(format!(
                                            "expected Report, got {other:?}"
                                        )))
                                    }
                                }
                            }
                        }
                    }
                    Ok(stream)
                })?,
        );
    }

    // Join orchestration threads, then release every client.
    let mut caller_streams = Vec::new();
    for t in threads {
        let stream = t
            .join()
            .map_err(|_| TestbedError::Component("orchestration thread panicked".into()))??;
        caller_streams.push(stream);
    }
    for mut stream in caller_streams {
        write_frame(&mut stream, &ControllerMsg::Finished)?;
        // Read the Done (best-effort; the client may have closed already).
        let _ = read_frame::<ClientMsg>(&mut stream);
    }
    for (_, (mut stream, _)) in clients {
        write_frame(&mut stream, &ControllerMsg::Finished)?;
        let _ = read_frame::<ClientMsg>(&mut stream);
    }

    Ok(Arc::try_unwrap(reports)
        .map_err(|_| TestbedError::Component("report sink still shared".into()))?
        .into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_spec_and_config_are_cloneable() {
        let p = PairSpec {
            caller: "a".into(),
            callee: "b".into(),
            relays: vec![(0, "127.0.0.1:5000".parse().unwrap())],
        };
        let cfg = ControllerConfig {
            rounds: 2,
            probes: 10,
            gap_ms: 5,
            pairs: vec![p.clone()],
        };
        assert_eq!(cfg.pairs[0].caller, p.caller);
    }

    #[test]
    fn rejects_unknown_caller_in_plan() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // One registering client named "real".
        let joiner = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(
                &mut s,
                &ClientMsg::Register {
                    name: "real".into(),
                    udp_port: 1,
                },
            )
            .unwrap();
            let _: ControllerMsg = read_frame(&mut s).unwrap();
            // Keep the connection open until the controller errors out.
            std::thread::sleep(std::time::Duration::from_millis(200));
        });
        let cfg = ControllerConfig {
            rounds: 1,
            probes: 1,
            gap_ms: 1,
            pairs: vec![PairSpec {
                caller: "ghost".into(),
                callee: "real".into(),
                relays: vec![(0, "127.0.0.1:5000".parse().unwrap())],
            }],
        };
        let err = run_controller(listener, cfg, 1, |_, _, _, _| {}).unwrap_err();
        assert!(matches!(err, TestbedError::Protocol(_)));
        joiner.join().unwrap();
    }
}
