//! The central controller: registration, session setup, call orchestration,
//! and measurement collection.
//!
//! Mirrors the Azure-hosted controller of §5.5: it "orchestrated each client
//! to make calls to the other clients … back-to-back calls using 9–20
//! different relaying options, 4–5 times each". Pairs with distinct callers
//! are driven in parallel (one orchestration thread per caller connection);
//! a caller's own calls run strictly back-to-back.
//!
//! Robustness: every phase is deadline-bounded. Registration waits a bounded
//! time and proceeds with whoever showed up (pairs naming an absent client
//! fail with a per-pair cause instead of aborting the run). Each call is a
//! request–response exchange with a per-attempt deadline and bounded,
//! seeded-jitter retries; a call that exhausts its retries becomes a
//! [`PairFailure`], not a dead run. A hard global deadline caps the whole
//! orchestration. The controller therefore returns *partial* results — every
//! report it did collect plus a typed cause for every call it could not.

use parking_lot::Mutex;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use via_model::metrics::PathMetrics;
use via_model::seed;
use via_obs::{MetricSink, LATENCY_MS};

use crate::client::COLLECT_CEILING_MS;
use crate::error::TestbedError;
use crate::fault::{FrameFate, FrameFaults, RetryPolicy};
use crate::protocol::{
    accept_deadline, ClientMsg, ControllerMsg, FrameConn, FrameError, RelayIndex,
};

/// Collision-free session-id allocator: a wrapping cursor over the non-zero
/// `u16` space that skips ids still held by live sessions.
///
/// A bare `wrapping_add(1)` counter reissues an id after 65535 allocations
/// even if the session that owns it is still live, silently cross-wiring two
/// relay sessions. This allocator keeps the in-use set explicit: `allocate`
/// skips live ids and fails typed when the space is exhausted; `release`
/// returns an id to the pool when its session tears down.
#[derive(Debug, Clone, Default)]
pub struct SessionIdAlloc {
    cursor: u16,
    in_use: HashSet<u16>,
}

impl SessionIdAlloc {
    /// An allocator with every non-zero id free.
    pub fn new() -> SessionIdAlloc {
        SessionIdAlloc::default()
    }

    /// Allocates the lowest free id at or after the cursor (never 0, which
    /// relays treat as unset), marking it in use.
    ///
    /// # Errors
    /// [`TestbedError::SessionExhausted`] when all 65535 non-zero ids are
    /// held by live sessions.
    pub fn allocate(&mut self) -> Result<u16, TestbedError> {
        for _ in 0..u16::MAX {
            self.cursor = self.cursor.wrapping_add(1);
            if self.cursor == 0 {
                self.cursor = 1;
            }
            if self.in_use.insert(self.cursor) {
                return Ok(self.cursor);
            }
        }
        Err(TestbedError::SessionExhausted {
            live: self.in_use.len(),
        })
    }

    /// Returns an id to the free pool once its session is torn down.
    pub fn release(&mut self, id: u16) {
        self.in_use.remove(&id);
    }

    /// Number of ids currently held by live sessions.
    pub fn live(&self) -> usize {
        self.in_use.len()
    }
}

/// One caller–callee pair and its relaying options.
#[derive(Debug, Clone)]
pub struct PairSpec {
    /// Caller client name.
    pub caller: String,
    /// Callee client name.
    pub callee: String,
    /// Relay options: (index for reporting, relay UDP address).
    pub relays: Vec<(RelayIndex, SocketAddr)>,
}

/// Deadlines, retry policy, and backoff seeding for the control plane.
#[derive(Debug, Clone)]
pub struct ControlTiming {
    /// Longest the controller waits for client registrations before
    /// proceeding with whoever arrived.
    pub registration: Duration,
    /// Slack added on top of the analytic per-call-attempt budget
    /// (probe send phase + collection ceiling, doubled for the direct
    /// fallback) to absorb scheduler noise.
    pub call_margin: Duration,
    /// Bounded retries with seeded jittered backoff for lost call frames.
    pub retry: RetryPolicy,
    /// Hard wall-clock ceiling on the whole orchestration.
    pub global: Duration,
    /// Seed for backoff jitter (per-caller streams are derived from it).
    pub seed: u64,
}

impl Default for ControlTiming {
    fn default() -> Self {
        ControlTiming {
            registration: Duration::from_secs(10),
            call_margin: Duration::from_secs(3),
            retry: RetryPolicy::default(),
            global: Duration::from_secs(180),
            seed: 0,
        }
    }
}

/// Orchestration parameters.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Back-to-back sweeps per pair (paper: 4–5).
    pub rounds: u32,
    /// Probe packets per call.
    pub probes: u16,
    /// Gap between probes, ms.
    pub gap_ms: u64,
    /// The pair plan.
    pub pairs: Vec<PairSpec>,
    /// Deadline / retry / backoff policy.
    pub timing: ControlTiming,
}

/// One collected measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRecord {
    /// Caller name.
    pub caller: String,
    /// Callee name.
    pub callee: String,
    /// Relay used.
    pub relay: RelayIndex,
    /// Sweep index.
    pub round: u32,
    /// Measured metrics.
    pub metrics: PathMetrics,
    /// True when the relay leg was dead and the metrics were measured over
    /// the direct fallback path instead (see `client`).
    pub degraded: bool,
}

/// Why a planned call (or a whole pair) produced no report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureCause {
    /// A participant never registered within the registration deadline.
    Unregistered {
        /// The missing client's name.
        name: String,
    },
    /// Every retry of the call exhausted its deadline without a report.
    CallTimeout,
    /// The caller's control stream failed; detail carries the I/O context.
    Stream {
        /// Human-readable failure detail (not stable across platforms).
        detail: String,
    },
    /// The run's global deadline fired before this call could be placed.
    GlobalDeadline,
}

impl FailureCause {
    /// A stable, platform-independent label for this cause — what
    /// deterministic summaries should use (the `Stream` detail string may
    /// embed OS error text).
    pub fn kind(&self) -> &'static str {
        match self {
            FailureCause::Unregistered { .. } => "unregistered",
            FailureCause::CallTimeout => "call-timeout",
            FailureCause::Stream { .. } => "stream",
            FailureCause::GlobalDeadline => "global-deadline",
        }
    }
}

/// One planned call (or pair) that produced no report, with its cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairFailure {
    /// Caller name.
    pub caller: String,
    /// Callee name.
    pub callee: String,
    /// Relay of the failed call; `None` when the whole pair failed.
    pub relay: Option<RelayIndex>,
    /// Round of the failed call; `None` when the whole pair failed.
    pub round: Option<u32>,
    /// Why it failed.
    pub cause: FailureCause,
}

/// Everything the controller returns: partial results plus typed failures.
#[derive(Debug)]
pub struct ControllerOutcome {
    /// Every report collected, sorted by (caller, callee, relay, round).
    pub reports: Vec<ReportRecord>,
    /// Every call that produced no report, sorted like the reports.
    pub failures: Vec<PairFailure>,
    /// Control-plane observability: per-caller sinks merged after the
    /// orchestration threads join (retries, per-attempt deadline hits,
    /// injected frame fates) plus outcome counters derived from the final
    /// report/failure lists. Unlike the replay engine's snapshots, these
    /// counters describe real socket behavior — retry and deadline counts
    /// may vary with wall-clock noise, which is why the determinism
    /// contract lives in [`TestbedResult::summary`], not here.
    ///
    /// [`TestbedResult::summary`]: crate::harness::TestbedResult::summary
    pub obs: MetricSink,
}

/// Per-caller factory for the fault stream applied to outgoing `Call`
/// frames (`None` means no faults for that caller).
pub type CallerFaultsFn<'a> = dyn Fn(&str) -> Option<FrameFaults> + Sync + 'a;

/// Hook invoked just before each call is placed, with
/// `(caller, pair_idx, relay, round)` — the kill-switch trigger point.
pub type BeforeCallFn<'a> = dyn Fn(&str, usize, RelayIndex, u32) + Sync + 'a;

/// Fault-injection hooks threaded into the controller by the harness.
#[derive(Default)]
pub struct ControlHooks<'a> {
    /// Per-caller fault-stream factory (`None` hook means no faults).
    pub caller_faults: Option<&'a CallerFaultsFn<'a>>,
    /// Pre-call kill-switch trigger point.
    pub before_call: Option<&'a BeforeCallFn<'a>>,
}

/// Worst-case wall-clock for one call attempt: the probe send phase plus the
/// echo-collection ceiling, doubled because a degraded call measures twice
/// (the dead relay attempt, then the direct fallback), plus margin.
fn call_attempt_budget(probes: u16, gap_ms: u64, margin: Duration) -> Duration {
    let send_ms = u64::from(probes.max(1)) * gap_ms;
    Duration::from_millis(2 * (send_ms + COLLECT_CEILING_MS)) + margin
}

/// Shared, read-only context for the per-caller orchestration threads.
struct CallerCtx<'a> {
    rounds: u32,
    probes: u16,
    gap_ms: u64,
    budget: Duration,
    retry: RetryPolicy,
    seed: u64,
    global_deadline: Instant,
    sessions: &'a HashMap<(usize, RelayIndex), u16>,
    udp_addr_of: &'a HashMap<String, SocketAddr>,
    before_call: Option<&'a BeforeCallFn<'a>>,
    reports: &'a Mutex<Vec<ReportRecord>>,
    failures: &'a Mutex<Vec<PairFailure>>,
}

/// Runs the controller: waits (bounded) for up to `expected_clients`
/// registrations on `listener`, installs sessions via `registrar` — a
/// callback invoked as `(pair_idx, relay, session_id, caller_addr,
/// callee_addr)` before any calls are placed — orchestrates all calls with
/// deadlines and retries, releases the clients, and returns the partial
/// results.
///
/// # Errors
/// Only *setup* failures (listener I/O, a protocol violation during
/// registration, or a plan naming a client that does not exist even though
/// every expected client registered) abort the run. Per-call and per-pair
/// failures are returned in [`ControllerOutcome::failures`] instead.
pub fn run_controller(
    listener: TcpListener,
    cfg: ControllerConfig,
    expected_clients: usize,
    registrar: impl Fn(usize, RelayIndex, u16, SocketAddr, SocketAddr),
    hooks: &ControlHooks<'_>,
) -> Result<ControllerOutcome, TestbedError> {
    let start = Instant::now();
    let global_deadline = start + cfg.timing.global;
    let reg_deadline = (start + cfg.timing.registration).min(global_deadline);
    let mut obs = MetricSink::with_timing();
    let t_registration = obs.start();

    // Phase 1: registration, bounded by the registration deadline.
    let mut conns: HashMap<String, FrameConn> = HashMap::new();
    let mut udp_addr_of: HashMap<String, SocketAddr> = HashMap::new();
    while conns.len() < expected_clients {
        let Some((stream, peer)) = accept_deadline(&listener, reg_deadline)? else {
            break; // deadline passed: proceed with whoever arrived
        };
        let mut conn = FrameConn::new(stream)?;
        let msg: ClientMsg = match conn.read_deadline(reg_deadline) {
            Ok(m) => m,
            Err(FrameError::Timeout) => break, // connected but silent
            Err(e) => return Err(e.into()),
        };
        match msg {
            ClientMsg::Register { name, udp_port } => {
                let udp_addr = SocketAddr::new(peer.ip(), udp_port);
                conn.write(&ControllerMsg::Welcome)?;
                udp_addr_of.insert(name.clone(), udp_addr);
                conns.insert(name, conn);
            }
            other => {
                return Err(TestbedError::Protocol(format!(
                    "expected Register, got {other:?}"
                )))
            }
        }
    }
    let all_registered = conns.len() >= expected_clients;
    obs.time("testbed.registration", t_registration);
    obs.inc("testbed_clients_registered_total", conns.len() as u64);

    // Partition the plan into runnable pairs and pre-failed ones. A plan
    // that names a client *nobody has ever heard of* while every expected
    // client registered is a configuration bug and fails loudly (the old
    // silent `127.0.0.1:0` fallback measured nothing); a merely absent
    // client degrades into per-pair `Unregistered` failures.
    let mut failures: Vec<PairFailure> = Vec::new();
    let mut runnable: Vec<(usize, PairSpec)> = Vec::new();
    for (idx, pair) in cfg.pairs.iter().enumerate() {
        let missing = [&pair.caller, &pair.callee]
            .into_iter()
            .find(|name| !udp_addr_of.contains_key(*name));
        match missing {
            Some(name) if all_registered => {
                return Err(TestbedError::Protocol(format!(
                    "pair plan names unknown client {name}"
                )));
            }
            Some(name) => failures.push(PairFailure {
                caller: pair.caller.clone(),
                callee: pair.callee.clone(),
                relay: None,
                round: None,
                cause: FailureCause::Unregistered { name: name.clone() },
            }),
            None => runnable.push((idx, pair.clone())),
        }
    }

    // Phase 2: session installation. One session id per (pair, relay),
    // allocated collision-free: a plain wrapping counter would, after 65535
    // allocations, reissue an id still owned by a live session and silently
    // cross-wire two relay sessions.
    let mut session_of: HashMap<(usize, RelayIndex), u16> = HashMap::new();
    let mut alloc = SessionIdAlloc::new();
    for (pair_idx, pair) in &runnable {
        let caller_addr = *udp_addr_of
            .get(&pair.caller)
            .ok_or_else(|| TestbedError::Protocol(format!("unknown caller {}", pair.caller)))?;
        let callee_addr = *udp_addr_of
            .get(&pair.callee)
            .ok_or_else(|| TestbedError::Protocol(format!("unknown callee {}", pair.callee)))?;
        for &(relay, _) in &pair.relays {
            let id = alloc.allocate()?;
            registrar(*pair_idx, relay, id, caller_addr, callee_addr);
            session_of.insert((*pair_idx, relay), id);
        }
    }

    // Phase 3: orchestration, one scoped thread per caller. Callers are
    // sorted so thread start order (and thus failure attribution on join)
    // is deterministic.
    let reports: Mutex<Vec<ReportRecord>> = Mutex::new(Vec::new());
    let failures_sink: Mutex<Vec<PairFailure>> = Mutex::new(Vec::new());
    let mut by_caller: Vec<(String, Vec<(usize, PairSpec)>)> = Vec::new();
    for (idx, pair) in runnable {
        match by_caller.iter_mut().find(|(c, _)| *c == pair.caller) {
            Some((_, list)) => list.push((idx, pair)),
            None => by_caller.push((pair.caller.clone(), vec![(idx, pair)])),
        }
    }
    by_caller.sort_by(|a, b| a.0.cmp(&b.0));

    let ctx = CallerCtx {
        rounds: cfg.rounds,
        probes: cfg.probes,
        gap_ms: cfg.gap_ms,
        budget: call_attempt_budget(cfg.probes, cfg.gap_ms, cfg.timing.call_margin),
        retry: cfg.timing.retry,
        seed: cfg.timing.seed,
        global_deadline,
        sessions: &session_of,
        udp_addr_of: &udp_addr_of,
        before_call: hooks.before_call,
        reports: &reports,
        failures: &failures_sink,
    };

    let t_calls = obs.start();
    let mut finished_conns: Vec<FrameConn> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (caller, pairs) in by_caller {
            let Some(conn) = conns.remove(&caller) else {
                continue; // unreachable: runnable pairs have registered callers
            };
            let faults = hooks.caller_faults.and_then(|f| f(&caller));
            let ctx = &ctx;
            handles.push((
                caller.clone(),
                s.spawn(move || {
                    let mut conn = conn;
                    let sink = drive_caller(ctx, &caller, &pairs, &mut conn, faults);
                    (conn, sink)
                }),
            ));
        }
        // Join in caller-name order (handles were spawned sorted), so the
        // per-caller sinks merge in a fixed order — and the merge algebra is
        // order-independent anyway, mirroring the replay engine's
        // per-worker sinks folding at the window barrier.
        for (caller, handle) in handles {
            match handle.join() {
                Ok((conn, sink)) => {
                    obs.merge(&sink);
                    finished_conns.push(conn);
                }
                Err(_) => failures_sink.lock().push(PairFailure {
                    caller,
                    callee: String::new(),
                    relay: None,
                    round: None,
                    cause: FailureCause::Stream {
                        detail: "orchestration thread panicked".into(),
                    },
                }),
            }
        }
    });
    obs.time("testbed.calls", t_calls);

    // Release every client (callers and idle callees), best-effort: a
    // client that already vanished must not wedge teardown.
    let teardown_deadline = Instant::now() + Duration::from_millis(500);
    for conn in finished_conns.iter_mut().chain(conns.values_mut()) {
        let _ = conn.write(&ControllerMsg::Finished);
        let _ = conn.read_deadline::<ClientMsg>(teardown_deadline);
    }

    let mut reports = reports.into_inner();
    reports.sort_by(|a, b| {
        (&a.caller, &a.callee, a.relay, a.round).cmp(&(&b.caller, &b.callee, b.relay, b.round))
    });
    failures.extend(failures_sink.into_inner());
    failures.sort_by(|a, b| {
        (&a.caller, &a.callee, a.relay, a.round, a.cause.kind()).cmp(&(
            &b.caller,
            &b.callee,
            b.relay,
            b.round,
            b.cause.kind(),
        ))
    });

    // Outcome counters derive from the final sorted lists, so every report
    // and every typed failure — including pre-run `Unregistered` pairs and
    // the post-join panic fallback — is counted exactly once.
    obs.inc("testbed_reports_total", reports.len() as u64);
    obs.inc(
        "testbed_reports_degraded_total",
        reports.iter().filter(|r| r.degraded).count() as u64,
    );
    for r in &reports {
        obs.observe("testbed_report_rtt_ms", LATENCY_MS, r.metrics.rtt_ms);
    }
    for f in &failures {
        let name = format!(
            "testbed_failures_{}_total",
            f.cause.kind().replace('-', "_")
        );
        obs.inc(&name, 1);
    }
    Ok(ControllerOutcome {
        reports,
        failures,
        obs,
    })
}

/// Drives all of one caller's calls back-to-back, recording reports and
/// failures; never returns an error — a broken stream fails the caller's
/// remaining pairs and returns. The returned sink carries this caller's
/// control-plane counters, merged by the controller after join.
fn drive_caller(
    ctx: &CallerCtx<'_>,
    caller: &str,
    pairs: &[(usize, PairSpec)],
    conn: &mut FrameConn,
    mut faults: Option<FrameFaults>,
) -> MetricSink {
    let mut obs = MetricSink::new();
    let mut rng = StdRng::seed_from_u64(seed::derive(ctx.seed, caller));
    for round in 0..ctx.rounds {
        for (pair_idx, pair) in pairs {
            for &(relay, relay_addr) in &pair.relays {
                if Instant::now() >= ctx.global_deadline {
                    obs.inc("testbed_global_deadline_skips_total", 1);
                    ctx.failures.lock().push(PairFailure {
                        caller: caller.to_string(),
                        callee: pair.callee.clone(),
                        relay: Some(relay),
                        round: Some(round),
                        cause: FailureCause::GlobalDeadline,
                    });
                    continue; // keep recording (cheap: no I/O past this point)
                }
                if let Some(hook) = ctx.before_call {
                    hook(caller, *pair_idx, relay, round);
                }
                let (Some(&session), Some(callee_addr)) = (
                    ctx.sessions.get(&(*pair_idx, relay)),
                    ctx.udp_addr_of.get(&pair.callee),
                ) else {
                    ctx.failures.lock().push(PairFailure {
                        caller: caller.to_string(),
                        callee: pair.callee.clone(),
                        relay: Some(relay),
                        round: Some(round),
                        cause: FailureCause::Stream {
                            detail: "missing session or callee address".into(),
                        },
                    });
                    continue;
                };
                let call = ControllerMsg::Call {
                    callee_addr: callee_addr.to_string(),
                    relay_addr: relay_addr.to_string(),
                    relay,
                    session,
                    round,
                    probes: ctx.probes,
                    gap_ms: ctx.gap_ms,
                    callee: pair.callee.clone(),
                };
                obs.inc("testbed_calls_placed_total", 1);
                match place_call(ctx, conn, &call, &mut faults, &mut rng, &mut obs) {
                    Ok(Some((metrics, degraded))) => ctx.reports.lock().push(ReportRecord {
                        caller: caller.to_string(),
                        callee: pair.callee.clone(),
                        relay,
                        round,
                        metrics,
                        degraded,
                    }),
                    Ok(None) => ctx.failures.lock().push(PairFailure {
                        caller: caller.to_string(),
                        callee: pair.callee.clone(),
                        relay: Some(relay),
                        round: Some(round),
                        cause: FailureCause::CallTimeout,
                    }),
                    Err(e) => {
                        // The stream is unusable: fail this call, mark every
                        // pair of this caller as cut off, and stop.
                        let mut sink = ctx.failures.lock();
                        sink.push(PairFailure {
                            caller: caller.to_string(),
                            callee: pair.callee.clone(),
                            relay: Some(relay),
                            round: Some(round),
                            cause: FailureCause::Stream {
                                detail: e.to_string(),
                            },
                        });
                        for (_, p) in pairs {
                            sink.push(PairFailure {
                                caller: caller.to_string(),
                                callee: p.callee.clone(),
                                relay: None,
                                round: None,
                                cause: FailureCause::Stream {
                                    detail: "caller control stream lost".into(),
                                },
                            });
                        }
                        return obs;
                    }
                }
            }
        }
    }
    obs
}

/// One request–response call exchange with bounded retries.
///
/// Returns `Ok(Some((metrics, degraded)))` on success, `Ok(None)` when every
/// attempt timed out (the caller records a `CallTimeout`), and `Err` only
/// when the stream itself is broken.
fn place_call(
    ctx: &CallerCtx<'_>,
    conn: &mut FrameConn,
    call: &ControllerMsg,
    faults: &mut Option<FrameFaults>,
    rng: &mut StdRng,
    obs: &mut MetricSink,
) -> Result<Option<(PathMetrics, bool)>, TestbedError> {
    let ControllerMsg::Call { relay, round, .. } = call else {
        return Err(TestbedError::Protocol("place_call needs a Call".into()));
    };
    let (want_relay, want_round) = (*relay, *round);
    for attempt in 0..ctx.retry.attempts.max(1) {
        if attempt > 0 {
            obs.inc("testbed_call_retries_total", 1);
            std::thread::sleep(ctx.retry.backoff(attempt - 1, rng));
        }
        match faults.as_mut().map_or(
            FrameFate::Deliver { duplicate: false },
            FrameFaults::next_fate,
        ) {
            // The Call frame is "lost": skip the write and let the read
            // deadline drive the retry, exactly as a real drop would.
            FrameFate::Drop => obs.inc("testbed_ctrl_frames_dropped_total", 1),
            FrameFate::Deliver { duplicate } => {
                if let Some(f) = faults {
                    let d = f.delay();
                    if !d.is_zero() {
                        obs.inc("testbed_ctrl_frames_delayed_total", 1);
                        std::thread::sleep(d);
                    }
                }
                conn.write(call)?;
                if duplicate {
                    obs.inc("testbed_ctrl_frames_duplicated_total", 1);
                    conn.write(call)?;
                }
            }
        }
        let deadline = (Instant::now() + ctx.budget).min(ctx.global_deadline);
        loop {
            match conn.read_deadline::<ClientMsg>(deadline) {
                Ok(ClientMsg::Report {
                    relay,
                    round,
                    metrics,
                    degraded,
                    ..
                }) => {
                    if relay == want_relay && round == want_round {
                        return Ok(Some((metrics, degraded)));
                    }
                    // A stale or duplicated report from an earlier retried
                    // call: skip it and keep waiting for ours.
                }
                Ok(other) => {
                    return Err(TestbedError::Protocol(format!(
                        "expected Report, got {other:?}"
                    )))
                }
                Err(FrameError::Timeout) => {
                    obs.inc("testbed_attempt_deadlines_total", 1);
                    break; // next attempt
                }
                Err(e) => return Err(e.into()),
            }
        }
        if Instant::now() >= ctx.global_deadline {
            break; // no budget left for another attempt
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame, write_frame};
    use std::net::TcpStream;

    #[test]
    fn pair_spec_and_config_are_cloneable() {
        let p = PairSpec {
            caller: "a".into(),
            callee: "b".into(),
            relays: vec![(0, "127.0.0.1:5000".parse().unwrap())],
        };
        let cfg = ControllerConfig {
            rounds: 2,
            probes: 10,
            gap_ms: 5,
            pairs: vec![p.clone()],
            timing: ControlTiming::default(),
        };
        assert_eq!(cfg.pairs[0].caller, p.caller);
    }

    /// Wraparound regression: after the cursor laps the u16 space, live ids
    /// must be skipped, not reissued — and exhaustion is a typed error.
    #[test]
    fn session_ids_skip_live_sessions_after_wraparound() {
        let mut alloc = SessionIdAlloc::new();
        let first = alloc.allocate().unwrap();
        assert_eq!(first, 1);
        // Claim the whole space.
        for _ in 1..u16::MAX {
            alloc.allocate().unwrap();
        }
        assert_eq!(alloc.live(), usize::from(u16::MAX));
        assert!(matches!(
            alloc.allocate(),
            Err(TestbedError::SessionExhausted { live }) if live == usize::from(u16::MAX)
        ));
        // Release two ids mid-space; the next allocations find exactly those
        // (in cursor order), never a still-live id and never 0.
        alloc.release(1000);
        alloc.release(500);
        assert_eq!(alloc.allocate().unwrap(), 500);
        assert_eq!(alloc.allocate().unwrap(), 1000);
        assert!(matches!(
            alloc.allocate(),
            Err(TestbedError::SessionExhausted { .. })
        ));
    }

    #[test]
    fn failure_causes_have_stable_kinds() {
        assert_eq!(
            FailureCause::Unregistered { name: "x".into() }.kind(),
            "unregistered"
        );
        assert_eq!(FailureCause::CallTimeout.kind(), "call-timeout");
        assert_eq!(
            FailureCause::Stream {
                detail: "io".into()
            }
            .kind(),
            "stream"
        );
        assert_eq!(FailureCause::GlobalDeadline.kind(), "global-deadline");
    }

    #[test]
    fn call_budget_covers_the_degraded_double_measurement() {
        let b = call_attempt_budget(10, 2, Duration::from_millis(500));
        assert!(b >= Duration::from_millis(2 * (20 + COLLECT_CEILING_MS) + 500));
    }

    #[test]
    fn rejects_unknown_caller_in_plan() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // One registering client named "real".
        let joiner = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(
                &mut s,
                &ClientMsg::Register {
                    name: "real".into(),
                    udp_port: 1,
                },
            )
            .unwrap();
            let _: ControllerMsg = read_frame(&mut s).unwrap();
            // Keep the connection open until the controller errors out.
            std::thread::sleep(std::time::Duration::from_millis(200));
        });
        let cfg = ControllerConfig {
            rounds: 1,
            probes: 1,
            gap_ms: 1,
            pairs: vec![PairSpec {
                caller: "ghost".into(),
                callee: "real".into(),
                relays: vec![(0, "127.0.0.1:5000".parse().unwrap())],
            }],
            timing: ControlTiming::default(),
        };
        let err = run_controller(
            listener,
            cfg,
            1,
            |_, _, _, _, _| {},
            &ControlHooks::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TestbedError::Protocol(_)));
        joiner.join().unwrap();
    }

    /// A client that never registers degrades into per-pair failures rather
    /// than aborting the run (partial-results contract).
    #[test]
    fn missing_client_yields_partial_failures_not_abort() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let joiner = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(
                &mut s,
                &ClientMsg::Register {
                    name: "real".into(),
                    udp_port: 1,
                },
            )
            .unwrap();
            let _: ControllerMsg = read_frame(&mut s).unwrap();
            // Wait for Finished so the controller's teardown write succeeds.
            let _: Result<ControllerMsg, _> = read_frame(&mut s);
        });
        let cfg = ControllerConfig {
            rounds: 1,
            probes: 1,
            gap_ms: 1,
            pairs: vec![PairSpec {
                caller: "real".into(),
                callee: "absent".into(),
                relays: vec![(0, "127.0.0.1:5000".parse().unwrap())],
            }],
            timing: ControlTiming {
                registration: Duration::from_millis(300),
                ..ControlTiming::default()
            },
        };
        // Expect two clients; only one arrives before the deadline.
        let outcome = run_controller(
            listener,
            cfg,
            2,
            |_, _, _, _, _| {},
            &ControlHooks::default(),
        )
        .unwrap();
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(
            outcome.failures[0].cause,
            FailureCause::Unregistered {
                name: "absent".into()
            }
        );
        joiner.join().unwrap();
    }
}
