//! Small-scale real deployment prototype of VIA (§5.5 of the paper).
//!
//! The paper deployed modified Skype clients on 14 machines across five
//! countries, a controller on Azure, and used Skype's production relays.
//! This crate rebuilds that system on loopback with real sockets:
//!
//! * [`protocol`] — length-prefixed JSON control plane over TCP.
//! * [`probe`] — RTP-carrying probe/echo packets on UDP.
//! * [`relay`] — session-based UDP forwarders (the dumb data plane).
//! * [`impair`] — netem-like per-leg impairment (delay / jitter / loss)
//!   applied at the relay, parameterized from a `via-netsim` world so the
//!   emulated geography matches the simulation experiments.
//! * [`client`] — instrumented clients: probe sender, echo responder,
//!   RTT/loss/jitter measurement, reporting.
//! * [`controller`] — registration, session setup, back-to-back call
//!   orchestration, measurement collection.
//! * [`harness`] — one-call assembly of the whole testbed.
//! * [`selection`] — the Figure 18 controlled experiment: VIA's heuristic
//!   evaluated against per-round ground truth (sub-optimality CDF).
//!
//! Everything binds to 127.0.0.1 with ephemeral ports; the only "network"
//! is the loopback device plus emulated impairment.

#![warn(missing_docs)]
// Real-socket testbed: lock poisoning, thread-join failures and channel
// teardown are unrecoverable here, and crashing the harness loudly beats
// carrying a poisoned testbed into a measurement. The workspace-wide
// unwrap/expect denies target the deterministic simulation crates; via-audit
// exempts this crate for the same reason (see crates/via-audit/src/lib.rs).
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod controller;
pub mod error;
pub mod harness;
pub mod impair;
pub mod probe;
pub mod protocol;
pub mod relay;
pub mod selection;

pub use controller::{ControllerConfig, PairSpec, ReportRecord};
pub use error::TestbedError;
pub use harness::{run_testbed, TestbedConfig, TestbedResult};
pub use impair::ImpairParams;
pub use relay::{RelayHandle, Session};
pub use selection::{evaluate_via_selection, Fig18Result};
