//! Small-scale real deployment prototype of VIA (§5.5 of the paper).
//!
//! The paper deployed modified Skype clients on 14 machines across five
//! countries, a controller on Azure, and used Skype's production relays.
//! This crate rebuilds that system on loopback with real sockets:
//!
//! * [`protocol`] — length-prefixed JSON control plane over TCP.
//! * [`probe`] — RTP-carrying probe/echo packets on UDP.
//! * [`relay`] — session-based UDP forwarders (the dumb data plane).
//! * [`impair`] — netem-like per-leg impairment (delay / jitter / loss)
//!   applied at the relay, parameterized from a `via-netsim` world so the
//!   emulated geography matches the simulation experiments.
//! * [`client`] — instrumented clients: probe sender, echo responder,
//!   RTT/loss/jitter measurement, reporting, direct-path fallback.
//! * [`controller`] — registration, session setup, back-to-back call
//!   orchestration with deadlines/retries, partial-result collection.
//! * [`fault`] — seeded fault injection: relay kills, control-frame
//!   drop/duplicate/delay, probe-leg blackholes, client partitions.
//! * [`harness`] — one-call assembly of the whole testbed.
//! * [`selection`] — the Figure 18 controlled experiment: VIA's heuristic
//!   evaluated against per-round ground truth (sub-optimality CDF).
//!
//! Everything binds to 127.0.0.1 with ephemeral ports; the only "network"
//! is the loopback device plus emulated impairment.
//!
//! Despite driving real sockets, this crate is held to the workspace's
//! panic-safety rules: no `unwrap`/`expect` outside `#[cfg(test)]` code
//! (enforced by the workspace clippy denies *and* via-audit's `panic` lint),
//! and no unbounded socket wait (via-audit's `socket-wait` lint). Every
//! failure surfaces as a typed [`TestbedError`] or a per-pair
//! [`PairFailure`] record.

#![warn(missing_docs)]

pub mod client;
pub mod controller;
pub mod error;
pub mod fault;
pub mod harness;
pub mod impair;
pub mod probe;
pub mod protocol;
pub mod relay;
pub mod selection;

pub use client::ClientConfig;
pub use controller::{
    ControlHooks, ControlTiming, ControllerConfig, ControllerOutcome, FailureCause, PairFailure,
    PairSpec, ReportRecord, SessionIdAlloc,
};
pub use error::TestbedError;
pub use fault::{FaultPlan, FrameFate, FrameFaults, RelayKill, RetryPolicy};
pub use harness::{run_testbed, TestbedConfig, TestbedResult};
pub use impair::ImpairParams;
pub use relay::{RelayHandle, Session};
pub use selection::{evaluate_via_selection, Fig18Result};
