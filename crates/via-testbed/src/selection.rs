//! Offline evaluation of VIA's selection heuristic on testbed measurements —
//! the controlled experiment of §5.5 and Figure 18.
//!
//! Back-to-back sweeps give ground truth: in every round each pair measured
//! *every* relay option. VIA's heuristic is then evaluated per round: it sees
//! only prior rounds' data (means + SEMs → top-k pruning) and its own past
//! picks (bandit state), chooses one relay, and is scored by the
//! *sub-optimality* of that relay's measured performance within the round:
//! `(perf_VIA − perf_best) / perf_best`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use via_core::bandit::UcbBandit;
use via_core::topk::{top_k, ScoredOption};
use via_core::Prediction;
use via_core::PredictionSource;
use via_model::ids::RelayId;
use via_model::metrics::Metric;
use via_model::options::RelayOption;
use via_model::stats::OnlineStats;

use crate::controller::ReportRecord;
use crate::protocol::RelayIndex;

/// Figure 18 statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig18Result {
    /// Per-(pair, round) sub-optimality of VIA's pick, `(via − best)/best`.
    pub suboptimality: Vec<f64>,
    /// Fraction of evaluated calls where VIA picked the round's best relay.
    pub best_pick_fraction: f64,
    /// Number of (pair, round) decisions evaluated.
    pub decisions: usize,
}

/// Evaluates VIA's selection on collected testbed reports, optimizing
/// `objective`. Rounds without full coverage or the first round of a pair
/// (no history yet) are skipped.
pub fn evaluate_via_selection(reports: &[ReportRecord], objective: Metric) -> Fig18Result {
    // (pair) → round → relay → value.
    let mut table: HashMap<(String, String), HashMap<u32, HashMap<RelayIndex, f64>>> =
        HashMap::new();
    for r in reports {
        if r.degraded {
            // A degraded report measured the *direct fallback* path, not the
            // relay it names; folding it in would credit a dead relay with
            // the direct path's performance.
            continue;
        }
        table
            .entry((r.caller.clone(), r.callee.clone()))
            .or_default()
            .entry(r.round)
            .or_default()
            .insert(r.relay, r.metrics[objective]);
    }

    let mut suboptimality = Vec::new();
    let mut best_picks = 0usize;
    let mut decisions = 0usize;

    // Deterministic iteration order.
    let mut pairs: Vec<_> = table.into_iter().collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));

    for (_pair, rounds_map) in pairs {
        let mut rounds: Vec<_> = rounds_map.into_iter().collect();
        rounds.sort_by_key(|(r, _)| *r);
        if rounds.len() < 2 {
            continue;
        }

        // Running per-relay history (mean, SEM) and VIA's own pick history.
        let mut stats: HashMap<RelayIndex, OnlineStats> = HashMap::new();
        let mut pick_history: Vec<(RelayOption, f64)> = Vec::new();

        for (round_idx, (_, values)) in rounds.iter().enumerate() {
            if round_idx > 0 && values.len() >= 2 {
                // Build predictions from history.
                let mut scored = Vec::new();
                let mut known: Vec<_> = stats.iter().collect();
                known.sort_by_key(|(r, _)| **r);
                for (&relay, s) in known {
                    let Some(mean) = s.mean() else { continue };
                    let sem = s.sem().unwrap_or(mean.abs() * 0.5).max(1e-9);
                    let pred = prediction_from(mean, sem, s.count());
                    scored.push(ScoredOption::from_prediction(
                        RelayOption::Bounce(RelayId(u32::from(relay))),
                        &pred,
                        objective,
                    ));
                }
                if !scored.is_empty() {
                    let selected = top_k(&scored);
                    let w = selected.iter().map(|s| s.upper).sum::<f64>()
                        / selected.len().max(1) as f64;
                    let mut bandit = UcbBandit::new(selected.iter().map(|s| s.option), w);
                    for &(opt, value) in &pick_history {
                        bandit.update(opt, value);
                    }
                    if let Some(RelayOption::Bounce(rid)) = bandit.choose() {
                        let pick = rid.0 as RelayIndex;
                        if let Some(&via_value) = values.get(&pick) {
                            let best = values.values().fold(f64::INFINITY, |acc, &v| acc.min(v));
                            if best > 0.0 && best.is_finite() {
                                suboptimality.push((via_value - best) / best);
                                decisions += 1;
                                if (via_value - best).abs() < 1e-12 {
                                    best_picks += 1;
                                }
                                pick_history.push((
                                    RelayOption::Bounce(RelayId(u32::from(pick))),
                                    via_value,
                                ));
                            }
                        }
                    }
                }
            }
            // Fold this round's full sweep into history (back-to-back calls
            // are all observed, as in the paper's controlled experiment).
            for (&relay, &v) in values.iter() {
                stats.entry(relay).or_default().push(v);
            }
        }
    }

    Fig18Result {
        best_pick_fraction: if decisions > 0 {
            best_picks as f64 / decisions as f64
        } else {
            0.0
        },
        suboptimality,
        decisions,
    }
}

/// Builds a core [`Prediction`] from raw mean/SEM on one metric axis. The
/// other axes carry the same relative uncertainty (only the objective axis
/// is consumed by the scorer).
fn prediction_from(mean: f64, sem: f64, n: u64) -> Prediction {
    use via_core::tomography::{linearize, linearize_sem};
    let mut lin_mean = [0.0; 3];
    let mut lin_sem = [0.0; 3];
    for (i, &metric) in Metric::ALL.iter().enumerate() {
        lin_mean[i] = linearize(metric, mean.max(0.0));
        lin_sem[i] = linearize_sem(metric, mean.max(0.0), sem).max(1e-9);
    }
    Prediction::from_linear(lin_mean, lin_sem, PredictionSource::Empirical(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_model::metrics::PathMetrics;

    /// Synthesizes reports where relay 1 is clearly best.
    fn synthetic_reports(rounds: u32, jitter: f64) -> Vec<ReportRecord> {
        let mut out = Vec::new();
        for round in 0..rounds {
            for relay in 0..4u16 {
                let base = match relay {
                    1 => 50.0,
                    0 => 80.0,
                    2 => 120.0,
                    _ => 200.0,
                };
                let wobble = jitter * ((round as f64 * 7.3 + f64::from(relay) * 3.1).sin());
                out.push(ReportRecord {
                    caller: "a".into(),
                    callee: "b".into(),
                    relay,
                    round,
                    metrics: PathMetrics::new(base + wobble, 0.1, 1.0),
                    degraded: false,
                });
            }
        }
        out
    }

    #[test]
    fn finds_the_best_relay_with_clean_data() {
        let reports = synthetic_reports(6, 0.0);
        let res = evaluate_via_selection(&reports, Metric::Rtt);
        assert_eq!(res.decisions, 5, "rounds 1..6 evaluated");
        assert!(
            res.best_pick_fraction > 0.7,
            "best picked only {:.0}%",
            100.0 * res.best_pick_fraction
        );
        assert!(res.suboptimality.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn suboptimality_is_small_under_noise() {
        let reports = synthetic_reports(6, 15.0);
        let res = evaluate_via_selection(&reports, Metric::Rtt);
        let mean_sub: f64 =
            res.suboptimality.iter().sum::<f64>() / res.suboptimality.len().max(1) as f64;
        assert!(
            mean_sub < 0.6,
            "mean sub-optimality {mean_sub} too large under mild noise"
        );
    }

    #[test]
    fn single_round_yields_no_decisions() {
        let reports = synthetic_reports(1, 0.0);
        let res = evaluate_via_selection(&reports, Metric::Rtt);
        assert_eq!(res.decisions, 0);
        assert!(res.suboptimality.is_empty());
    }

    #[test]
    fn empty_input_is_fine() {
        let res = evaluate_via_selection(&[], Metric::Rtt);
        assert_eq!(res.decisions, 0);
        assert_eq!(res.best_pick_fraction, 0.0);
    }

    #[test]
    fn degraded_reports_are_excluded() {
        let mut reports = synthetic_reports(6, 0.0);
        // Mark every report degraded: the evaluation must see nothing.
        for r in &mut reports {
            r.degraded = true;
        }
        let res = evaluate_via_selection(&reports, Metric::Rtt);
        assert_eq!(res.decisions, 0);
    }
}
