//! Testbed error type.

use crate::protocol::FrameError;
use std::io;

/// Errors surfaced by testbed components.
#[derive(Debug)]
pub enum TestbedError {
    /// Socket / stream failure.
    Io(io::Error),
    /// Control-plane framing failure.
    Frame(FrameError),
    /// Protocol violation (unexpected message), with context.
    Protocol(String),
    /// A component thread panicked or disconnected early.
    Component(String),
    /// A deadline elapsed; the string names what was being waited for.
    Timeout(String),
    /// The probe data plane failed outright (e.g. no probe send succeeded).
    Probe(String),
    /// The testbed configuration is unusable (replaces the old asserts so a
    /// bad CLI invocation errors instead of aborting).
    Config(String),
    /// Every session id is claimed by a live session; no new session can be
    /// installed until one is released.
    SessionExhausted {
        /// Number of sessions live at the time of the failed allocation.
        live: usize,
    },
}

impl std::fmt::Display for TestbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestbedError::Io(e) => write!(f, "testbed I/O error: {e}"),
            TestbedError::Frame(e) => write!(f, "testbed framing error: {e}"),
            TestbedError::Protocol(m) => write!(f, "testbed protocol violation: {m}"),
            TestbedError::Component(m) => write!(f, "testbed component failure: {m}"),
            TestbedError::Timeout(m) => write!(f, "testbed deadline elapsed: {m}"),
            TestbedError::Probe(m) => write!(f, "testbed probe failure: {m}"),
            TestbedError::Config(m) => write!(f, "testbed configuration error: {m}"),
            TestbedError::SessionExhausted { live } => write!(
                f,
                "session id space exhausted: {live} sessions live, none free"
            ),
        }
    }
}

impl std::error::Error for TestbedError {}

impl From<io::Error> for TestbedError {
    fn from(e: io::Error) -> Self {
        TestbedError::Io(e)
    }
}

impl From<FrameError> for TestbedError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Timeout => TestbedError::Timeout("control frame".into()),
            other => TestbedError::Frame(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = TestbedError::Protocol("expected Welcome".into());
        assert!(e.to_string().contains("expected Welcome"));
        let io_err: TestbedError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
    }
}
