//! Probe packet format: a tiny framing around real RTP.
//!
//! ```text
//! +--------+--------+-----------------+----------------------+
//! | magic  |  kind  |  session (u16)  |  RTP packet (RFC3550)|
//! +--------+--------+-----------------+----------------------+
//! ```
//!
//! `kind` distinguishes the outbound probe from the callee's echo so the
//! caller can compute round-trip times; the RTP header supplies sequence
//! numbers and media timestamps for loss and jitter accounting.

use via_media::call_sim::TS_PER_FRAME;
use via_media::packet::{RtpPacket, RtpParseError};

/// First byte of every probe packet ('V' for VIA).
pub const PROBE_MAGIC: u8 = 0x56;

/// Probe direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Caller → callee measurement packet.
    Probe,
    /// Callee → caller reflection of a probe.
    Echo,
}

/// A parsed probe packet.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbePacket {
    /// Direction marker.
    pub kind: ProbeKind,
    /// Relay session id.
    pub session: u16,
    /// Embedded RTP packet.
    pub rtp: RtpPacket,
}

/// Probe parse failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeError {
    /// Too short or wrong magic.
    NotAProbe,
    /// Unknown kind byte.
    BadKind(u8),
    /// RTP body failed to parse.
    Rtp(RtpParseError),
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::NotAProbe => write!(f, "not a probe packet"),
            ProbeError::BadKind(k) => write!(f, "unknown probe kind {k}"),
            ProbeError::Rtp(e) => write!(f, "bad RTP body: {e}"),
        }
    }
}

impl std::error::Error for ProbeError {}

impl ProbePacket {
    /// Builds an outbound probe with sequence `seq`.
    pub fn probe(session: u16, seq: u16, ssrc: u32) -> ProbePacket {
        ProbePacket {
            kind: ProbeKind::Probe,
            session,
            rtp: RtpPacket {
                payload_type: 0,
                marker: seq == 0,
                seq,
                timestamp: u32::from(seq).wrapping_mul(TS_PER_FRAME),
                ssrc,
                payload_len: 32,
            },
        }
    }

    /// Builds an echo of a probe (same RTP header, flipped kind).
    pub fn echo(session: u16, seq: u16, ssrc: u32) -> ProbePacket {
        let mut p = Self::probe(session, seq, ssrc);
        p.kind = ProbeKind::Echo;
        p
    }

    /// Turns a received probe into its echo.
    pub fn to_echo(&self) -> ProbePacket {
        ProbePacket {
            kind: ProbeKind::Echo,
            session: self.session,
            rtp: self.rtp,
        }
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 12 + self.rtp.payload_len);
        out.push(PROBE_MAGIC);
        out.push(match self.kind {
            ProbeKind::Probe => 0,
            ProbeKind::Echo => 1,
        });
        out.extend_from_slice(&self.session.to_be_bytes());
        out.extend_from_slice(&self.rtp.encode());
        out
    }

    /// Parses wire bytes.
    pub fn decode(data: &[u8]) -> Result<ProbePacket, ProbeError> {
        if data.len() < 4 || data[0] != PROBE_MAGIC {
            return Err(ProbeError::NotAProbe);
        }
        let kind = match data[1] {
            0 => ProbeKind::Probe,
            1 => ProbeKind::Echo,
            k => return Err(ProbeError::BadKind(k)),
        };
        let session = u16::from_be_bytes([data[2], data[3]]);
        let rtp = RtpPacket::decode(&data[4..]).map_err(ProbeError::Rtp)?;
        Ok(ProbePacket { kind, session, rtp })
    }
}

/// Cheap session extraction without a full parse, for the relay fast path.
pub fn peek_session(data: &[u8]) -> Option<u16> {
    if data.len() < 4 || data[0] != PROBE_MAGIC {
        return None;
    }
    Some(u16::from_be_bytes([data[2], data[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_probe_and_echo() {
        for p in [ProbePacket::probe(7, 42, 99), ProbePacket::echo(7, 42, 99)] {
            let back = ProbePacket::decode(&p.encode()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn echo_preserves_rtp_header() {
        let p = ProbePacket::probe(3, 17, 5);
        let e = p.to_echo();
        assert_eq!(e.kind, ProbeKind::Echo);
        assert_eq!(e.rtp, p.rtp);
    }

    #[test]
    fn peek_session_matches_decode() {
        let p = ProbePacket::probe(0xBEEF, 1, 2);
        let wire = p.encode();
        assert_eq!(peek_session(&wire), Some(0xBEEF));
        assert_eq!(peek_session(&[1, 2, 3]), None);
        assert_eq!(peek_session(b"XXXXXXXX"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(ProbePacket::decode(&[]), Err(ProbeError::NotAProbe));
        assert_eq!(
            ProbePacket::decode(&[PROBE_MAGIC, 9, 0, 0, 0]),
            Err(ProbeError::BadKind(9))
        );
        let mut wire = ProbePacket::probe(1, 2, 3).encode();
        wire.truncate(8);
        assert!(matches!(
            ProbePacket::decode(&wire),
            Err(ProbeError::Rtp(_))
        ));
    }

    #[test]
    fn probe_timestamps_follow_frame_clock() {
        let p = ProbePacket::probe(1, 10, 3);
        assert_eq!(p.rtp.timestamp, 1600);
    }
}
