//! The instrumented client: probe sender, echo responder, and measurement
//! reporting.
//!
//! Mirrors the paper's modified Skype clients (§5.5): each client registers
//! with the controller over TCP, answers probe streams addressed to it (the
//! callee side echoes every probe back through the same relay), and — when
//! instructed to place a call — sends a short RTP probe stream through the
//! designated relay, measures RTT / loss / jitter from the echoes, and
//! reports the triple to the controller.
//!
//! Robustness: every control read carries a deadline, the controller
//! connection is established with a bounded connect timeout, and a call
//! whose relay leg yields *no* echoes (dead or blackholed relay) falls back
//! to probing the callee's direct UDP address — the measurement is then
//! reported with `degraded: true`, mirroring how a production client would
//! salvage a call when its assigned relay disappears.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use via_media::JitterEstimator;
use via_model::metrics::PathMetrics;

use crate::error::TestbedError;
use crate::fault::{FrameFate, FrameFaults};
use crate::probe::{ProbeKind, ProbePacket};
use crate::protocol::{connect_deadline, ClientMsg, ControllerMsg, FrameConn, FrameError};

/// Echo-collection ceiling per call, ms: even intercontinental emulated
/// paths (~600 ms echo RTT) finish inside this window. Public so the
/// controller can budget its per-call deadline from the same number.
pub const COLLECT_CEILING_MS: u64 = 1_200;

/// Client-side robustness knobs.
#[derive(Debug)]
pub struct ClientConfig {
    /// Bounded timeout for the initial TCP connect to the controller.
    pub connect_timeout: Duration,
    /// Longest the client waits for the next controller frame before
    /// declaring the controller dead. Callees idle for entire runs, so the
    /// harness sets this to the run's global deadline.
    pub idle_timeout: Duration,
    /// Seeded faults applied to this client's outgoing `Report` frames.
    pub faults: Option<FrameFaults>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(120),
            faults: None,
        }
    }
}

/// An echo received by the media socket, forwarded to the measurement loop.
#[derive(Debug, Clone)]
struct EchoEvent {
    at: Instant,
    session: u16,
    seq: u16,
    ssrc: u32,
    rtp_timestamp: u32,
}

/// Which leg a probe stream traverses; encoded into the stream's SSRC so
/// relay-path stragglers can never be mistaken for direct-path echoes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathLeg {
    Relay,
    Direct,
}

/// One measured probe stream plus how many echoes actually arrived (the
/// degradation detector: zero echoes means the path is dead, not just bad).
struct CallSample {
    metrics: PathMetrics,
    echoes: usize,
}

/// Runs one testbed client with default robustness settings.
///
/// # Errors
/// Any control-plane or data-plane failure the client cannot absorb.
pub fn run_client(name: &str, controller: SocketAddr) -> Result<(), TestbedError> {
    run_client_with(name, controller, ClientConfig::default())
}

/// Runs one testbed client to completion (until the controller sends
/// `Finished` or a deadline fires). Blocks the calling thread.
///
/// # Errors
/// Any control-plane or data-plane failure the client cannot absorb,
/// including [`TestbedError::Timeout`] when the controller goes silent past
/// `cfg.idle_timeout`.
pub fn run_client_with(
    name: &str,
    controller: SocketAddr,
    mut cfg: ClientConfig,
) -> Result<(), TestbedError> {
    let udp = UdpSocket::bind("127.0.0.1:0")?;
    udp.set_read_timeout(Some(Duration::from_millis(50)))?;

    let (echo_tx, echo_rx) = bounded::<EchoEvent>(4_096);
    let stop = Arc::new(AtomicBool::new(false));
    let responder = spawn_responder(udp.try_clone()?, echo_tx, Arc::clone(&stop))?;

    // Run the control loop, then stop the responder on *every* exit path so
    // an error return can never leak the media thread.
    let result = control_loop(name, controller, &mut cfg, &udp, &echo_rx);
    stop.store(true, Ordering::Relaxed);
    let _ = responder.join();
    result
}

/// The client's control-plane loop: register, serve calls, disconnect.
fn control_loop(
    name: &str,
    controller: SocketAddr,
    cfg: &mut ClientConfig,
    udp: &UdpSocket,
    echo_rx: &Receiver<EchoEvent>,
) -> Result<(), TestbedError> {
    let stream = connect_deadline(controller, cfg.connect_timeout)?;
    let mut conn = FrameConn::new(stream)?;
    conn.write(&ClientMsg::Register {
        name: name.to_string(),
        udp_port: udp.local_addr()?.port(),
    })?;
    let welcome: ControllerMsg = conn.read_deadline(Instant::now() + cfg.idle_timeout)?;
    if welcome != ControllerMsg::Welcome {
        return Err(TestbedError::Protocol(format!(
            "expected Welcome, got {welcome:?}"
        )));
    }

    loop {
        let msg = match conn.read_deadline::<ControllerMsg>(Instant::now() + cfg.idle_timeout) {
            Ok(m) => m,
            Err(FrameError::Timeout) => {
                return Err(TestbedError::Timeout(format!(
                    "client {name}: no controller frame within {:?}",
                    cfg.idle_timeout
                )))
            }
            Err(e) => return Err(e.into()),
        };
        match msg {
            ControllerMsg::Welcome => {
                return Err(TestbedError::Protocol("unexpected second Welcome".into()))
            }
            ControllerMsg::Finished => break,
            ControllerMsg::Call {
                callee_addr,
                relay_addr,
                relay,
                session,
                round,
                probes,
                gap_ms,
                callee,
            } => {
                let relay_sock: SocketAddr = relay_addr.parse().map_err(|e| {
                    TestbedError::Protocol(format!("bad relay addr {relay_addr}: {e}"))
                })?;
                let sample = measure_call(
                    udp,
                    echo_rx,
                    relay_sock,
                    session,
                    round,
                    probes,
                    gap_ms,
                    PathLeg::Relay,
                )?;
                // Graceful degradation: a relay leg that produced *zero*
                // echoes is dead (killed or blackholed), not merely lossy.
                // Re-measure over the direct path and flag the report.
                let (metrics, degraded) = if sample.echoes == 0 {
                    let direct_sock: SocketAddr = callee_addr.parse().map_err(|e| {
                        TestbedError::Protocol(format!("bad callee addr {callee_addr}: {e}"))
                    })?;
                    let direct = measure_call(
                        udp,
                        echo_rx,
                        direct_sock,
                        session,
                        round,
                        probes,
                        gap_ms,
                        PathLeg::Direct,
                    )?;
                    (direct.metrics, true)
                } else {
                    (sample.metrics, false)
                };
                let report = ClientMsg::Report {
                    caller: name.to_string(),
                    callee,
                    relay,
                    round,
                    metrics,
                    degraded,
                };
                match cfg.faults.as_mut().map_or(
                    FrameFate::Deliver { duplicate: false },
                    FrameFaults::next_fate,
                ) {
                    // A dropped Report is recovered by the controller's
                    // retry: it re-sends the Call after its deadline.
                    FrameFate::Drop => {}
                    FrameFate::Deliver { duplicate } => {
                        if let Some(f) = &cfg.faults {
                            let d = f.delay();
                            if !d.is_zero() {
                                std::thread::sleep(d);
                            }
                        }
                        conn.write(&report)?;
                        if duplicate {
                            conn.write(&report)?;
                        }
                    }
                }
            }
        }
    }

    // Best-effort: the controller may already have torn the stream down.
    let _ = conn.write(&ClientMsg::Done {
        name: name.to_string(),
    });
    Ok(())
}

/// Spawns the media-socket thread: echoes probes, channels echoes.
fn spawn_responder(
    udp: UdpSocket,
    echo_tx: Sender<EchoEvent>,
    stop: Arc<AtomicBool>,
) -> Result<std::thread::JoinHandle<()>, TestbedError> {
    let handle = std::thread::Builder::new()
        .name("via-client-media".into())
        .spawn(move || {
            let mut buf = [0u8; 2048];
            loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let (len, src) = match udp.recv_from(&mut buf) {
                    Ok(x) => x,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => return,
                };
                let Ok(pkt) = ProbePacket::decode(&buf[..len]) else {
                    continue;
                };
                match pkt.kind {
                    ProbeKind::Probe => {
                        // Callee role: reflect through the relay it came from.
                        let _ = udp.send_to(&pkt.to_echo().encode(), src);
                    }
                    ProbeKind::Echo => {
                        let _ = echo_tx.try_send(EchoEvent {
                            at: Instant::now(),
                            session: pkt.session,
                            seq: pkt.rtp.seq,
                            ssrc: pkt.rtp.ssrc,
                            rtp_timestamp: pkt.rtp.timestamp,
                        });
                    }
                }
            }
        })
        .map_err(TestbedError::Io)?;
    Ok(handle)
}

/// The probe stream's SSRC: session, round, and leg are all encoded so an
/// echo straggling in from a *previous* round (or from the abandoned relay
/// attempt of the same call) can never be counted into the current stream.
fn probe_ssrc(session: u16, round: u32, leg: PathLeg) -> u32 {
    let leg_bit = match leg {
        PathLeg::Relay => 0,
        PathLeg::Direct => 1,
    };
    u32::from(session) << 16 | (round & 0x7F) << 9 | leg_bit << 8 | 0x5A
}

/// Sends one probe stream and reduces the echoes to a metric triple.
///
/// Send errors on individual probes are tolerated: unsent probes count as
/// lost, and arrival timestamps are measured from the earliest probe that
/// actually went out (falling back to the call start). Only a call where
/// *no* probe could be sent is an error.
#[allow(clippy::too_many_arguments)]
fn measure_call(
    udp: &UdpSocket,
    echo_rx: &Receiver<EchoEvent>,
    target: SocketAddr,
    session: u16,
    round: u32,
    probes: u16,
    gap_ms: u64,
    leg: PathLeg,
) -> Result<CallSample, TestbedError> {
    // Drain stragglers from previous calls.
    while echo_rx.try_recv().is_ok() {}

    // A zero-probe call would divide by zero below; treat it as one probe
    // (the controller never asks for zero, but the CLI can).
    let probes = probes.max(1);
    let ssrc = probe_ssrc(session, round, leg);
    let call_start = Instant::now();
    let mut send_times = vec![None::<Instant>; usize::from(probes)];
    let mut last_send_err: Option<std::io::Error> = None;

    for seq in 0..probes {
        let pkt = ProbePacket::probe(session, seq, ssrc);
        match udp.send_to(&pkt.encode(), target) {
            Ok(_) => send_times[usize::from(seq)] = Some(Instant::now()),
            Err(e) => last_send_err = Some(e),
        }
        std::thread::sleep(Duration::from_millis(gap_ms));
    }
    // Timestamp base: the earliest probe that actually left the socket.
    let t0 = send_times
        .iter()
        .copied()
        .flatten()
        .min()
        .unwrap_or(call_start);
    if send_times.iter().all(Option::is_none) {
        let detail =
            last_send_err.map_or_else(|| "unknown send failure".to_string(), |e| e.to_string());
        return Err(TestbedError::Probe(format!(
            "no probe of {probes} could be sent to {target}: {detail}"
        )));
    }

    // Collection window: a generous ceiling so even intercontinental
    // emulated paths (~600 ms echo RTT) are counted, with an idle early-exit
    // so clean fast paths don't pay for it: once at least one echo arrived,
    // 250 ms of silence ends the call.
    let deadline = Instant::now() + Duration::from_millis(COLLECT_CEILING_MS);
    let idle_exit = Duration::from_millis(250);
    let mut rtts: Vec<f64> = Vec::with_capacity(usize::from(probes));
    let mut estimator = JitterEstimator::new();
    let mut received = vec![false; usize::from(probes)];

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let mut wait = deadline.saturating_duration_since(now);
        if rtts.is_empty() {
            // Nothing yet: wait out the full window.
        } else {
            wait = wait.min(idle_exit);
        }
        let Ok(ev) = echo_rx.recv_timeout(wait) else {
            if !rtts.is_empty() {
                break; // idle after at least one echo: the stream is done
            }
            continue;
        };
        if ev.session != session || ev.ssrc != ssrc {
            continue; // an old call's echo
        }
        let idx = usize::from(ev.seq);
        if idx >= send_times.len() || received[idx] {
            continue;
        }
        received[idx] = true;
        if let Some(sent) = send_times[idx] {
            rtts.push(ev.at.duration_since(sent).as_secs_f64() * 1_000.0);
        }
        let arrival_ms = ev.at.duration_since(t0).as_secs_f64() * 1_000.0;
        estimator.on_packet(arrival_ms, ev.rtp_timestamp);
        if received.iter().all(|&r| r) {
            break;
        }
    }

    let got = received.iter().filter(|&&r| r).count();
    let loss_pct = 100.0 * (f64::from(probes) - got as f64) / f64::from(probes);
    let rtt_ms = if rtts.is_empty() {
        // Total loss: report the collection ceiling, like a timed-out call.
        1_000.0
    } else {
        rtts.iter().sum::<f64>() / rtts.len() as f64
    };
    Ok(CallSample {
        metrics: PathMetrics::new(rtt_ms, loss_pct, estimator.jitter_ms()),
        echoes: got,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impair::ImpairParams;
    use crate::relay::{RelayHandle, Session};

    /// End-to-end measurement through a real relay with known impairment.
    #[test]
    fn measures_known_impairment() {
        let relay = RelayHandle::spawn(11).unwrap();

        // Callee: a raw echo socket using the same responder logic.
        let callee = UdpSocket::bind("127.0.0.1:0").unwrap();
        callee
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let (tx, _rx) = bounded(16);
        let stop = Arc::new(AtomicBool::new(false));
        let responder =
            spawn_responder(callee.try_clone().unwrap(), tx, Arc::clone(&stop)).unwrap();

        // Caller media socket + echo channel.
        let caller = UdpSocket::bind("127.0.0.1:0").unwrap();
        caller
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let (ctx, crx) = bounded(1024);
        let cstop = Arc::new(AtomicBool::new(false));
        let cresp = spawn_responder(caller.try_clone().unwrap(), ctx, Arc::clone(&cstop)).unwrap();

        relay.register_session(
            1,
            Session::steady(
                caller.local_addr().unwrap(),
                callee.local_addr().unwrap(),
                ImpairParams {
                    delay_ms: 15.0,
                    jitter_ms: 0.5,
                    loss_pct: 0.0,
                    corrupt_pct: 0.0,
                },
                ImpairParams {
                    delay_ms: 15.0,
                    jitter_ms: 0.5,
                    loss_pct: 0.0,
                    corrupt_pct: 0.0,
                },
            ),
        );

        let sample =
            measure_call(&caller, &crx, relay.addr(), 1, 0, 30, 2, PathLeg::Relay).unwrap();
        let metrics = sample.metrics;
        // Expected RTT ≈ 30 ms of impairment (+ loopback overhead).
        assert!(
            metrics.rtt_ms > 25.0 && metrics.rtt_ms < 80.0,
            "measured RTT {}",
            metrics.rtt_ms
        );
        assert!(metrics.loss_pct < 10.0, "loss {}", metrics.loss_pct);
        assert!(sample.echoes > 25, "echoes {}", sample.echoes);

        stop.store(true, Ordering::Relaxed);
        cstop.store(true, Ordering::Relaxed);
        let _ = responder.join();
        let _ = cresp.join();
    }

    #[test]
    fn total_loss_reports_ceiling() {
        // No relay at all: every probe vanishes.
        let caller = UdpSocket::bind("127.0.0.1:0").unwrap();
        let (_tx, rx) = bounded(4);
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap(); // discard port
        let sample = measure_call(&caller, &rx, dead, 2, 0, 5, 1, PathLeg::Relay).unwrap();
        assert_eq!(sample.metrics.loss_pct, 100.0);
        assert!(sample.metrics.rtt_ms >= 500.0);
        assert_eq!(sample.echoes, 0, "a dead path must report zero echoes");
    }

    #[test]
    fn ssrc_separates_rounds_and_legs() {
        let relay_r0 = probe_ssrc(7, 0, PathLeg::Relay);
        let relay_r1 = probe_ssrc(7, 1, PathLeg::Relay);
        let direct_r0 = probe_ssrc(7, 0, PathLeg::Direct);
        assert_ne!(relay_r0, relay_r1);
        assert_ne!(relay_r0, direct_r0);
        // Different sessions never collide regardless of round/leg.
        assert_ne!(probe_ssrc(8, 0, PathLeg::Relay), relay_r0);
    }
}
