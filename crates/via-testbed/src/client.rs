//! The instrumented client: probe sender, echo responder, and measurement
//! reporting.
//!
//! Mirrors the paper's modified Skype clients (§5.5): each client registers
//! with the controller over TCP, answers probe streams addressed to it (the
//! callee side echoes every probe back through the same relay), and — when
//! instructed to place a call — sends a short RTP probe stream through the
//! designated relay, measures RTT / loss / jitter from the echoes, and
//! reports the triple to the controller.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use via_media::JitterEstimator;
use via_model::metrics::PathMetrics;

use crate::error::TestbedError;
use crate::probe::{ProbeKind, ProbePacket};
use crate::protocol::{read_frame, write_frame, ClientMsg, ControllerMsg};

/// An echo received by the media socket, forwarded to the measurement loop.
#[derive(Debug, Clone)]
struct EchoEvent {
    at: Instant,
    session: u16,
    seq: u16,
    ssrc: u32,
    rtp_timestamp: u32,
}

/// Runs one testbed client to completion (until the controller sends
/// `Finished`). Blocks the calling thread.
pub fn run_client(name: &str, controller: SocketAddr) -> Result<(), TestbedError> {
    let udp = UdpSocket::bind("127.0.0.1:0")?;
    udp.set_read_timeout(Some(Duration::from_millis(50)))?;
    let udp_port = udp.local_addr()?.port();

    let (echo_tx, echo_rx) = bounded::<EchoEvent>(4_096);
    let stop = Arc::new(AtomicBool::new(false));
    let responder = spawn_responder(udp.try_clone()?, echo_tx, Arc::clone(&stop))?;

    let mut tcp = TcpStream::connect(controller)?;
    write_frame(
        &mut tcp,
        &ClientMsg::Register {
            name: name.to_string(),
            udp_port,
        },
    )?;
    let welcome: ControllerMsg = read_frame(&mut tcp)?;
    if welcome != ControllerMsg::Welcome {
        return Err(TestbedError::Protocol(format!(
            "expected Welcome, got {welcome:?}"
        )));
    }

    loop {
        let msg: ControllerMsg = read_frame(&mut tcp)?;
        match msg {
            ControllerMsg::Welcome => {
                return Err(TestbedError::Protocol("unexpected second Welcome".into()))
            }
            ControllerMsg::Finished => break,
            ControllerMsg::Call {
                relay_addr,
                relay,
                session,
                round,
                probes,
                gap_ms,
                callee,
                ..
            } => {
                let relay_sock: SocketAddr = relay_addr.parse().map_err(|e| {
                    TestbedError::Protocol(format!("bad relay addr {relay_addr}: {e}"))
                })?;
                let metrics = measure_call(&udp, &echo_rx, relay_sock, session, probes, gap_ms)?;
                write_frame(
                    &mut tcp,
                    &ClientMsg::Report {
                        caller: name.to_string(),
                        callee,
                        relay,
                        round,
                        metrics,
                    },
                )?;
            }
        }
    }

    write_frame(
        &mut tcp,
        &ClientMsg::Done {
            name: name.to_string(),
        },
    )?;
    stop.store(true, Ordering::Relaxed);
    let _ = responder.join();
    Ok(())
}

/// Spawns the media-socket thread: echoes probes, channels echoes.
fn spawn_responder(
    udp: UdpSocket,
    echo_tx: Sender<EchoEvent>,
    stop: Arc<AtomicBool>,
) -> Result<std::thread::JoinHandle<()>, TestbedError> {
    let handle = std::thread::Builder::new()
        .name("via-client-media".into())
        .spawn(move || {
            let mut buf = [0u8; 2048];
            loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let (len, src) = match udp.recv_from(&mut buf) {
                    Ok(x) => x,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => return,
                };
                let Ok(pkt) = ProbePacket::decode(&buf[..len]) else {
                    continue;
                };
                match pkt.kind {
                    ProbeKind::Probe => {
                        // Callee role: reflect through the relay it came from.
                        let _ = udp.send_to(&pkt.to_echo().encode(), src);
                    }
                    ProbeKind::Echo => {
                        let _ = echo_tx.try_send(EchoEvent {
                            at: Instant::now(),
                            session: pkt.session,
                            seq: pkt.rtp.seq,
                            ssrc: pkt.rtp.ssrc,
                            rtp_timestamp: pkt.rtp.timestamp,
                        });
                    }
                }
            }
        })
        .map_err(TestbedError::Io)?;
    Ok(handle)
}

/// Sends one probe stream and reduces the echoes to a metric triple.
fn measure_call(
    udp: &UdpSocket,
    echo_rx: &Receiver<EchoEvent>,
    relay: SocketAddr,
    session: u16,
    probes: u16,
    gap_ms: u64,
) -> Result<PathMetrics, TestbedError> {
    // Drain stragglers from previous calls.
    while echo_rx.try_recv().is_ok() {}

    // A zero-probe call would divide by zero below; treat it as one probe
    // (the controller never asks for zero, but the CLI can).
    let probes = probes.max(1);
    let ssrc: u32 = u32::from(session) << 16 | 0x5A5A;
    let mut send_times = vec![None::<Instant>; usize::from(probes)];

    for seq in 0..probes {
        let pkt = ProbePacket::probe(session, seq, ssrc);
        send_times[usize::from(seq)] = Some(Instant::now());
        udp.send_to(&pkt.encode(), relay)?;
        std::thread::sleep(Duration::from_millis(gap_ms));
    }

    // Collection window: a generous ceiling so even intercontinental
    // emulated paths (~600 ms echo RTT) are counted, with an idle early-exit
    // so clean fast paths don't pay for it: once at least one echo arrived,
    // 250 ms of silence ends the call.
    let deadline = Instant::now() + Duration::from_millis(1_200);
    let idle_exit = Duration::from_millis(250);
    let mut rtts: Vec<f64> = Vec::with_capacity(usize::from(probes));
    let mut estimator = JitterEstimator::new();
    let mut received = vec![false; usize::from(probes)];

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let mut wait = deadline.saturating_duration_since(now);
        if rtts.is_empty() {
            // Nothing yet: wait out the full window.
        } else {
            wait = wait.min(idle_exit);
        }
        let Ok(ev) = echo_rx.recv_timeout(wait) else {
            if !rtts.is_empty() {
                break; // idle after at least one echo: the stream is done
            }
            continue;
        };
        if ev.session != session || ev.ssrc != ssrc {
            continue; // an old call's echo
        }
        let idx = usize::from(ev.seq);
        if idx >= send_times.len() || received[idx] {
            continue;
        }
        received[idx] = true;
        if let Some(sent) = send_times[idx] {
            rtts.push(ev.at.duration_since(sent).as_secs_f64() * 1_000.0);
        }
        let t0 = send_times[0].expect("first send recorded");
        let arrival_ms = ev.at.duration_since(t0).as_secs_f64() * 1_000.0;
        estimator.on_packet(arrival_ms, ev.rtp_timestamp);
        if received.iter().all(|&r| r) {
            break;
        }
    }

    let got = received.iter().filter(|&&r| r).count();
    let loss_pct = 100.0 * (f64::from(probes) - got as f64) / f64::from(probes);
    let rtt_ms = if rtts.is_empty() {
        // Total loss: report the collection ceiling, like a timed-out call.
        1_000.0
    } else {
        rtts.iter().sum::<f64>() / rtts.len() as f64
    };
    Ok(PathMetrics::new(rtt_ms, loss_pct, estimator.jitter_ms()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impair::ImpairParams;
    use crate::relay::{RelayHandle, Session};

    /// End-to-end measurement through a real relay with known impairment.
    #[test]
    fn measures_known_impairment() {
        let relay = RelayHandle::spawn(11).unwrap();

        // Callee: a raw echo socket using the same responder logic.
        let callee = UdpSocket::bind("127.0.0.1:0").unwrap();
        callee
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let (tx, _rx) = bounded(16);
        let stop = Arc::new(AtomicBool::new(false));
        let responder =
            spawn_responder(callee.try_clone().unwrap(), tx, Arc::clone(&stop)).unwrap();

        // Caller media socket + echo channel.
        let caller = UdpSocket::bind("127.0.0.1:0").unwrap();
        caller
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let (ctx, crx) = bounded(1024);
        let cstop = Arc::new(AtomicBool::new(false));
        let cresp = spawn_responder(caller.try_clone().unwrap(), ctx, Arc::clone(&cstop)).unwrap();

        relay.register_session(
            1,
            Session::steady(
                caller.local_addr().unwrap(),
                callee.local_addr().unwrap(),
                ImpairParams {
                    delay_ms: 15.0,
                    jitter_ms: 0.5,
                    loss_pct: 0.0,
                    corrupt_pct: 0.0,
                },
                ImpairParams {
                    delay_ms: 15.0,
                    jitter_ms: 0.5,
                    loss_pct: 0.0,
                    corrupt_pct: 0.0,
                },
            ),
        );

        let metrics = measure_call(&caller, &crx, relay.addr(), 1, 30, 2).unwrap();
        // Expected RTT ≈ 30 ms of impairment (+ loopback overhead).
        assert!(
            metrics.rtt_ms > 25.0 && metrics.rtt_ms < 80.0,
            "measured RTT {}",
            metrics.rtt_ms
        );
        assert!(metrics.loss_pct < 10.0, "loss {}", metrics.loss_pct);

        stop.store(true, Ordering::Relaxed);
        cstop.store(true, Ordering::Relaxed);
        let _ = responder.join();
        let _ = cresp.join();
    }

    #[test]
    fn total_loss_reports_ceiling() {
        // No relay at all: every probe vanishes.
        let caller = UdpSocket::bind("127.0.0.1:0").unwrap();
        let (_tx, rx) = bounded(4);
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap(); // discard port
        let metrics = measure_call(&caller, &rx, dead, 2, 5, 1).unwrap();
        assert_eq!(metrics.loss_pct, 100.0);
        assert!(metrics.rtt_ms >= 500.0);
    }
}
