//! Control-plane protocol between testbed clients and the controller.
//!
//! The prototype of §5.5 runs a central controller (the paper deployed it on
//! Azure) that instrumented clients contact over TCP. Messages are JSON
//! objects framed with a 4-byte big-endian length prefix — simple, debuggable
//! with standard tooling, and sufficient for a control plane that exchanges
//! one round-trip per call.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use via_model::metrics::PathMetrics;

/// Maximum accepted control frame, bytes (a Report is < 1 KiB; anything
/// larger indicates a corrupt or hostile stream).
pub const MAX_FRAME: u32 = 256 * 1024;

/// One relay option in the testbed: an index into the harness's relay list.
/// (The testbed omits the direct path, as the paper's §5.5 experiment does.)
pub type RelayIndex = u16;

/// Client → controller messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Announce this client and the UDP port it receives probes on.
    Register {
        /// Client name (unique per testbed).
        name: String,
        /// UDP port the client's media socket is bound to.
        udp_port: u16,
    },
    /// Measured metrics of one probe call.
    Report {
        /// Caller name.
        caller: String,
        /// Callee name.
        callee: String,
        /// Relay used.
        relay: RelayIndex,
        /// Round number (back-to-back sweep index).
        round: u32,
        /// Measured metrics (RTT/loss/jitter over the probe stream).
        metrics: PathMetrics,
    },
    /// The client is done with its assignments.
    Done {
        /// Client name.
        name: String,
    },
}

/// Controller → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControllerMsg {
    /// Registration accepted.
    Welcome,
    /// Make one probe call.
    Call {
        /// Callee's UDP address (as string, e.g. "127.0.0.1:4000").
        callee_addr: String,
        /// Relay UDP address to send through.
        relay_addr: String,
        /// Relay index (for reporting).
        relay: RelayIndex,
        /// Session id pre-registered at the relay.
        session: u16,
        /// Round number.
        round: u32,
        /// Number of probe packets.
        probes: u16,
        /// Inter-probe gap in milliseconds.
        gap_ms: u64,
        /// Callee name (for reporting).
        callee: String,
    },
    /// No more work; disconnect.
    Finished,
}

/// Errors from frame I/O.
#[derive(Debug)]
pub enum FrameError {
    /// Socket failure.
    Io(io::Error),
    /// Frame exceeded [`MAX_FRAME`].
    Oversized(u32),
    /// JSON decode failure.
    Decode(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::Decode(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    let body = serde_json::to_vec(msg).map_err(|e| FrameError::Decode(e.to_string()))?;
    let len = u32::try_from(body.len()).map_err(|_| FrameError::Oversized(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed JSON frame.
pub fn read_frame<T: for<'de> Deserialize<'de>>(r: &mut impl Read) -> Result<T, FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    serde_json::from_slice(&body).map_err(|e| FrameError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_client_messages() {
        let msgs = vec![
            ClientMsg::Register {
                name: "sg-1".into(),
                udp_port: 4001,
            },
            ClientMsg::Report {
                caller: "sg-1".into(),
                callee: "uk-1".into(),
                relay: 3,
                round: 2,
                metrics: PathMetrics::new(123.0, 0.5, 4.2),
            },
            ClientMsg::Done {
                name: "sg-1".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for m in &msgs {
            let back: ClientMsg = read_frame(&mut cur).unwrap();
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn roundtrip_controller_messages() {
        let m = ControllerMsg::Call {
            callee_addr: "127.0.0.1:4002".into(),
            relay_addr: "127.0.0.1:5001".into(),
            relay: 1,
            session: 9,
            round: 0,
            probes: 50,
            gap_ms: 20,
            callee: "uk-1".into(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &m).unwrap();
        let back: ControllerMsg = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn oversized_frame_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let err = read_frame::<ClientMsg>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Oversized(_)));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ControllerMsg::Welcome).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame::<ControllerMsg>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
    }

    #[test]
    fn garbage_is_decode_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"{{{");
        let err = read_frame::<ControllerMsg>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Decode(_)));
    }
}
