//! Control-plane protocol between testbed clients and the controller.
//!
//! The prototype of §5.5 runs a central controller (the paper deployed it on
//! Azure) that instrumented clients contact over TCP. Messages are JSON
//! objects framed with a 4-byte big-endian length prefix — simple, debuggable
//! with standard tooling, and sufficient for a control plane that exchanges
//! one round-trip per call.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};
use via_model::metrics::PathMetrics;

/// Maximum accepted control frame, bytes (a Report is < 1 KiB; anything
/// larger indicates a corrupt or hostile stream).
pub const MAX_FRAME: u32 = 256 * 1024;

/// One relay option in the testbed: an index into the harness's relay list.
/// (The testbed omits the direct path, as the paper's §5.5 experiment does.)
pub type RelayIndex = u16;

/// Client → controller messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Announce this client and the UDP port it receives probes on.
    Register {
        /// Client name (unique per testbed).
        name: String,
        /// UDP port the client's media socket is bound to.
        udp_port: u16,
    },
    /// Measured metrics of one probe call.
    Report {
        /// Caller name.
        caller: String,
        /// Callee name.
        callee: String,
        /// Relay used.
        relay: RelayIndex,
        /// Round number (back-to-back sweep index).
        round: u32,
        /// Measured metrics (RTT/loss/jitter over the probe stream).
        metrics: PathMetrics,
        /// True when the relay leg produced no echoes and the metrics were
        /// measured over the direct fallback path instead.
        degraded: bool,
    },
    /// The client is done with its assignments.
    Done {
        /// Client name.
        name: String,
    },
}

/// Controller → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControllerMsg {
    /// Registration accepted.
    Welcome,
    /// Make one probe call.
    Call {
        /// Callee's UDP address (as string, e.g. "127.0.0.1:4000").
        callee_addr: String,
        /// Relay UDP address to send through.
        relay_addr: String,
        /// Relay index (for reporting).
        relay: RelayIndex,
        /// Session id pre-registered at the relay.
        session: u16,
        /// Round number.
        round: u32,
        /// Number of probe packets.
        probes: u16,
        /// Inter-probe gap in milliseconds.
        gap_ms: u64,
        /// Callee name (for reporting).
        callee: String,
    },
    /// No more work; disconnect.
    Finished,
}

/// Errors from frame I/O.
#[derive(Debug)]
pub enum FrameError {
    /// Socket failure.
    Io(io::Error),
    /// Frame exceeded [`MAX_FRAME`].
    Oversized(u32),
    /// JSON decode failure.
    Decode(String),
    /// A read deadline elapsed before a complete frame arrived. Partial
    /// bytes stay buffered in the [`FrameConn`]; the stream is not desynced.
    Timeout,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::Decode(e) => write!(f, "frame decode error: {e}"),
            FrameError::Timeout => write!(f, "frame read deadline elapsed"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    let body = serde_json::to_vec(msg).map_err(|e| FrameError::Decode(e.to_string()))?;
    let len = u32::try_from(body.len()).map_err(|_| FrameError::Oversized(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    // One write for prefix + body: two separate writes let Nagle hold the
    // body segment behind the prefix's delayed ACK, turning every RPC round
    // trip into tens of milliseconds on an otherwise-idle connection.
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&body);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read granularity for frame bodies: the buffer grows by at most this much
/// per successful read, so allocation tracks bytes actually received.
const BODY_CHUNK: usize = 4096;

/// Reads one length-prefixed JSON frame.
pub fn read_frame<T: for<'de> Deserialize<'de>>(r: &mut impl Read) -> Result<T, FrameError> {
    let mut body = Vec::new();
    read_body(r, &mut body)?;
    serde_json::from_slice(&body).map_err(|e| FrameError::Decode(e.to_string()))
}

/// Reads one frame body into `body` (cleared first, capacity kept so loops
/// reuse a single allocation across frames).
///
/// The length prefix is untrusted input: a peer that writes 4 bytes claiming
/// a 256 KiB frame must not be able to force that allocation before sending
/// a single body byte. The buffer therefore grows incrementally — at most
/// [`BODY_CHUNK`] per read that actually delivered data — so memory held is
/// always proportional to bytes received, never to the claimed length.
///
/// # Errors
/// [`FrameError::Oversized`] when the prefix exceeds [`MAX_FRAME`]; an
/// `UnexpectedEof` I/O error when the peer closes mid-frame.
pub fn read_body(r: &mut impl Read, body: &mut Vec<u8>) -> Result<(), FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let len = len as usize;
    body.clear();
    let mut chunk = [0u8; BODY_CHUNK];
    while body.len() < len {
        let want = (len - body.len()).min(BODY_CHUNK);
        let n = r.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed the stream mid-frame",
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(())
}

/// How long a write may block before the connection is declared dead.
/// Control frames are < 1 KiB against loopback-sized socket buffers, so any
/// write that stalls this long means the peer is gone.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Poll interval for [`accept_deadline`], and the cap on one blocking read
/// inside [`FrameConn::read_deadline`] so the stop conditions stay live.
const POLL_SLICE: Duration = Duration::from_millis(50);

/// Connects to `addr` with a bounded timeout instead of the OS default
/// (which can be minutes).
///
/// # Errors
/// Propagates the connect failure, including `TimedOut`.
pub fn connect_deadline(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    TcpStream::connect_timeout(&addr, timeout)
}

/// Accepts one connection before `deadline`, or returns `Ok(None)` when the
/// deadline passes first. The listener is polled in non-blocking mode: a
/// plain `accept` has no timeout and can wedge the harness forever on a
/// client that never arrives.
///
/// # Errors
/// Propagates listener I/O failures.
pub fn accept_deadline(
    listener: &TcpListener,
    deadline: Instant,
) -> io::Result<Option<(TcpStream, SocketAddr)>> {
    listener.set_nonblocking(true)?;
    loop {
        // Non-blocking listener: returns WouldBlock instantly when idle.
        // via-audit: allow(socket-wait)
        match listener.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(false)?;
                return Ok(Some((stream, peer)));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if Instant::now() >= deadline {
                    return Ok(None);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}

/// A control connection with deadline-bounded, desync-safe frame reads.
///
/// Plain `read_exact` with a socket timeout loses any partially read frame
/// when the timeout fires, desynchronizing the length-prefixed stream.
/// `FrameConn` instead accumulates bytes in an internal buffer and decodes a
/// frame only once it is complete, so a deadline can fire mid-frame and the
/// next call resumes exactly where the stream left off.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameConn {
    /// Wraps a connected stream, installing a bounded write timeout.
    ///
    /// # Errors
    /// Propagates socket-option failures.
    pub fn new(stream: TcpStream) -> io::Result<FrameConn> {
        // Control frames are small request/response pairs; Nagle coalescing
        // only adds delayed-ACK latency to them.
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        Ok(FrameConn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Writes one frame (bounded by the connection's write timeout).
    ///
    /// # Errors
    /// Propagates frame encoding and socket failures.
    pub fn write<T: Serialize>(&mut self, msg: &T) -> Result<(), FrameError> {
        write_frame(&mut self.stream, msg)
    }

    /// Reads one frame, waiting at most until `deadline`.
    ///
    /// # Errors
    /// [`FrameError::Timeout`] when the deadline elapses first (any partial
    /// frame stays buffered for the next call); otherwise I/O / decode
    /// failures.
    pub fn read_deadline<T: for<'de> Deserialize<'de>>(
        &mut self,
        deadline: Instant,
    ) -> Result<T, FrameError> {
        loop {
            if let Some(msg) = self.try_decode()? {
                return Ok(msg);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(FrameError::Timeout);
            }
            let wait = deadline
                .saturating_duration_since(now)
                .min(POLL_SLICE)
                .max(Duration::from_millis(1));
            self.stream.set_read_timeout(Some(wait))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed the control connection",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Decodes one frame from the buffer if a complete one is present.
    fn try_decode<T: for<'de> Deserialize<'de>>(&mut self) -> Result<Option<T>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let msg = serde_json::from_slice(&self.buf[4..total])
            .map_err(|e| FrameError::Decode(e.to_string()))?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_client_messages() {
        let msgs = vec![
            ClientMsg::Register {
                name: "sg-1".into(),
                udp_port: 4001,
            },
            ClientMsg::Report {
                caller: "sg-1".into(),
                callee: "uk-1".into(),
                relay: 3,
                round: 2,
                metrics: PathMetrics::new(123.0, 0.5, 4.2),
                degraded: false,
            },
            ClientMsg::Done {
                name: "sg-1".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for m in &msgs {
            let back: ClientMsg = read_frame(&mut cur).unwrap();
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn roundtrip_controller_messages() {
        let m = ControllerMsg::Call {
            callee_addr: "127.0.0.1:4002".into(),
            relay_addr: "127.0.0.1:5001".into(),
            relay: 1,
            session: 9,
            round: 0,
            probes: 50,
            gap_ms: 20,
            callee: "uk-1".into(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &m).unwrap();
        let back: ControllerMsg = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn oversized_frame_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let err = read_frame::<ClientMsg>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Oversized(_)));
    }

    /// A reader that hands out one byte per `read` call: the worst case for
    /// the incremental body path (maximum number of grow steps).
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn body_buffer_grows_with_received_bytes_not_the_claimed_length() {
        // A hostile 4-byte prefix claiming MAX_FRAME with no body: the
        // buffer must not balloon to the claimed size before body bytes
        // arrive. The EOF surfaces as an I/O error and the allocation stays
        // bounded by what was actually received (zero bytes here).
        let mut r = Cursor::new(MAX_FRAME.to_be_bytes().to_vec());
        let mut body = Vec::new();
        let err = read_body(&mut r, &mut body).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
        assert_eq!(body.len(), 0);
        assert!(
            body.capacity() < MAX_FRAME as usize / 2,
            "claimed length must not drive allocation (capacity {})",
            body.capacity()
        );
    }

    #[test]
    fn read_body_reassembles_trickled_frames_and_reuses_the_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &ControllerMsg::Welcome).unwrap();
        write_frame(&mut wire, &ControllerMsg::Finished).unwrap();
        let mut r = Trickle { data: wire, pos: 0 };
        let mut body = Vec::new();
        read_body(&mut r, &mut body).unwrap();
        let a: ControllerMsg = serde_json::from_slice(&body).unwrap();
        assert_eq!(a, ControllerMsg::Welcome);
        let cap_after_first = body.capacity();
        read_body(&mut r, &mut body).unwrap();
        let b: ControllerMsg = serde_json::from_slice(&body).unwrap();
        assert_eq!(b, ControllerMsg::Finished);
        assert!(
            body.capacity() >= cap_after_first.min(body.len()),
            "the body buffer is reused across frames"
        );
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ControllerMsg::Welcome).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame::<ControllerMsg>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
    }

    #[test]
    fn garbage_is_decode_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"{{{");
        let err = read_frame::<ControllerMsg>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Decode(_)));
    }

    #[test]
    fn accept_deadline_expires_without_a_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let t0 = Instant::now();
        let got = accept_deadline(&listener, t0 + Duration::from_millis(30)).unwrap();
        assert!(got.is_none());
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn connect_deadline_fails_fast_on_dead_port() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let t0 = Instant::now();
        let err = connect_deadline(addr, Duration::from_millis(500));
        assert!(err.is_err());
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    /// The core desync-safety property: a deadline firing mid-frame must not
    /// lose the partial bytes; the completed frame decodes on a later call.
    #[test]
    fn frame_conn_survives_mid_frame_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut wire = Vec::new();
            write_frame(&mut wire, &ControllerMsg::Welcome).unwrap();
            // First half now, second half after the reader's deadline fires.
            let half = wire.len() / 2;
            s.write_all(&wire[..half]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(150));
            s.write_all(&wire[half..]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(200));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::new(stream).unwrap();
        let err = conn
            .read_deadline::<ControllerMsg>(Instant::now() + Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, FrameError::Timeout));
        let msg: ControllerMsg = conn
            .read_deadline(Instant::now() + Duration::from_secs(2))
            .unwrap();
        assert_eq!(msg, ControllerMsg::Welcome);
        writer.join().unwrap();
    }

    #[test]
    fn frame_conn_decodes_back_to_back_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(&mut s, &ControllerMsg::Welcome).unwrap();
            write_frame(&mut s, &ControllerMsg::Finished).unwrap();
            std::thread::sleep(Duration::from_millis(100));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::new(stream).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let a: ControllerMsg = conn.read_deadline(deadline).unwrap();
        let b: ControllerMsg = conn.read_deadline(deadline).unwrap();
        assert_eq!(a, ControllerMsg::Welcome);
        assert_eq!(b, ControllerMsg::Finished);
        writer.join().unwrap();
    }
}
