//! In-process testbed assembly: relays + clients + controller on loopback.
//!
//! Reproduces the shape of the paper's deployment (§5.5): a handful of
//! clients "in different countries" (each assigned an AS of a `via-netsim`
//! world, whose segment model supplies the emulated impairments), a fleet of
//! relay forwarders, and the controller orchestrating back-to-back probe
//! calls over every relaying option.
//!
//! The harness also owns fault injection: a [`FaultPlan`] in the config can
//! partition a client (never started), blackhole a probe leg (sessions
//! installed with 100% loss), kill a relay at a schedule point (via the
//! controller's `before_call` hook), and drop/duplicate/delay call-plane
//! control frames on both ends. Runs complete with partial results — see
//! [`TestbedResult::failures`] — and [`TestbedResult::summary`] renders a
//! deterministic, metrics-free digest that two same-seed runs reproduce
//! byte-identically even under injected chaos.

use std::collections::HashMap;
use std::net::TcpListener;
use via_model::ids::{AsId, RelayId};
use via_model::metrics::PathMetrics;
use via_model::time::SimTime;
use via_netsim::{World, WorldConfig};

use crate::client::{run_client_with, ClientConfig};
use crate::controller::{
    run_controller, ControlHooks, ControlTiming, ControllerConfig, PairFailure, PairSpec,
    ReportRecord,
};
use crate::error::TestbedError;
use crate::fault::FaultPlan;
use crate::impair::ImpairParams;
use crate::relay::{RelayHandle, Session};

/// Testbed parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of clients (paper: 14 machines).
    pub n_clients: usize,
    /// Number of relays (the paper's pairs saw 9–20 options).
    pub n_relays: usize,
    /// Number of caller–callee pairs (paper: 18).
    pub n_pairs: usize,
    /// Back-to-back sweeps per pair (paper: 4–5).
    pub rounds: u32,
    /// Probes per call.
    pub probes: u16,
    /// Inter-probe gap, ms.
    pub gap_ms: u64,
    /// World supplying geography + impairments.
    pub world: WorldConfig,
    /// Seed for everything.
    pub seed: u64,
    /// Failures to inject (default: none).
    pub fault: FaultPlan,
    /// Control-plane deadlines and retry policy.
    pub timing: ControlTiming,
}

impl TestbedConfig {
    /// A fast configuration for tests: completes in a few seconds.
    pub fn fast() -> Self {
        Self {
            n_clients: 4,
            n_relays: 4,
            n_pairs: 3,
            rounds: 3,
            probes: 15,
            gap_ms: 2,
            world: WorldConfig::tiny(),
            seed: 18,
            fault: FaultPlan::none(),
            timing: ControlTiming::default(),
        }
    }

    /// The paper-shaped configuration: 18 pairs, 4–5 rounds, more relays.
    /// Takes a minute or two of wall-clock (real delays are emulated).
    pub fn paper_shaped() -> Self {
        Self {
            n_clients: 14,
            n_relays: 6,
            n_pairs: 18,
            rounds: 4,
            probes: 25,
            gap_ms: 4,
            world: WorldConfig::tiny(),
            seed: 55,
            fault: FaultPlan::none(),
            timing: ControlTiming {
                global: std::time::Duration::from_secs(600),
                ..ControlTiming::default()
            },
        }
    }
}

/// Everything a testbed run produces.
#[derive(Debug)]
pub struct TestbedResult {
    /// All measurements collected by the controller (possibly partial under
    /// injected faults), sorted by (caller, callee, relay, round).
    pub reports: Vec<ReportRecord>,
    /// Every planned call or pair that produced no report, with its cause.
    pub failures: Vec<PairFailure>,
    /// Errors returned by client threads (e.g. an idle timeout after the
    /// controller cut a stream). Text may embed OS error strings, so this is
    /// excluded from [`TestbedResult::summary`].
    pub client_errors: Vec<String>,
    /// The impairment-derived expected metrics per (caller, callee, relay):
    /// ground truth for validating measurements.
    pub expected: HashMap<(String, String, u16), PathMetrics>,
    /// Total packets forwarded by all relays.
    pub forwarded: u64,
    /// Total packets dropped by impairment.
    pub dropped: u64,
    /// Observability snapshot: control-plane counters (retries, deadline
    /// hits, injected frame fates, typed failure kinds), report outcomes,
    /// and relay data-plane totals. Testbed metrics describe real socket
    /// behavior and are *not* covered by the byte-identical determinism
    /// contract — that contract is [`TestbedResult::summary`]'s.
    pub obs: via_obs::MetricsSnapshot,
}

impl TestbedResult {
    /// Number of reports measured over the direct fallback path.
    pub fn degraded_count(&self) -> usize {
        self.reports.iter().filter(|r| r.degraded).count()
    }

    /// A deterministic digest of the run: one sorted line per call outcome
    /// and per failure. Deliberately excludes metrics, timings, and error
    /// detail strings so that two same-seed runs — even chaotic ones —
    /// produce identical summaries.
    pub fn summary(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .reports
            .iter()
            .map(|r| {
                let status = if r.degraded { "degraded" } else { "ok" };
                format!(
                    "call {}->{} relay {} round {}: {status}",
                    r.caller, r.callee, r.relay, r.round
                )
            })
            .collect();
        lines.extend(self.failures.iter().map(|f| {
            let relay = f.relay.map_or_else(|| "-".to_string(), |r| r.to_string());
            let round = f.round.map_or_else(|| "-".to_string(), |r| r.to_string());
            format!(
                "fail {}->{} relay {relay} round {round}: {}",
                f.caller,
                f.callee,
                f.cause.kind()
            )
        }));
        lines.sort();
        lines
    }
}

/// Emulated one-way leg between a client (by AS) and a relay, derived from
/// the world's segment model. Delay is half the segment RTT; jitter and loss
/// split evenly between directions.
fn leg_params(world: &World, as_id: AsId, relay: RelayId) -> ImpairParams {
    let seg = world.perf().segment_mean(
        via_netsim::Segment::RelayWan(as_id, relay),
        SimTime::from_days(1),
    );
    ImpairParams {
        delay_ms: seg.rtt_ms / 2.0,
        jitter_ms: seg.jitter_ms / std::f64::consts::SQRT_2,
        loss_pct: seg.loss_pct / 2.0,
        // A light corruption rate exercises the defensive parsers; corrupted
        // probes surface as loss, like bit errors on a real path.
        corrupt_pct: 0.05,
    }
}

/// Validates a config, returning a typed error instead of panicking so a
/// bad CLI invocation fails gracefully.
fn validate(cfg: &TestbedConfig, world: &World) -> Result<(), TestbedError> {
    if cfg.n_clients < 2 {
        return Err(TestbedError::Config("need at least two clients".into()));
    }
    if cfg.n_relays == 0 {
        return Err(TestbedError::Config("need at least one relay".into()));
    }
    if world.ases.len() < cfg.n_clients {
        return Err(TestbedError::Config(format!(
            "world has {} ASes but {} clients were requested",
            world.ases.len(),
            cfg.n_clients
        )));
    }
    if world.relays.len() < cfg.n_relays {
        return Err(TestbedError::Config(format!(
            "world has {} relays but {} were requested",
            world.relays.len(),
            cfg.n_relays
        )));
    }
    if let Some(i) = cfg.fault.partition_client {
        if i >= cfg.n_clients {
            return Err(TestbedError::Config(format!(
                "partition_client {i} out of range (n_clients {})",
                cfg.n_clients
            )));
        }
    }
    Ok(())
}

/// Runs a complete testbed experiment and returns the (possibly partial)
/// measurements.
///
/// # Errors
/// Setup failures only (bad config, listener I/O, registration protocol
/// violations). Injected faults and mid-run failures surface as
/// [`TestbedResult::failures`] / [`TestbedResult::client_errors`] instead.
pub fn run_testbed(cfg: &TestbedConfig) -> Result<TestbedResult, TestbedError> {
    let world = World::generate(&cfg.world, cfg.seed);
    validate(cfg, &world)?;

    // Spread clients across ASes (and hence countries).
    let client_as: Vec<AsId> = (0..cfg.n_clients)
        .map(|i| world.ases[(i * world.ases.len()) / cfg.n_clients].id)
        .collect();
    let client_names: Vec<String> = (0..cfg.n_clients).map(|i| format!("client-{i}")).collect();

    // Relays.
    let relays: Vec<RelayHandle> = (0..cfg.n_relays)
        .map(|i| RelayHandle::spawn(cfg.seed + i as u64))
        .collect::<Result<_, _>>()?;

    // Pair plan: round-robin over distinct (caller, callee) combinations.
    let mut pairs = Vec::new();
    let mut k = 0usize;
    'outer: for i in 0..cfg.n_clients {
        for j in (i + 1)..cfg.n_clients {
            pairs.push(PairSpec {
                caller: client_names[i].clone(),
                callee: client_names[j].clone(),
                relays: (0..cfg.n_relays)
                    .map(|r| {
                        let idx = u16::try_from(r).map_err(|_| {
                            TestbedError::Config(format!(
                                "relay index {r} exceeds the u16 wire range"
                            ))
                        })?;
                        Ok((idx, relays[r].addr()))
                    })
                    .collect::<Result<_, TestbedError>>()?,
            });
            k += 1;
            if k >= cfg.n_pairs {
                break 'outer;
            }
        }
    }

    // Expected (ground-truth) per-(pair, relay) metrics from the impairment
    // parameters: caller→relay→callee and back.
    let as_of: HashMap<&str, AsId> = client_names
        .iter()
        .map(String::as_str)
        .zip(client_as.iter().copied())
        .collect();
    let mut expected = HashMap::new();
    for pair in &pairs {
        let ca = as_of[pair.caller.as_str()];
        let cb = as_of[pair.callee.as_str()];
        for &(r, _) in &pair.relays {
            let leg_a = leg_params(&world, ca, RelayId(u32::from(r)));
            let leg_b = leg_params(&world, cb, RelayId(u32::from(r)));
            let one_way = leg_a.chain(&leg_b);
            // Echo path doubles delay; loss applies on both crossings.
            let rt = one_way.chain(&one_way);
            expected.insert(
                (pair.caller.clone(), pair.callee.clone(), r),
                PathMetrics::new(rt.delay_ms, rt.loss_pct, rt.jitter_ms),
            );
        }
    }

    // The session registrar wires controller-assigned sessions into relays
    // with the impairments of the two legs; the controller hands it the pair
    // index explicitly, so skipped (failed) pairs cannot shift the mapping.
    // Pair participants are resolved by name from this parallel list.
    let pair_names: Vec<(String, String)> = pairs
        .iter()
        .map(|p| (p.caller.clone(), p.callee.clone()))
        .collect();
    let registrar_world = &world;
    let registrar_relays = &relays;
    let registrar_as_of = &as_of;
    let blackhole = cfg.fault.blackhole;
    // Per-session temporal sway (deterministic in the seed + session order):
    // effective delay oscillates ±25% with a period comparable to a sweep,
    // so consecutive rounds can disagree about the best relay.
    let sway_seed = cfg.seed;
    let registrar = move |pair_idx: usize,
                          relay: crate::protocol::RelayIndex,
                          session: u16,
                          caller_addr: std::net::SocketAddr,
                          callee_addr: std::net::SocketAddr| {
        let (a_to_b, b_to_a) = if blackhole == Some((pair_idx, relay)) {
            (ImpairParams::BLACKHOLE, ImpairParams::BLACKHOLE)
        } else {
            match pair_names.get(pair_idx) {
                Some((caller, callee)) => {
                    let ca = registrar_as_of[caller.as_str()];
                    let cb = registrar_as_of[callee.as_str()];
                    let leg_a = leg_params(registrar_world, ca, RelayId(u32::from(relay)));
                    let leg_b = leg_params(registrar_world, cb, RelayId(u32::from(relay)));
                    (leg_a.chain(&leg_b), leg_b.chain(&leg_a))
                }
                None => (ImpairParams::CLEAN, ImpairParams::CLEAN),
            }
        };
        let mix = via_model::seed::derive_indexed(sway_seed, "sway", u64::from(session));
        registrar_relays[usize::from(relay)].register_session(
            session,
            Session {
                a: caller_addr,
                b: callee_addr,
                a_to_b,
                b_to_a,
                sway_amp: 0.10 + (mix % 1000) as f64 / 1000.0 * 0.25,
                sway_period_s: 6.0 + (mix >> 10 & 0x3FF) as f64 / 1024.0 * 18.0,
                sway_phase: (mix >> 20 & 0x3FF) as f64 / 1024.0 * std::f64::consts::TAU,
            },
        );
    };

    // Fault hooks: the relay kill-switch fires deterministically just before
    // the targeted (pair, relay, round) call is placed; control-frame fault
    // streams are derived per connection from the plan seed.
    let kill = cfg.fault.kill_relay;
    let hook_relays = &relays;
    let before_call =
        move |_caller: &str, pair_idx: usize, relay: crate::protocol::RelayIndex, round: u32| {
            if let Some(k) = kill {
                if k.pair_idx == pair_idx && k.relay == relay && k.round == round {
                    if let Some(r) = hook_relays.get(usize::from(relay)) {
                        r.kill();
                    }
                }
            }
        };
    let client_index: HashMap<String, u64> = client_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i as u64))
        .collect();
    let fault_plan = cfg.fault.clone();
    let caller_faults = move |caller: &str| {
        client_index
            .get(caller)
            .and_then(|&i| fault_plan.frame_faults("ctrl-call", i))
    };
    let hooks = ControlHooks {
        caller_faults: Some(&caller_faults),
        before_call: Some(&before_call),
    };

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let controller_addr = listener.local_addr()?;
    let mut timing = cfg.timing.clone();
    timing.seed = via_model::seed::derive(cfg.fault.seed, "backoff");
    let controller_cfg = ControllerConfig {
        rounds: cfg.rounds,
        probes: cfg.probes,
        gap_ms: cfg.gap_ms,
        pairs,
        timing: timing.clone(),
    };

    // Clients run on their own threads; a partitioned client is simply
    // never started, so it never registers.
    let mut client_threads = Vec::new();
    for (i, name) in client_names.iter().enumerate() {
        if cfg.fault.partition_client == Some(i) {
            continue;
        }
        let name = name.clone();
        let client_cfg = ClientConfig {
            // Callees idle for the entire run; only a controller death
            // should time them out.
            idle_timeout: timing.global + std::time::Duration::from_secs(5),
            faults: cfg.fault.frame_faults("client-report", i as u64),
            ..ClientConfig::default()
        };
        let handle = std::thread::Builder::new()
            .name(format!("via-{name}"))
            .spawn({
                let name = name.clone();
                move || run_client_with(&name, controller_addr, client_cfg)
            })
            .map_err(TestbedError::Io)?;
        client_threads.push((name, handle));
    }

    let t_run = via_obs::Stopwatch::started();
    let outcome = run_controller(listener, controller_cfg, cfg.n_clients, registrar, &hooks)?;

    let mut client_errors = Vec::new();
    for (name, t) in client_threads {
        match t.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => client_errors.push(format!("{name}: {e}")),
            Err(_) => client_errors.push(format!("{name}: client thread panicked")),
        }
    }

    let forwarded = relays.iter().map(RelayHandle::forwarded).sum();
    let dropped = relays.iter().map(RelayHandle::dropped).sum();

    let mut sink = outcome.obs;
    sink.inc("testbed_relay_forwarded_total", forwarded);
    sink.inc("testbed_relay_dropped_total", dropped);
    sink.inc("testbed_client_errors_total", client_errors.len() as u64);
    sink.time("testbed.run", t_run);

    Ok(TestbedResult {
        reports: outcome.reports,
        failures: outcome.failures,
        client_errors,
        expected,
        forwarded,
        dropped,
        obs: sink.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_testbed_completes_and_measures() {
        let cfg = TestbedConfig::fast();
        let result = run_testbed(&cfg).expect("testbed run");
        let expected_reports = cfg.n_pairs * cfg.n_relays * cfg.rounds as usize;
        assert_eq!(result.reports.len(), expected_reports);
        assert!(result.failures.is_empty(), "{:?}", result.failures);
        assert!(
            result.client_errors.is_empty(),
            "{:?}",
            result.client_errors
        );
        assert_eq!(result.degraded_count(), 0);
        assert!(result.forwarded > 0, "relays forwarded nothing");

        // Measurements should land in the ballpark of the emulated paths.
        let mut checked = 0;
        for rec in &result.reports {
            let key = (rec.caller.clone(), rec.callee.clone(), rec.relay);
            let exp = &result.expected[&key];
            if rec.metrics.loss_pct < 50.0 {
                // RTT within a loose factor (loopback scheduling noise).
                assert!(
                    rec.metrics.rtt_ms > exp.rtt_ms * 0.5
                        && rec.metrics.rtt_ms < exp.rtt_ms * 3.0 + 100.0,
                    "pair {key:?}: measured {} vs expected {}",
                    rec.metrics.rtt_ms,
                    exp.rtt_ms
                );
                checked += 1;
            }
        }
        assert!(
            checked > expected_reports / 2,
            "too few usable measurements"
        );
    }

    #[test]
    fn bad_configs_error_instead_of_panicking() {
        let mut cfg = TestbedConfig::fast();
        cfg.n_clients = 1;
        assert!(matches!(run_testbed(&cfg), Err(TestbedError::Config(_))));
        let mut cfg = TestbedConfig::fast();
        cfg.n_relays = 0;
        assert!(matches!(run_testbed(&cfg), Err(TestbedError::Config(_))));
        let mut cfg = TestbedConfig::fast();
        cfg.fault.partition_client = Some(99);
        assert!(matches!(run_testbed(&cfg), Err(TestbedError::Config(_))));
    }

    #[test]
    fn summary_is_sorted_and_metrics_free() {
        let result = TestbedResult {
            reports: vec![ReportRecord {
                caller: "client-0".into(),
                callee: "client-1".into(),
                relay: 1,
                round: 0,
                metrics: PathMetrics::new(10.0, 0.0, 1.0),
                degraded: true,
            }],
            failures: vec![PairFailure {
                caller: "client-0".into(),
                callee: "client-2".into(),
                relay: None,
                round: None,
                cause: crate::controller::FailureCause::Unregistered {
                    name: "client-2".into(),
                },
            }],
            client_errors: vec![],
            expected: HashMap::new(),
            forwarded: 0,
            dropped: 0,
            obs: via_obs::MetricsSnapshot::default(),
        };
        let summary = result.summary();
        assert_eq!(summary.len(), 2);
        assert!(summary[0].starts_with("call client-0->client-1 relay 1 round 0: degraded"));
        assert!(summary[1].starts_with("fail client-0->client-2 relay - round -: unregistered"));
        // Metrics must not leak into the summary (determinism contract).
        assert!(summary.iter().all(|l| !l.contains("10")));
    }
}
