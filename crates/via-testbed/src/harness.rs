//! In-process testbed assembly: relays + clients + controller on loopback.
//!
//! Reproduces the shape of the paper's deployment (§5.5): a handful of
//! clients "in different countries" (each assigned an AS of a `via-netsim`
//! world, whose segment model supplies the emulated impairments), a fleet of
//! relay forwarders, and the controller orchestrating back-to-back probe
//! calls over every relaying option.

use std::collections::HashMap;
use std::net::TcpListener;
use via_model::ids::{AsId, RelayId};
use via_model::metrics::PathMetrics;
use via_model::time::SimTime;
use via_netsim::{World, WorldConfig};

use crate::client::run_client;
use crate::controller::{run_controller, ControllerConfig, PairSpec, ReportRecord};
use crate::error::TestbedError;
use crate::impair::ImpairParams;
use crate::relay::{RelayHandle, Session};

/// Testbed parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of clients (paper: 14 machines).
    pub n_clients: usize,
    /// Number of relays (the paper's pairs saw 9–20 options).
    pub n_relays: usize,
    /// Number of caller–callee pairs (paper: 18).
    pub n_pairs: usize,
    /// Back-to-back sweeps per pair (paper: 4–5).
    pub rounds: u32,
    /// Probes per call.
    pub probes: u16,
    /// Inter-probe gap, ms.
    pub gap_ms: u64,
    /// World supplying geography + impairments.
    pub world: WorldConfig,
    /// Seed for everything.
    pub seed: u64,
}

impl TestbedConfig {
    /// A fast configuration for tests: completes in a few seconds.
    pub fn fast() -> Self {
        Self {
            n_clients: 4,
            n_relays: 4,
            n_pairs: 3,
            rounds: 3,
            probes: 15,
            gap_ms: 2,
            world: WorldConfig::tiny(),
            seed: 18,
        }
    }

    /// The paper-shaped configuration: 18 pairs, 4–5 rounds, more relays.
    /// Takes a minute or two of wall-clock (real delays are emulated).
    pub fn paper_shaped() -> Self {
        Self {
            n_clients: 14,
            n_relays: 6,
            n_pairs: 18,
            rounds: 4,
            probes: 25,
            gap_ms: 4,
            world: WorldConfig::tiny(),
            seed: 55,
        }
    }
}

/// Everything a testbed run produces.
#[derive(Debug)]
pub struct TestbedResult {
    /// All measurements collected by the controller.
    pub reports: Vec<ReportRecord>,
    /// The impairment-derived expected metrics per (caller, callee, relay):
    /// ground truth for validating measurements.
    pub expected: HashMap<(String, String, u16), PathMetrics>,
    /// Total packets forwarded by all relays.
    pub forwarded: u64,
    /// Total packets dropped by impairment.
    pub dropped: u64,
}

/// Emulated one-way leg between a client (by AS) and a relay, derived from
/// the world's segment model. Delay is half the segment RTT; jitter and loss
/// split evenly between directions.
fn leg_params(world: &World, as_id: AsId, relay: RelayId) -> ImpairParams {
    let seg = world.perf().segment_mean(
        via_netsim::Segment::RelayWan(as_id, relay),
        SimTime::from_days(1),
    );
    ImpairParams {
        delay_ms: seg.rtt_ms / 2.0,
        jitter_ms: seg.jitter_ms / std::f64::consts::SQRT_2,
        loss_pct: seg.loss_pct / 2.0,
        // A light corruption rate exercises the defensive parsers; corrupted
        // probes surface as loss, like bit errors on a real path.
        corrupt_pct: 0.05,
    }
}

/// Runs a complete testbed experiment and returns the measurements.
pub fn run_testbed(cfg: &TestbedConfig) -> Result<TestbedResult, TestbedError> {
    assert!(cfg.n_clients >= 2, "need at least two clients");
    assert!(cfg.n_relays >= 1, "need at least one relay");

    let world = World::generate(&cfg.world, cfg.seed);
    assert!(
        world.ases.len() >= cfg.n_clients,
        "world too small for the requested client count"
    );
    assert!(world.relays.len() >= cfg.n_relays);

    // Spread clients across ASes (and hence countries).
    let client_as: Vec<AsId> = (0..cfg.n_clients)
        .map(|i| world.ases[(i * world.ases.len()) / cfg.n_clients].id)
        .collect();
    let client_names: Vec<String> = (0..cfg.n_clients).map(|i| format!("client-{i}")).collect();

    // Relays.
    let relays: Vec<RelayHandle> = (0..cfg.n_relays)
        .map(|i| RelayHandle::spawn(cfg.seed + i as u64))
        .collect::<Result<_, _>>()?;

    // Pair plan: round-robin over distinct (caller, callee) combinations.
    let mut pairs = Vec::new();
    let mut k = 0usize;
    'outer: for i in 0..cfg.n_clients {
        for j in (i + 1)..cfg.n_clients {
            pairs.push(PairSpec {
                caller: client_names[i].clone(),
                callee: client_names[j].clone(),
                relays: (0..cfg.n_relays)
                    .map(|r| (r as u16, relays[r].addr()))
                    .collect(),
            });
            k += 1;
            if k >= cfg.n_pairs {
                break 'outer;
            }
        }
    }

    // Expected (ground-truth) per-(pair, relay) metrics from the impairment
    // parameters: caller→relay→callee and back.
    let as_of: HashMap<&str, AsId> = client_names
        .iter()
        .map(String::as_str)
        .zip(client_as.iter().copied())
        .collect();
    let mut expected = HashMap::new();
    for pair in &pairs {
        let ca = as_of[pair.caller.as_str()];
        let cb = as_of[pair.callee.as_str()];
        for &(r, _) in &pair.relays {
            let leg_a = leg_params(&world, ca, RelayId(u32::from(r)));
            let leg_b = leg_params(&world, cb, RelayId(u32::from(r)));
            let one_way = leg_a.chain(&leg_b);
            // Echo path doubles delay; loss applies on both crossings.
            let rt = one_way.chain(&one_way);
            expected.insert(
                (pair.caller.clone(), pair.callee.clone(), r),
                PathMetrics::new(rt.delay_ms, rt.loss_pct, rt.jitter_ms),
            );
        }
    }

    // The session registrar wires controller-assigned sessions into relays
    // with the impairments of the two legs.
    let registrar_world = &world;
    let registrar_relays = &relays;
    let registrar_as_of = &as_of;

    // Map from UDP addr to client index is only known post-registration, so
    // the registrar resolves impairments by *position in the plan* instead:
    // controller registers sessions pair-by-pair in plan order.
    let plan_legs: Vec<(ImpairParams, ImpairParams)> = pairs
        .iter()
        .flat_map(|p| {
            let ca = registrar_as_of[p.caller.as_str()];
            let cb = registrar_as_of[p.callee.as_str()];
            p.relays.iter().map(move |&(r, _)| {
                let leg_a = leg_params(registrar_world, ca, RelayId(u32::from(r)));
                let leg_b = leg_params(registrar_world, cb, RelayId(u32::from(r)));
                (leg_a.chain(&leg_b), leg_b.chain(&leg_a))
            })
        })
        .collect();
    let session_counter = std::sync::atomic::AtomicUsize::new(0);
    // Per-session temporal sway (deterministic in the seed + session order):
    // effective delay oscillates ±25% with a period comparable to a sweep,
    // so consecutive rounds can disagree about the best relay.
    let sway_seed = cfg.seed;

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let controller_addr = listener.local_addr()?;
    let controller_cfg = ControllerConfig {
        rounds: cfg.rounds,
        probes: cfg.probes,
        gap_ms: cfg.gap_ms,
        pairs,
    };

    // Clients run on their own threads.
    let client_threads: Vec<_> = client_names
        .iter()
        .map(|name| {
            let name = name.clone();
            std::thread::Builder::new()
                .name(format!("via-{name}"))
                .spawn(move || run_client(&name, controller_addr))
                .expect("spawn client")
        })
        .collect();

    let reports = run_controller(
        listener,
        controller_cfg,
        cfg.n_clients,
        |relay, session, caller_addr, callee_addr| {
            let idx = session_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let (a_to_b, b_to_a) = plan_legs
                .get(idx)
                .copied()
                .unwrap_or((ImpairParams::CLEAN, ImpairParams::CLEAN));
            let mix = via_model::seed::derive_indexed(sway_seed, "sway", session as u64);
            registrar_relays[usize::from(relay)].register_session(
                session,
                Session {
                    a: caller_addr,
                    b: callee_addr,
                    a_to_b,
                    b_to_a,
                    sway_amp: 0.10 + (mix % 1000) as f64 / 1000.0 * 0.25,
                    sway_period_s: 6.0 + (mix >> 10 & 0x3FF) as f64 / 1024.0 * 18.0,
                    sway_phase: (mix >> 20 & 0x3FF) as f64 / 1024.0 * std::f64::consts::TAU,
                },
            );
        },
    )?;

    for t in client_threads {
        t.join()
            .map_err(|_| TestbedError::Component("client thread panicked".into()))??;
    }

    let forwarded = relays.iter().map(RelayHandle::forwarded).sum();
    let dropped = relays.iter().map(RelayHandle::dropped).sum();

    Ok(TestbedResult {
        reports,
        expected,
        forwarded,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_testbed_completes_and_measures() {
        let cfg = TestbedConfig::fast();
        let result = run_testbed(&cfg).expect("testbed run");
        let expected_reports = cfg.n_pairs * cfg.n_relays * cfg.rounds as usize;
        assert_eq!(result.reports.len(), expected_reports);
        assert!(result.forwarded > 0, "relays forwarded nothing");

        // Measurements should land in the ballpark of the emulated paths.
        let mut checked = 0;
        for rec in &result.reports {
            let key = (rec.caller.clone(), rec.callee.clone(), rec.relay);
            let exp = &result.expected[&key];
            if rec.metrics.loss_pct < 50.0 {
                // RTT within a loose factor (loopback scheduling noise).
                assert!(
                    rec.metrics.rtt_ms > exp.rtt_ms * 0.5
                        && rec.metrics.rtt_ms < exp.rtt_ms * 3.0 + 100.0,
                    "pair {key:?}: measured {} vs expected {}",
                    rec.metrics.rtt_ms,
                    exp.rtt_ms
                );
                checked += 1;
            }
        }
        assert!(
            checked > expected_reports / 2,
            "too few usable measurements"
        );
    }
}
