//! The relay forwarder: the testbed's data plane.
//!
//! Each relay is a UDP socket plus a session table. A probe packet carries a
//! session id; the relay looks up the session, determines direction from the
//! source address, applies the leg's emulated impairment (drop or delay) and
//! forwards to the other endpoint through a [`DelayLine`]. This mirrors the
//! paper's production relays, which "were only designed to forward traffic"
//! — all intelligence lives in the controller and clients.

use parking_lot::{Mutex, RwLock};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::impair::{DelayLine, ImpairParams};
use crate::probe;

/// One registered forwarding session between two endpoints.
#[derive(Debug, Clone)]
pub struct Session {
    /// Endpoint A address.
    pub a: SocketAddr,
    /// Endpoint B address.
    pub b: SocketAddr,
    /// Impairment for packets travelling A → B (both legs combined).
    pub a_to_b: ImpairParams,
    /// Impairment for packets travelling B → A.
    pub b_to_a: ImpairParams,
    /// Slow temporal sway: the effective delay/jitter of this session
    /// oscillates by ±`sway_amp` with the given period — the "temporal
    /// fluctuations" that make back-to-back rounds disagree about the best
    /// relay (§5.5). Zero amplitude disables it.
    pub sway_amp: f64,
    /// Sway period, seconds.
    pub sway_period_s: f64,
    /// Sway phase offset, radians.
    pub sway_phase: f64,
}

impl Session {
    /// A session with no temporal sway.
    pub fn steady(
        a: SocketAddr,
        b: SocketAddr,
        a_to_b: ImpairParams,
        b_to_a: ImpairParams,
    ) -> Session {
        Session {
            a,
            b,
            a_to_b,
            b_to_a,
            sway_amp: 0.0,
            sway_period_s: 1.0,
            sway_phase: 0.0,
        }
    }

    /// The sway multiplier at `elapsed_s` seconds since relay start.
    fn sway_factor(&self, elapsed_s: f64) -> f64 {
        if self.sway_amp == 0.0 {
            return 1.0;
        }
        1.0 + self.sway_amp
            * (std::f64::consts::TAU * elapsed_s / self.sway_period_s.max(0.001) + self.sway_phase)
                .sin()
    }
}

/// Handle to a running relay.
pub struct RelayHandle {
    addr: SocketAddr,
    sessions: Arc<RwLock<HashMap<u16, Session>>>,
    stop: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    /// Behind a mutex so [`RelayHandle::kill`] works from `&self` (the fault
    /// injector holds shared references only).
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl RelayHandle {
    /// Spawns a relay bound to an ephemeral loopback port.
    pub fn spawn(seed: u64) -> std::io::Result<RelayHandle> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let out = socket.try_clone()?;
        let line = DelayLine::new(out)?;

        let sessions: Arc<RwLock<HashMap<u16, Session>>> = Arc::new(RwLock::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));

        let t_sessions = Arc::clone(&sessions);
        let t_stop = Arc::clone(&stop);
        let t_forwarded = Arc::clone(&forwarded);
        let t_dropped = Arc::clone(&dropped);

        let thread = std::thread::Builder::new()
            .name(format!("via-relay-{}", addr.port()))
            .spawn(move || {
                let started = std::time::Instant::now();
                let mut rng = StdRng::seed_from_u64(seed);
                let mut buf = [0u8; 2048];
                loop {
                    if t_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let (len, src) = match socket.recv_from(&mut buf) {
                        Ok(x) => x,
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => return,
                    };
                    let Some(session_id) = probe::peek_session(&buf[..len]) else {
                        continue; // not a probe packet; ignore
                    };
                    let session = {
                        let table = t_sessions.read();
                        match table.get(&session_id) {
                            Some(s) => s.clone(),
                            None => continue,
                        }
                    };
                    let (dest, mut leg) = if src == session.a {
                        (session.b, session.a_to_b)
                    } else if src == session.b {
                        (session.a, session.b_to_a)
                    } else {
                        continue; // unknown sender for this session
                    };
                    let sway = session.sway_factor(started.elapsed().as_secs_f64());
                    leg.delay_ms *= sway;
                    leg.jitter_ms *= sway;
                    match leg.sample(&mut rng) {
                        Some(delay) => {
                            let mut payload = buf[..len].to_vec();
                            if let Some((idx, mask)) = leg.sample_corruption(len, &mut rng) {
                                payload[idx] ^= mask;
                            }
                            t_forwarded.fetch_add(1, Ordering::Relaxed);
                            line.send_after(delay, payload, dest);
                        }
                        None => {
                            t_dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })?;

        Ok(RelayHandle {
            addr,
            sessions,
            stop,
            forwarded,
            dropped,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The relay's UDP address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers (or replaces) a forwarding session.
    pub fn register_session(&self, id: u16, session: Session) {
        self.sessions.write().insert(id, session);
    }

    /// Removes a session.
    pub fn remove_session(&self, id: u16) {
        self.sessions.write().remove(&id);
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Packets dropped by impairment so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Kills the relay: stops and joins the forwarder thread, closing its
    /// socket. In-flight and future probes through this relay vanish — the
    /// fault injector uses this to emulate a relay dying mid-session.
    /// Idempotent; blocks at most one socket-timeout slice (~50 ms).
    pub fn kill(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }

    /// True until [`RelayHandle::kill`] has reaped the forwarder thread.
    pub fn is_alive(&self) -> bool {
        self.thread.lock().is_some()
    }
}

impl Drop for RelayHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbePacket;

    fn bind() -> UdpSocket {
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s
    }

    #[test]
    fn forwards_between_registered_endpoints() {
        let relay = RelayHandle::spawn(1).unwrap();
        let a = bind();
        let b = bind();
        relay.register_session(
            7,
            Session::steady(
                a.local_addr().unwrap(),
                b.local_addr().unwrap(),
                ImpairParams::CLEAN,
                ImpairParams::CLEAN,
            ),
        );

        let pkt = ProbePacket::probe(7, 3, 42).encode();
        a.send_to(&pkt, relay.addr()).unwrap();

        let mut buf = [0u8; 2048];
        let (n, _) = b.recv_from(&mut buf).unwrap();
        let got = ProbePacket::decode(&buf[..n]).unwrap();
        assert_eq!(got.session, 7);
        assert_eq!(got.rtp.seq, 3);
        assert_eq!(relay.forwarded(), 1);
    }

    #[test]
    fn reverse_direction_reaches_a() {
        let relay = RelayHandle::spawn(2).unwrap();
        let a = bind();
        let b = bind();
        relay.register_session(
            1,
            Session::steady(
                a.local_addr().unwrap(),
                b.local_addr().unwrap(),
                ImpairParams::CLEAN,
                ImpairParams::CLEAN,
            ),
        );
        let pkt = ProbePacket::echo(1, 9, 42).encode();
        b.send_to(&pkt, relay.addr()).unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = a.recv_from(&mut buf).unwrap();
        assert_eq!(ProbePacket::decode(&buf[..n]).unwrap().rtp.seq, 9);
    }

    #[test]
    fn unknown_session_is_dropped_silently() {
        let relay = RelayHandle::spawn(3).unwrap();
        let a = bind();
        let pkt = ProbePacket::probe(99, 0, 1).encode();
        a.send_to(&pkt, relay.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(relay.forwarded(), 0);
        assert_eq!(relay.dropped(), 0);
    }

    #[test]
    fn lossy_session_drops_packets() {
        let relay = RelayHandle::spawn(4).unwrap();
        let a = bind();
        let b = bind();
        relay.register_session(
            5,
            Session::steady(
                a.local_addr().unwrap(),
                b.local_addr().unwrap(),
                ImpairParams {
                    delay_ms: 0.0,
                    jitter_ms: 0.0,
                    loss_pct: 100.0,
                    corrupt_pct: 0.0,
                },
                ImpairParams::CLEAN,
            ),
        );
        for seq in 0..20 {
            let pkt = ProbePacket::probe(5, seq, 1).encode();
            a.send_to(&pkt, relay.addr()).unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(relay.forwarded(), 0);
        assert_eq!(relay.dropped(), 20);
    }

    #[test]
    fn corrupting_session_mangles_packets_but_still_delivers() {
        let relay = RelayHandle::spawn(7).unwrap();
        let a = bind();
        let b = bind();
        relay.register_session(
            3,
            Session::steady(
                a.local_addr().unwrap(),
                b.local_addr().unwrap(),
                ImpairParams {
                    delay_ms: 0.0,
                    jitter_ms: 0.0,
                    loss_pct: 0.0,
                    corrupt_pct: 100.0,
                },
                ImpairParams::CLEAN,
            ),
        );
        let mut mangled = 0;
        for seq in 0..30u16 {
            let pkt = ProbePacket::probe(3, seq, 9);
            let wire = pkt.encode();
            a.send_to(&wire, relay.addr()).unwrap();
            let mut buf = [0u8; 2048];
            let (n, _) = b.recv_from(&mut buf).unwrap();
            assert_eq!(n, wire.len(), "corruption must not change length");
            if buf[..n] != wire[..] {
                mangled += 1;
            }
        }
        assert_eq!(mangled, 30, "every packet should differ at 100% corruption");
    }

    #[test]
    fn kill_stops_forwarding_and_is_idempotent() {
        let relay = RelayHandle::spawn(6).unwrap();
        let a = bind();
        let b = bind();
        relay.register_session(
            4,
            Session::steady(
                a.local_addr().unwrap(),
                b.local_addr().unwrap(),
                ImpairParams::CLEAN,
                ImpairParams::CLEAN,
            ),
        );
        a.send_to(&ProbePacket::probe(4, 0, 1).encode(), relay.addr())
            .unwrap();
        let mut buf = [0u8; 2048];
        b.recv_from(&mut buf).unwrap();
        assert!(relay.is_alive());

        relay.kill();
        relay.kill(); // second kill is a no-op
        assert!(!relay.is_alive());
        let forwarded_at_death = relay.forwarded();
        // Packets sent after death go nowhere.
        a.send_to(&ProbePacket::probe(4, 1, 1).encode(), relay.addr())
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(relay.forwarded(), forwarded_at_death);
    }

    #[test]
    fn session_can_be_removed() {
        let relay = RelayHandle::spawn(5).unwrap();
        let a = bind();
        let b = bind();
        relay.register_session(
            2,
            Session::steady(
                a.local_addr().unwrap(),
                b.local_addr().unwrap(),
                ImpairParams::CLEAN,
                ImpairParams::CLEAN,
            ),
        );
        relay.remove_session(2);
        a.send_to(&ProbePacket::probe(2, 0, 1).encode(), relay.addr())
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(relay.forwarded(), 0);
    }
}
