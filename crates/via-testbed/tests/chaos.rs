//! Chaos soak for the §5.5 testbed: a seeded [`FaultPlan`] kills a relay
//! mid-run, blackholes a probe leg, partitions a client, and drops/duplicates
//! control frames — and the harness must still complete with partial,
//! deterministic results: no panic, no hang past the global deadline,
//! degraded calls falling back to the direct path, and two same-seed runs
//! producing byte-identical summaries.

use std::time::{Duration, Instant};
use via_testbed::{
    run_testbed, ControlTiming, FaultPlan, RelayKill, RetryPolicy, TestbedConfig, TestbedResult,
};

/// The chaos scenario. All three pairs share caller `client-0`, so the
/// controller runs a single orchestration thread and the call schedule —
/// which the relay kill is anchored to — is strictly sequential:
/// per round, (pair 0, relay 0), (pair 0, relay 1), (pair 1, relay 0),
/// (pair 1, relay 1).
fn chaos_config() -> TestbedConfig {
    let mut cfg = TestbedConfig::fast();
    cfg.n_clients = 4;
    cfg.n_relays = 2;
    cfg.n_pairs = 3; // (client-0→1), (client-0→2), (client-0→3)
    cfg.rounds = 2;
    cfg.probes = 8;
    cfg.gap_ms = 1;
    cfg.seed = 77;
    cfg.fault = FaultPlan {
        seed: 9001,
        frame_drop_pct: 10.0,
        frame_dup_pct: 5.0,
        frame_delay_ms: 0,
        // Relay 1 dies just before the (pair 1, round 0) call.
        kill_relay: Some(RelayKill {
            relay: 1,
            pair_idx: 1,
            round: 0,
        }),
        // The (pair 0, relay 0) probe leg forwards nothing.
        blackhole: Some((0, 0)),
        // client-3 never starts: its pair must fail typed, not hang.
        partition_client: Some(3),
    };
    cfg.timing = ControlTiming {
        registration: Duration::from_secs(2),
        call_margin: Duration::from_millis(800),
        retry: RetryPolicy::default(),
        global: Duration::from_secs(60),
        seed: 0, // the harness derives the backoff seed from fault.seed
    };
    cfg
}

fn run(cfg: &TestbedConfig) -> (TestbedResult, Duration) {
    let start = Instant::now();
    let result =
        run_testbed(cfg).unwrap_or_else(|e| panic!("chaos run must complete, not abort: {e}"));
    (result, start.elapsed())
}

#[test]
fn chaos_soak_degrades_gracefully_and_is_deterministic() {
    let cfg = chaos_config();
    let (result, elapsed) = run(&cfg);

    // No hang: the run finishes inside the global deadline (plus teardown
    // slack), even with a dead relay, a blackhole, and dropped frames.
    assert!(
        elapsed < cfg.timing.global + Duration::from_secs(10),
        "run took {elapsed:?}, past the global deadline {:?}",
        cfg.timing.global
    );

    // The partitioned client's pair fails with a typed cause.
    assert!(
        result
            .failures
            .iter()
            .any(|f| f.callee == "client-3" && f.cause.kind() == "unregistered"),
        "partitioned client-3 should yield an unregistered failure: {:?}",
        result.failures
    );

    // Every planned call on the two runnable pairs is accounted for: either
    // a report or a typed per-call failure — nothing silently vanishes.
    let planned = 2 /* pairs */ * 2 /* relays */ * 2 /* rounds */;
    let call_failures = result.failures.iter().filter(|f| f.relay.is_some()).count();
    assert_eq!(
        result.reports.len() + call_failures,
        planned,
        "reports {:?} + failures {:?} must cover the schedule",
        result.reports.len(),
        result.failures
    );

    // The blackholed leg (pair client-0→client-1, relay 0) produces zero
    // echoes, so every report for it must be a degraded direct-path
    // measurement carrying plausible metrics.
    let blackholed: Vec<_> = result
        .reports
        .iter()
        .filter(|r| r.callee == "client-1" && r.relay == 0)
        .collect();
    assert!(
        !blackholed.is_empty(),
        "blackholed pair produced no reports"
    );
    for r in &blackholed {
        assert!(r.degraded, "blackholed call not degraded: {r:?}");
        assert!(
            r.metrics.loss_pct < 100.0,
            "direct fallback measured nothing: {r:?}"
        );
    }

    // Relay 1 was killed just before the (pair 1, round 0) call. The one
    // call scheduled before the kill point — (pair 0, relay 1, round 0) —
    // is healthy; every relay-1 call from the kill point on is degraded.
    for r in result.reports.iter().filter(|r| r.relay == 1) {
        let before_kill = r.callee == "client-1" && r.round == 0;
        assert_eq!(
            r.degraded, !before_kill,
            "relay-1 call on the wrong side of the kill point: {r:?}"
        );
    }

    // The healthy pair leg (client-0→client-2 over relay 0) stays clean.
    for r in result
        .reports
        .iter()
        .filter(|r| r.callee == "client-2" && r.relay == 0)
    {
        assert!(!r.degraded, "healthy leg reported degraded: {r:?}");
    }

    assert!(
        result.degraded_count() >= 3,
        "expected several degraded fallbacks, got {}",
        result.degraded_count()
    );

    // Determinism: a second run with the same seeds reproduces the summary
    // byte-for-byte, chaos and all.
    let (again, _) = run(&cfg);
    assert_eq!(
        result.summary(),
        again.summary(),
        "same-seed chaos runs diverged"
    );
    assert!(!result.summary().is_empty());
}
