//! Fault-knob matrix for the §5.5 testbed: each [`FaultPlan`] knob is
//! exercised *in isolation* and must produce exactly its own signature —
//! the expected typed [`FailureCause`] kinds, degraded-report counts, and
//! observability counters — with no cross-talk from the other knobs.
//!
//! All configs use a single caller (`client-0`), so the call schedule is
//! strictly sequential and schedule-anchored faults (the relay kill) land
//! at a known position.

use std::time::Duration;
use via_testbed::{
    run_testbed, ControlTiming, FaultPlan, RelayKill, RetryPolicy, TestbedConfig, TestbedResult,
};

/// Two pairs (client-0→1, client-0→2) over two relays, two rounds:
/// 8 planned calls, all placed by the single orchestration thread of
/// client-0 in a fixed order.
fn base_config() -> TestbedConfig {
    let mut cfg = TestbedConfig::fast();
    cfg.n_clients = 3;
    cfg.n_relays = 2;
    cfg.n_pairs = 2;
    cfg.rounds = 2;
    cfg.probes = 6;
    cfg.gap_ms = 1;
    cfg.seed = 21;
    cfg.timing = ControlTiming {
        registration: Duration::from_secs(2),
        call_margin: Duration::from_millis(800),
        retry: RetryPolicy::default(),
        global: Duration::from_secs(60),
        seed: 0, // the harness derives the backoff seed from fault.seed
    };
    cfg
}

/// Planned calls in [`base_config`]: pairs × relays × rounds.
const PLANNED: usize = 2 * 2 * 2;

fn run(cfg: &TestbedConfig) -> TestbedResult {
    run_testbed(cfg).unwrap_or_else(|e| panic!("testbed run must complete: {e}"))
}

/// Every planned call is a report or a typed per-call failure.
fn assert_all_calls_accounted(r: &TestbedResult) {
    let call_failures = r.failures.iter().filter(|f| f.relay.is_some()).count();
    assert_eq!(
        r.reports.len() + call_failures,
        PLANNED,
        "reports {} + call failures {call_failures} must cover the {PLANNED}-call schedule: {:?}",
        r.reports.len(),
        r.failures
    );
}

#[test]
fn drop_knob_forces_retries_and_only_timeout_failures() {
    let mut cfg = base_config();
    cfg.fault = FaultPlan {
        seed: 5,
        frame_drop_pct: 25.0,
        ..FaultPlan::none()
    };
    let r = run(&cfg);

    assert!(
        r.obs.counter("testbed_ctrl_frames_dropped_total") > 0,
        "a 25% drop plan over {PLANNED}+ frames must drop something"
    );
    assert!(
        r.obs.counter("testbed_call_retries_total") > 0,
        "each dropped Call frame must drive a retry"
    );
    // Dropped frames either recover via retry or exhaust into a
    // call-timeout — never any other cause, never a degraded measurement.
    assert_all_calls_accounted(&r);
    assert!(
        r.failures.iter().all(|f| f.cause.kind() == "call-timeout"),
        "only retry exhaustion may fail a call under pure frame drop: {:?}",
        r.failures
    );
    assert_eq!(r.degraded_count(), 0, "drop faults must not degrade calls");
    assert_eq!(r.obs.counter("testbed_ctrl_frames_duplicated_total"), 0);
}

#[test]
fn dup_knob_is_absorbed_by_stale_report_filtering() {
    let mut cfg = base_config();
    cfg.fault = FaultPlan {
        seed: 5,
        frame_dup_pct: 60.0,
        ..FaultPlan::none()
    };
    let r = run(&cfg);

    assert!(
        r.obs.counter("testbed_ctrl_frames_duplicated_total") > 0,
        "a 60% duplication plan must duplicate something"
    );
    assert_eq!(r.obs.counter("testbed_ctrl_frames_dropped_total"), 0);
    // Duplicate Call frames produce duplicate Reports; the controller skips
    // stale ones, so every call still completes exactly once.
    assert_eq!(r.reports.len(), PLANNED, "{:?}", r.failures);
    assert!(r.failures.is_empty(), "{:?}", r.failures);
    assert_eq!(r.degraded_count(), 0);
}

#[test]
fn delay_knob_slows_every_frame_without_losing_any() {
    let mut cfg = base_config();
    cfg.fault = FaultPlan {
        seed: 5,
        frame_delay_ms: 40,
        ..FaultPlan::none()
    };
    let r = run(&cfg);

    // No drops, so each planned call delivers (at least) its first attempt,
    // each behind the injected delay.
    assert!(
        r.obs.counter("testbed_ctrl_frames_delayed_total") >= PLANNED as u64,
        "every delivered Call frame must be delayed: {:?}",
        r.obs.counters
    );
    assert_eq!(r.reports.len(), PLANNED, "{:?}", r.failures);
    assert!(r.failures.is_empty(), "{:?}", r.failures);
    assert_eq!(r.degraded_count(), 0);
}

#[test]
fn relay_kill_degrades_exactly_the_calls_after_the_kill_point() {
    let mut cfg = base_config();
    // Relay 1 dies just before the (pair 0, round 1) call: both round-0
    // relay-1 calls are healthy, both round-1 relay-1 calls fall back to
    // the degraded direct path.
    cfg.fault = FaultPlan {
        seed: 5,
        kill_relay: Some(RelayKill {
            relay: 1,
            pair_idx: 0,
            round: 1,
        }),
        ..FaultPlan::none()
    };
    let r = run(&cfg);

    assert_eq!(r.reports.len(), PLANNED, "{:?}", r.failures);
    assert!(r.failures.is_empty(), "{:?}", r.failures);
    for rec in &r.reports {
        let expect_degraded = rec.relay == 1 && rec.round == 1;
        assert_eq!(
            rec.degraded, expect_degraded,
            "report on the wrong side of the kill point: {rec:?}"
        );
    }
    assert_eq!(r.degraded_count(), 2);
    assert_eq!(r.obs.counter("testbed_reports_degraded_total"), 2);
}

#[test]
fn blackhole_degrades_exactly_the_targeted_leg() {
    let mut cfg = base_config();
    // The (pair 0, relay 0) probe leg forwards nothing; the relay is up,
    // so the client measures the direct fallback instead.
    cfg.fault = FaultPlan {
        seed: 5,
        blackhole: Some((0, 0)),
        ..FaultPlan::none()
    };
    let r = run(&cfg);

    assert_eq!(r.reports.len(), PLANNED, "{:?}", r.failures);
    assert!(r.failures.is_empty(), "{:?}", r.failures);
    for rec in &r.reports {
        let expect_degraded = rec.callee == "client-1" && rec.relay == 0;
        assert_eq!(
            rec.degraded, expect_degraded,
            "degradation must hit exactly the blackholed leg: {rec:?}"
        );
        if rec.degraded {
            assert!(
                rec.metrics.loss_pct < 100.0,
                "direct fallback measured nothing: {rec:?}"
            );
        }
    }
    assert_eq!(r.degraded_count(), 2, "one blackholed call per round");
    assert_eq!(r.obs.counter("testbed_reports_degraded_total"), 2);
}

#[test]
fn partition_fails_exactly_the_pairs_naming_the_absent_client() {
    let mut cfg = base_config();
    // client-2 never starts: the (client-0 → client-2) pair must fail with
    // a typed `unregistered` cause; the other pair is untouched.
    cfg.fault = FaultPlan {
        seed: 5,
        partition_client: Some(2),
        ..FaultPlan::none()
    };
    let r = run(&cfg);

    assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
    let f = &r.failures[0];
    assert_eq!(f.cause.kind(), "unregistered");
    assert_eq!(
        (f.caller.as_str(), f.callee.as_str()),
        ("client-0", "client-2")
    );
    assert_eq!(f.relay, None, "the whole pair fails, not individual calls");

    // The healthy pair still produces its full schedule, clean.
    assert_eq!(r.reports.len(), 2 /* relays */ * 2 /* rounds */);
    assert!(r.reports.iter().all(|rec| rec.callee == "client-1"));
    assert_eq!(r.degraded_count(), 0);

    assert_eq!(r.obs.counter("testbed_clients_registered_total"), 2);
    assert_eq!(r.obs.counter("testbed_failures_unregistered_total"), 1);
}
