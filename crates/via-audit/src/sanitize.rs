//! Source sanitization: blanks comments and string literals while
//! preserving line structure, so downstream lints match only real code.
//!
//! A full parse is unnecessary (and `syn` is unavailable offline); the lints
//! operate on substring patterns, so it suffices to remove the two places
//! where patterns could falsely match — comments and string contents — and
//! to keep every newline so findings carry correct line numbers.
//!
//! Suppression directives are collected in the same pass: a comment of the
//! form `// via-audit: allow(lint-a, lint-b)` disables those lints on its
//! own line and on the line directly below it.

use std::collections::{HashMap, HashSet};

/// Sanitized file: code with comments/strings blanked, plus suppressions.
pub struct Sanitized {
    /// One entry per source line, 0-indexed (line 1 is `lines[0]`).
    pub lines: Vec<String>,
    /// Line number (1-indexed) → lint names allowed on that line.
    pub allows: HashMap<usize, HashSet<String>>,
}

impl Sanitized {
    /// True if `lint` is suppressed at `line` (1-indexed): a directive on
    /// the same line or the line directly above.
    pub fn is_allowed(&self, line: usize, lint: &str) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|set| set.contains(lint) || set.contains("all"))
        })
    }
}

/// Extracts `via-audit: allow(a, b)` directives from one comment's text.
fn parse_allows(comment: &str, line: usize, allows: &mut HashMap<usize, HashSet<String>>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("via-audit: allow(") {
        let after = &rest[pos + "via-audit: allow(".len()..];
        let Some(close) = after.find(')') else {
            return;
        };
        for name in after[..close].split(',') {
            let name = name.trim();
            if !name.is_empty() {
                allows.entry(line).or_default().insert(name.to_string());
            }
        }
        rest = &after[close..];
    }
}

/// Blanks comments and string/char literal contents, preserving newlines and
/// column positions (each removed char becomes a space). Collects
/// suppression directives from comments as it goes.
pub fn sanitize(src: &str) -> Sanitized {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(src.len());
    let mut allows: HashMap<usize, HashSet<String>> = HashMap::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes a blanked char, keeping newlines so line numbers survive.
    let blank = |c: char, out: &mut String, line: &mut usize| {
        if c == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
    };

    while i < n {
        let c = chars[i];

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            parse_allows(&text, line, &mut allows);
            continue;
        }

        // Block comment (nested per Rust rules).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            let mut text = String::new();
            while i < n {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank('/', &mut out, &mut line);
                    blank('*', &mut out, &mut line);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank('*', &mut out, &mut line);
                    blank('/', &mut out, &mut line);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        parse_allows(&text, line, &mut allows);
                        text.clear();
                    } else {
                        text.push(chars[i]);
                    }
                    blank(chars[i], &mut out, &mut line);
                    i += 1;
                }
            }
            parse_allows(&text, line, &mut allows);
            continue;
        }

        // Raw (and raw byte) string literal: r"..." / r#"..."# / br#"..."#.
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if !prev_is_ident && (c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'))) {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Emit the prefix verbatim, blank the contents.
                for &p in &chars[i..=j] {
                    out.push(p);
                }
                i = j + 1;
                'raw: while i < n {
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for &p in &chars[i..=i + hashes] {
                                out.push(p);
                            }
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    blank(chars[i], &mut out, &mut line);
                    i += 1;
                }
                continue;
            }
        }

        // Ordinary (and byte) string literal.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_is_ident) {
            if c == 'b' {
                out.push('b');
                i += 1;
            }
            out.push('"');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    blank(chars[i], &mut out, &mut line);
                    blank(chars[i + 1], &mut out, &mut line);
                    i += 2;
                } else if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    blank(chars[i], &mut out, &mut line);
                    i += 1;
                }
            }
            continue;
        }

        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no closing
        // quote right after one char) is a lifetime.
        if c == '\'' {
            let is_escape = chars.get(i + 1) == Some(&'\\');
            let is_short = chars.get(i + 2) == Some(&'\'');
            if is_escape || is_short {
                out.push('\'');
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        blank(chars[i], &mut out, &mut line);
                        blank(chars[i + 1], &mut out, &mut line);
                        i += 2;
                    } else if chars[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        blank(chars[i], &mut out, &mut line);
                        i += 1;
                    }
                }
                continue;
            }
        }

        if c == '\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
    }

    Sanitized {
        lines: out.lines().map(str::to_string).collect(),
        allows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_lines_preserved() {
        let src = "let a = 1; // thread_rng here\n/* block\nthread_rng */ let b = 2;\n";
        let s = sanitize(src);
        assert_eq!(s.lines.len(), 3);
        assert!(!s.lines.iter().any(|l| l.contains("thread_rng")));
        assert!(s.lines[0].contains("let a = 1;"));
        assert!(s.lines[2].contains("let b = 2;"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let src = "let s = \"thread_rng\"; call();\n";
        let s = sanitize(src);
        assert!(!s.lines[0].contains("thread_rng"));
        assert!(s.lines[0].contains("call();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"multi\nline thread_rng\"#; next();\n";
        let s = sanitize(src);
        assert_eq!(s.lines.len(), 2);
        assert!(!s.lines[1].contains("thread_rng"));
        assert!(s.lines[1].contains("next();"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = "let s = \"a\\\"b thread_rng\"; tail();\n";
        let s = sanitize(src);
        assert!(!s.lines[0].contains("thread_rng"));
        assert!(s.lines[0].contains("tail();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x'; let nl = '\\n';\n";
        let s = sanitize(src);
        assert!(s.lines[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!s.lines[1].contains('x'), "char literal contents blanked");
    }

    #[test]
    fn allow_directives_are_collected() {
        let src = "// via-audit: allow(nondeterminism, panic)\nmap.iter();\nx.unwrap(); // via-audit: allow(panic)\n";
        let s = sanitize(src);
        assert!(s.is_allowed(2, "nondeterminism"));
        assert!(s.is_allowed(2, "panic"));
        assert!(!s.is_allowed(2, "nan-cmp"));
        assert!(s.is_allowed(3, "panic"));
        assert!(!s.is_allowed(4, "nondeterminism"));
    }
}
