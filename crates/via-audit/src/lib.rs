//! Workspace static analysis for the VIA reproduction.
//!
//! The replication's headline property is *determinism*: every figure must
//! regenerate byte-identically from a seed. This tool enforces the coding
//! rules that protect it — plus panic-safety and NaN-safety — by walking
//! `crates/*/src` and `crates/*/benches` and running a registry of lint
//! passes over each file:
//!
//! | lint | scope | severity |
//! |------|-------|----------|
//! | `nondeterminism` | simulation crates, all code | deny |
//! | `panic` | simulation + socket crates, non-test lib code | deny (`unwrap`/`expect`), warn (indexing) |
//! | `nan-cmp` | every crate | deny |
//! | `lock-contention` | hot-path crates (`via-netsim`, `via-core`) | deny |
//! | `socket-wait` | socket crates (`via-testbed`), non-test lib code | deny |
//! | `raw-timing` | hot-path crates (`via-netsim`, `via-core`) | deny |
//! | `map-iteration-order` | simulation crates, all code | deny |
//! | `rng-discipline` | simulation crates, non-test code | deny |
//! | `float-accumulation` | simulation crates, non-test code | deny |
//! | `cast-truncation` | hot-path + socket crates, non-test lib code | deny |
//! | `stale-suppression` | everywhere a directive appears | deny |
//!
//! Each file is lexed once ([`token`]) into a spanned token stream, comment
//! list, and code-only rendered lines; a per-file symbol table ([`symbols`])
//! classifies hash-container / RNG / `f64` bindings; then every applicable
//! pass in the [`passes::REGISTRY`] runs. The first six lints are
//! line-based ([`lints`]); the last four are token-aware ([`semantic`]).
//!
//! Suppression is applied centrally *after* the passes ([`suppress`]):
//! `// via-audit: allow(lint-name)` with a justification silences findings
//! on its own or the next line, and every directive is audited — an allow
//! that suppresses nothing, names an unknown lint, or carries no
//! justification is itself a deny-level `stale-suppression` finding, so the
//! exception surface can only shrink.
//!
//! The `compat/` stand-in crates are not audited: they mirror external
//! crates' APIs (including wall-clock use in the criterion stand-in) and are
//! exercised by their own unit tests instead.

pub mod lints;
pub mod passes;
pub mod regions;
pub mod report;
pub mod semantic;
pub mod suppress;
pub mod symbols;
pub mod token;

use std::path::{Path, PathBuf};

use lints::{FileKind, Finding};

/// Crates whose code must stay deterministic and panic-free: everything the
/// seeded simulation pipeline runs through.
pub const SIM_CRATES: &[&str] = &[
    "via-core",
    "via-netsim",
    "via-trace",
    "via-media",
    "via-quality",
    "via-model",
    // The observability layer's deterministic core is merged into replay
    // results, so it is held to the same rules; its one sanctioned
    // wall-clock site (the Stopwatch facade) carries an allow directive.
    "via-obs",
];

/// Crates exempt from the simulation lints, with the reason:
/// * `via-experiments` / `via-bench` — fail-fast experiment drivers; a
///   panic is the correct response to a broken environment.
/// * `via-audit` — this tool.
///
/// `via-testbed` is *not* exempt: it escapes the determinism lint (real
/// sockets and wall-clock timers are its job) via [`SOCKET_CRATES`], but its
/// library code is held to the panic lint and the `socket-wait` lint — a
/// hung or panicking harness is exactly the failure mode this PR class
/// exists to prevent.
pub const EXEMPT_CRATES: &[&str] = &["via-experiments", "via-bench", "via-audit"];

/// Crates that drive real sockets: exempt from the determinism lint, but
/// subject to the panic lint and the unbounded-socket-wait lint in non-test
/// library code.
pub const SOCKET_CRATES: &[&str] = &["via-testbed", "via-server"];

/// Crates on the parallel-replay hot path, where a whole-map `Mutex` is a
/// scaling regression (`lock-contention` lint) and narrowing `as` casts are
/// denied (`cast-truncation` lint): the world model every shard reads and
/// the decision loop itself.
pub const HOT_PATH_CRATES: &[&str] = &["via-netsim", "via-core"];

/// Individual files held to the hot-path lints inside crates that are
/// otherwise not hot-path as a whole. via-trace is mostly offline
/// generation/analysis code, but the record sources and window framer
/// (`stream.rs`) and the binary trace codec (`binfmt.rs`) run inside the
/// streamed replay's prefetch loop — per-record cost there multiplies by
/// hundreds of millions of calls, the same economics as via-core's shard
/// loop. Likewise via-media is mostly offline packet simulation, but the
/// receiver-side multipath merge model (`merge.rs`) runs once per
/// multipath call inside the shard loop. Paths are relative to the crate
/// root.
pub const HOT_PATH_FILES: &[(&str, &str)] = &[
    ("via-trace", "src/stream.rs"),
    ("via-trace", "src/binfmt.rs"),
    ("via-media", "src/merge.rs"),
];

/// Audits one file's source text: lex, analyze, run every applicable
/// registered pass, then apply (and audit) suppressions.
pub fn audit_source(display_path: &str, src: &str, kind: FileKind) -> Vec<Finding> {
    let lexed = token::lex(src);
    let symbols = symbols::collect(&lexed.tokens);
    let test_mask = regions::test_regions(&lexed.lines);
    let directives = suppress::collect(&lexed.comments);
    let ctx = passes::FileCtx {
        file: display_path,
        kind,
        tokens: &lexed.tokens,
        lines: &lexed.lines,
        symbols: &symbols,
        test_mask: &test_mask,
        directives: &directives,
    };
    let out = passes::run_passes(&ctx);
    let known = passes::known_lints();
    let mut findings = suppress::apply(
        display_path,
        out.findings,
        &directives,
        &known,
        &out.marker_uses,
    );
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

/// Collects `.rs` files under `dir` recursively, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// True when the path is a binary / bench / example target rather than
/// shipping library code.
fn is_non_lib(path: &Path) -> bool {
    let in_dir = |d: &str| path.iter().any(|c| c == std::ffi::OsStr::new(d));
    in_dir("bin")
        || in_dir("benches")
        || in_dir("examples")
        || in_dir("tests")
        || path.file_name().is_some_and(|f| f == "main.rs")
}

/// Audits every crate under `<root>/crates`, returning all findings sorted
/// by file and line.
///
/// # Errors
/// Returns an I/O error when the workspace layout cannot be read.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    for crate_dir in crate_dirs {
        let Some(crate_name) = crate_dir.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let sim_crate = SIM_CRATES.contains(&crate_name);
        let hot_path = HOT_PATH_CRATES.contains(&crate_name);
        let socket_crate = SOCKET_CRATES.contains(&crate_name);
        let mut files = Vec::new();
        // `src` plus bench targets: benches are exempt from the lib-only
        // lints (unwrap, panic) via `is_non_lib`, but nondeterminism sources
        // in sim-crate bench code still need the audit's eye.
        for sub in ["src", "benches"] {
            let dir = crate_dir.join(sub);
            if dir.is_dir() {
                rust_files(&dir, &mut files)?;
            }
        }
        if files.is_empty() {
            continue;
        }
        for file in files {
            let src = std::fs::read_to_string(&file)?;
            let display = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            let rel = file.strip_prefix(&crate_dir).unwrap_or(&file);
            let hot_file = HOT_PATH_FILES
                .iter()
                .any(|&(c, p)| c == crate_name && rel == Path::new(p));
            let kind = FileKind {
                sim_crate,
                hot_path: hot_path || hot_file,
                socket_crate,
                lib_code: !is_non_lib(&file),
            };
            findings.extend(audit_source(&display, &src, kind));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lints::Severity;

    #[test]
    fn sim_and_exempt_lists_are_disjoint() {
        for c in SIM_CRATES {
            assert!(!EXEMPT_CRATES.contains(c));
            assert!(
                !SOCKET_CRATES.contains(c),
                "socket crates are not sim crates"
            );
        }
        for c in HOT_PATH_CRATES {
            assert!(SIM_CRATES.contains(c), "hot-path crates are sim crates");
        }
        for (c, p) in HOT_PATH_FILES {
            assert!(SIM_CRATES.contains(c), "hot-path files live in sim crates");
            assert!(
                !HOT_PATH_CRATES.contains(c),
                "a file-level hot-path entry in an already-hot crate is redundant"
            );
            assert!(p.ends_with(".rs"), "hot-path file entries are .rs paths");
        }
        for c in SOCKET_CRATES {
            assert!(
                !EXEMPT_CRATES.contains(c),
                "socket crates are audited, not exempt"
            );
        }
    }

    #[test]
    fn audit_source_combines_all_lints() {
        let src = "struct C { m: Mutex<HashMap<u32, u32>> }\nfn f(x: Option<f64>, ys: &mut [f64]) {\n    let mut rng = rand::thread_rng();\n    let t = Instant::now();\n    ys.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    x.unwrap();\n}\n";
        let kind = FileKind {
            sim_crate: true,
            lib_code: true,
            hot_path: true,
            socket_crate: false,
        };
        let f = audit_source("x.rs", src, kind);
        let denies: Vec<&str> = f
            .iter()
            .filter(|x| x.severity == Severity::Deny)
            .map(|x| x.lint)
            .collect();
        assert!(denies.contains(&lints::LINT_NONDET));
        assert!(denies.contains(&lints::LINT_NAN));
        assert!(denies.contains(&lints::LINT_PANIC));
        assert!(denies.contains(&lints::LINT_CONTENTION));
        assert!(denies.contains(&lints::LINT_TIMING));
    }

    #[test]
    fn audit_source_runs_the_semantic_passes() {
        let src = "fn f() {\n\
                   let m: HashMap<u32, u64> = HashMap::new();\n\
                   let total: u64 = m.values().sum();\n\
                   let tier = total as u8;\n\
                   }\n";
        let kind = FileKind {
            sim_crate: true,
            lib_code: true,
            hot_path: true,
            socket_crate: false,
        };
        let f = audit_source("x.rs", src, kind);
        let denies: Vec<&str> = f
            .iter()
            .filter(|x| x.severity == Severity::Deny)
            .map(|x| x.lint)
            .collect();
        assert!(denies.contains(&semantic::LINT_MAP_ORDER), "{f:?}");
        assert!(denies.contains(&semantic::LINT_CAST), "{f:?}");
    }

    #[test]
    fn stale_allow_is_a_deny_finding() {
        let src = "// the violation below was fixed long ago. via-audit: allow(panic)\nfn ok() -> u32 { 1 }\n";
        let kind = FileKind {
            sim_crate: true,
            lib_code: true,
            hot_path: false,
            socket_crate: false,
        };
        let f = audit_source("x.rs", src, kind);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, suppress::LINT_STALE);
        assert_eq!(f[0].severity, Severity::Deny);
    }

    #[test]
    fn non_sim_crates_only_get_the_nan_lint() {
        let src = "fn f(x: Option<u32>) { let mut rng = rand::thread_rng(); x.unwrap(); }\n";
        let kind = FileKind {
            sim_crate: false,
            lib_code: true,
            hot_path: false,
            socket_crate: false,
        };
        assert!(audit_source("x.rs", src, kind).is_empty());
    }

    #[test]
    fn socket_crates_get_panic_and_socket_lints_but_not_determinism() {
        let src = "fn f(l: &TcpListener, x: Option<u32>) {\n    let t = Instant::now();\n    let _ = l.accept();\n    x.unwrap();\n}\n";
        let kind = FileKind {
            sim_crate: false,
            lib_code: true,
            hot_path: false,
            socket_crate: true,
        };
        let f = audit_source("x.rs", src, kind);
        let lints_hit: Vec<&str> = f
            .iter()
            .filter(|x| x.severity == Severity::Deny)
            .map(|x| x.lint)
            .collect();
        assert!(lints_hit.contains(&lints::LINT_SOCKET), "{f:?}");
        assert!(lints_hit.contains(&lints::LINT_PANIC), "{f:?}");
        assert!(
            !lints_hit.contains(&lints::LINT_NONDET),
            "wall-clock reads are the testbed's job: {f:?}"
        );
    }

    /// Regression for the harness.rs `r as u16` bug: a narrowing cast in
    /// socket-crate lib code (session ids, relay indexes on the wire) must
    /// be denied even though the crate is not hot-path.
    #[test]
    fn socket_crates_get_the_cast_truncation_lint() {
        let src = "fn f(r: usize) -> u16 { r as u16 }\n";
        let kind = FileKind {
            sim_crate: false,
            lib_code: true,
            hot_path: false,
            socket_crate: true,
        };
        let f = audit_source("x.rs", src, kind);
        assert!(
            f.iter()
                .any(|x| x.severity == Severity::Deny && x.lint == semantic::LINT_CAST),
            "{f:?}"
        );
    }

    /// Seeded-violation harness: writes a fake workspace with one injected
    /// violation into a temp dir and checks the walker finds it — the same
    /// path the CI `cargo run -p via-audit` check exercises on the real
    /// tree.
    #[test]
    fn seeded_violation_in_fake_workspace_is_found() {
        let root = std::env::temp_dir().join("via-audit-seeded-test");
        let src_dir = root.join("crates/via-core/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("bad.rs"),
            "pub fn f() { let mut rng = rand::thread_rng(); }\n",
        )
        .unwrap();
        let findings = audit_workspace(&root).unwrap();
        assert!(
            findings
                .iter()
                .any(|f| f.severity == Severity::Deny && f.lint == lints::LINT_NONDET),
            "injected thread_rng must be caught: {findings:?}"
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
