//! The token-aware semantic lint passes.
//!
//! These four lints need token adjacency, per-file symbols, and nesting —
//! things a line-based substring scan cannot express:
//!
//! * [`pass_map_order`] (`map-iteration-order`) — iterating a
//!   `HashMap`/`HashSet` binding into an *ordered sink* (`sum`, `fold`,
//!   `collect::<Vec<_>>`, `push`, `extend`, `max_by`/`min_by`, …) lets the
//!   hash seed pick the result. Iteration into order-independent sinks
//!   (map inserts, `count`, `collect` into another map) is fine, as is
//!   collecting into a `Vec` that is sorted within the next few lines.
//! * [`pass_rng_discipline`] (`rng-discipline`) — every RNG stream must be
//!   derived through `seed::derive*`. Constant seeds and ad-hoc
//!   `seed ^ 0x…` xor-splitting silently correlate or duplicate streams;
//!   `.clone()` on an RNG duplicates its stream across whatever boundary
//!   the clone crosses.
//! * [`pass_float_accumulation`] (`float-accumulation`) — inside merge
//!   functions (name contains `merge`), `f64` `+=` folds and iterator
//!   `sum`/`fold` reductions make the result depend on merge order. The
//!   one sanctioned pairwise helper carries a
//!   `// via-audit: ordered-merge(reason)` marker (audited for staleness
//!   like any suppression).
//! * [`pass_cast_truncation`] (`cast-truncation`) — narrowing `as` casts in
//!   hot-path crates truncate silently on overflow; use `try_from` with an
//!   explicit fallback, widen the destination, or justify the bound.

use crate::lints::{Finding, Severity};
use crate::passes::{FileCtx, PassOutput};
use crate::token::{Token, TokenKind};

/// Map-iteration-order lint name.
pub const LINT_MAP_ORDER: &str = "map-iteration-order";
/// RNG-discipline lint name.
pub const LINT_RNG: &str = "rng-discipline";
/// Float-accumulation lint name.
pub const LINT_FLOAT_ACC: &str = "float-accumulation";
/// Cast-truncation lint name.
pub const LINT_CAST: &str = "cast-truncation";

/// Methods whose iteration order follows the hash seed.
const UNORDERED_ITER: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Chain methods that materialize iteration order into a result.
const ORDERED_SINKS: &[&str] = &[
    "sum",
    "product",
    "fold",
    "reduce",
    "for_each",
    "push",
    "extend",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "position",
    "find",
    "take",
    "skip",
    "last",
    "next",
    "zip",
    "enumerate",
    "chain",
];

/// Sink methods searched for inside a `for`-loop body over a hash container.
const LOOP_BODY_SINKS: &[&str] = &[
    "push",
    "extend",
    "sum",
    "fold",
    "write",
    "writeln",
    "serialize",
];

/// Container type names whose `collect()` target makes order irrelevant.
const UNORDERED_COLLECT_TARGETS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

fn finding(ctx: &FileCtx, line: usize, lint: &'static str, message: String) -> Finding {
    Finding {
        file: ctx.file.to_string(),
        line,
        lint,
        severity: Severity::Deny,
        message,
    }
}

/// Scans a method chain starting at token `start` (the receiver ident) and
/// returns the exclusive end of the expression: a `;`, `,`, or block `{` at
/// relative bracket depth 0, or a closing bracket that leaves the chain.
fn chain_end(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < tokens.len() && j - start < 256 {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                "{" if depth == 0 => return j,
                "{" => {}
                "}" if depth == 0 => return j,
                "}" => {}
                ";" | "," if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Looks backward from the chain receiver for `let [mut] <binding> … =`
/// introducing the statement, returning the binding name.
fn stmt_let_binding(tokens: &[Token], recv: usize) -> Option<String> {
    // Walk back to the statement head; the window must clear a long type
    // ascription like `let mut out: Vec<(CountryId, PnrReport)> = recv…`.
    let lo = recv.saturating_sub(24);
    for j in (lo..recv).rev() {
        if tokens[j].is_punct(";") || tokens[j].is_punct("{") || tokens[j].is_punct("}") {
            break;
        }
        if tokens[j].is_ident("let") {
            let k = j + 1;
            let k = if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
                k + 1
            } else {
                k
            };
            return tokens.get(k).map(|t| t.text.clone());
        }
    }
    None
}

/// True when the binding `name` has `.sort*` called on it within `lines`
/// source lines after line `after` — the sanctioned "sort before use"
/// escape for collecting hash iteration into a `Vec`.
fn sorted_soon(tokens: &[Token], name: &str, after: usize, lines: usize) -> bool {
    tokens.iter().enumerate().any(|(i, t)| {
        t.is_ident(name)
            && t.line > after
            && t.line <= after + lines
            && tokens.get(i + 1).is_some_and(|d| d.is_punct("."))
            && tokens
                .get(i + 2)
                .is_some_and(|m| m.kind == TokenKind::Ident && m.text.starts_with("sort"))
    })
}

/// Classifies a `collect` at token `at`: `Some(target)` when the collect
/// target type is identifiable, `None` otherwise.
fn collect_target(tokens: &[Token], at: usize, recv: usize) -> Option<String> {
    // Turbofish: collect :: < T … >.
    if tokens.get(at + 1).is_some_and(|t| t.is_punct("::"))
        && tokens.get(at + 2).is_some_and(|t| t.is_punct("<"))
    {
        return tokens
            .get(at + 3)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone());
    }
    // Let ascription: `let x : T = …` at the statement head.
    let lo = recv.saturating_sub(24);
    for j in (lo..recv).rev() {
        if tokens[j].is_punct(";") || tokens[j].is_punct("{") {
            break;
        }
        if tokens[j].is_ident("let") {
            for k in j..recv {
                if tokens[k].is_punct(":") {
                    return tokens
                        .get(k + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone());
                }
            }
            break;
        }
    }
    None
}

/// The `map-iteration-order` pass.
pub fn pass_map_order(ctx: &FileCtx, out: &mut PassOutput) {
    let tokens = ctx.tokens;
    // Closure params bound from `nested.get(..)` chains become hash
    // containers for the remainder of their statement.
    let mut bound: Vec<(String, usize)> = Vec::new(); // (name, valid-until token)

    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_hash = ctx.symbols.hash_containers.contains(&t.text)
            || bound.iter().any(|(n, until)| n == &t.text && i < *until);

        // Nested-value closures: `windows.get(..).map_or(z, |m| …)` makes
        // `m` a hash container inside the statement.
        if ctx.symbols.nested_hash.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|d| d.is_punct("."))
            && tokens.get(i + 2).is_some_and(|m| m.is_ident("get"))
        {
            let end = chain_end(tokens, i);
            let mut j = i + 3;
            while j + 2 < tokens.len() && j < end {
                if tokens[j].is_punct("|")
                    && tokens[j + 1].kind == TokenKind::Ident
                    && tokens[j + 2].is_punct("|")
                {
                    bound.push((tokens[j + 1].text.clone(), end));
                    break;
                }
                j += 1;
            }
        }

        if !is_hash {
            continue;
        }

        // Chain form: `h.iter()…sink` within one expression.
        if tokens.get(i + 1).is_some_and(|d| d.is_punct("."))
            && tokens
                .get(i + 2)
                .is_some_and(|m| UNORDERED_ITER.contains(&m.text.as_str()))
            && tokens.get(i + 3).is_some_and(|p| p.is_punct("("))
        {
            let end = chain_end(tokens, i);
            let mut hit: Option<(&str, usize)> = None;
            for j in i + 4..end {
                if tokens[j].kind != TokenKind::Ident || !tokens[j - 1].is_punct(".") {
                    continue;
                }
                let m = tokens[j].text.as_str();
                if m == "collect" {
                    let target = collect_target(tokens, j, i);
                    match target.as_deref() {
                        Some(ty) if UNORDERED_COLLECT_TARGETS.contains(&ty) => {}
                        _ => {
                            // Collecting into an ordered container: fine if
                            // the binding is sorted within the next 4 lines.
                            let binding = stmt_let_binding(tokens, i);
                            let sorted = binding
                                .as_deref()
                                .is_some_and(|b| sorted_soon(tokens, b, tokens[j].line, 4));
                            if !sorted {
                                hit = Some(("collect", tokens[j].line));
                            }
                        }
                    }
                    break;
                }
                if ORDERED_SINKS.contains(&m) {
                    hit = Some((tokens[j].text.as_str(), tokens[j].line));
                    break;
                }
                if m.starts_with("sort") {
                    break; // explicit sort in-chain: order is re-established
                }
            }
            if let Some((sink, _)) = hit {
                out.findings.push(finding(
                    ctx,
                    t.line,
                    LINT_MAP_ORDER,
                    format!(
                        "hash-container `{}` iterated into order-sensitive `{sink}`; \
                         sort the items first, use a BTreeMap, or collect into an \
                         order-independent container",
                        t.text
                    ),
                ));
            }
        }

        // For-loop form: `for pat in [&mut|&] h [{.iter()…}] {` with an
        // order-sensitive sink inside the loop body.
        if is_for_loop_over(tokens, i) {
            if let Some(open) = next_block_open(tokens, i) {
                let close = matching_close(tokens, open);
                for j in open + 1..close {
                    let sink = if tokens[j].is_punct("+=") {
                        Some("+=")
                    } else if tokens[j].kind == TokenKind::Ident
                        && tokens[j - 1].is_punct(".")
                        && LOOP_BODY_SINKS.contains(&tokens[j].text.as_str())
                    {
                        Some(tokens[j].text.as_str())
                    } else {
                        None
                    };
                    if let Some(sink) = sink {
                        out.findings.push(finding(
                            ctx,
                            t.line,
                            LINT_MAP_ORDER,
                            format!(
                                "loop over hash-container `{}` feeds order-sensitive \
                                 `{sink}` at line {}; sort the entries before the loop \
                                 or accumulate order-independently",
                                t.text, tokens[j].line
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
}

/// True when the ident at `i` is the sequence target of a `for … in` header
/// (allowing `&`, `&mut`, and a field path like `other.windows` where `i`
/// is the final segment).
fn is_for_loop_over(tokens: &[Token], i: usize) -> bool {
    // Walk back over `ident .`-path segments and `& / mut` to find `in`.
    let mut j = i;
    while j >= 2 && tokens[j - 1].is_punct(".") && tokens[j - 2].kind == TokenKind::Ident {
        j -= 2;
    }
    while j >= 1 && (tokens[j - 1].is_punct("&") || tokens[j - 1].is_ident("mut")) {
        j -= 1;
    }
    if !(j >= 1 && tokens[j - 1].is_ident("in")) {
        return false;
    }
    // The loop body must open right after the target (or after a plain
    // `.iter()`-style adapter chain that preserves hash order).
    let mut k = i + 1;
    while k + 2 < tokens.len()
        && tokens[k].is_punct(".")
        && tokens[k + 1].kind == TokenKind::Ident
        && UNORDERED_ITER.contains(&tokens[k + 1].text.as_str())
        && tokens[k + 2].is_punct("(")
    {
        k += 4; // skip `.iter()`
    }
    tokens.get(k).is_some_and(|t| t.is_punct("{"))
}

/// Index of the next `{` at or after `i`, within the same expression.
fn next_block_open(tokens: &[Token], i: usize) -> Option<usize> {
    (i..tokens.len().min(i + 16)).find(|&j| tokens[j].is_punct("{"))
}

/// Index of the `}` matching the `{` at `open` (token depths pair braces).
fn matching_close(tokens: &[Token], open: usize) -> usize {
    let d = tokens[open].depth;
    (open + 1..tokens.len())
        .find(|&j| tokens[j].is_punct("}") && tokens[j].depth == d)
        .unwrap_or(tokens.len())
}

/// The `rng-discipline` pass (non-test code only: tests pin fixed seeds by
/// design).
pub fn pass_rng_discipline(ctx: &FileCtx, out: &mut PassOutput) {
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if in_test(ctx, t.line) {
            continue;
        }

        // Construction sites: seed_from_u64(<args>).
        if t.is_ident("seed_from_u64") && tokens.get(i + 1).is_some_and(|p| p.is_punct("(")) {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut has_derive = false;
            let mut has_int = false;
            let mut has_xor = false;
            let mut has_other = false;
            while j < tokens.len() {
                let u = &tokens[j];
                if u.is_punct("(") {
                    depth += 1;
                } else if u.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if u.kind == TokenKind::Ident {
                    if u.text.starts_with("derive") {
                        has_derive = true;
                    } else if u.text != "seed" && u.text != "u64" && u.text != "from" {
                        has_other = true;
                    }
                } else if u.kind == TokenKind::Int {
                    has_int = true;
                } else if u.is_punct("^") {
                    has_xor = true;
                }
                j += 1;
            }
            if !has_derive {
                if has_int && !has_other && !has_xor {
                    out.findings.push(finding(
                        ctx,
                        t.line,
                        LINT_RNG,
                        "RNG seeded from a constant: every run and call site shares \
                         one stream; derive a child seed with `seed::derive*`"
                            .to_string(),
                    ));
                } else if has_xor && has_int {
                    out.findings.push(finding(
                        ctx,
                        t.line,
                        LINT_RNG,
                        "ad-hoc `seed ^ constant` stream splitting; use \
                         `seed::derive(seed, \"label\")` so streams stay independent \
                         under any draw-count change"
                            .to_string(),
                    ));
                }
            }
        }

        // Duplication sites: `rng.clone()`.
        if t.kind == TokenKind::Ident
            && ctx.symbols.rngs.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|p| p.is_punct("."))
            && tokens.get(i + 2).is_some_and(|m| m.is_ident("clone"))
            && tokens.get(i + 3).is_some_and(|p| p.is_punct("("))
        {
            out.findings.push(finding(
                ctx,
                t.line,
                LINT_RNG,
                format!(
                    "`{}.clone()` duplicates an RNG stream; two consumers of one \
                     stream correlate, and a clone crossing a shard/worker boundary \
                     breaks worker-count invariance — derive a child stream with \
                     `seed::derive*` instead",
                    t.text
                ),
            ));
        }
    }
}

/// True when `line` (1-indexed) is inside a test region.
fn in_test(ctx: &FileCtx, line: usize) -> bool {
    ctx.test_mask
        .get(line.wrapping_sub(1))
        .copied()
        .unwrap_or(false)
}

/// The `float-accumulation` pass (non-test code only).
pub fn pass_float_accumulation(ctx: &FileCtx, out: &mut PassOutput) {
    let tokens = ctx.tokens;
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_ident("fn")
            && tokens[i + 1].kind == TokenKind::Ident
            && tokens[i + 1].text.contains("merge"))
        {
            i += 1;
            continue;
        }
        let fn_line = tokens[i].line;
        let Some(open) = (i..tokens.len()).find(|&j| tokens[j].is_punct("{")) else {
            break;
        };
        let close = matching_close(tokens, open);
        // Marker on or within three lines above the `fn` shields the body.
        let marker = ctx
            .directives
            .markers
            .iter()
            .find(|m| m.line <= fn_line && m.line + 3 >= fn_line);

        let mut shielded = false;
        for j in open + 1..close {
            let hit = if tokens[j].is_punct("+=") {
                float_assign_target(ctx, tokens, j)
            } else if (tokens[j].is_ident("sum") || tokens[j].is_ident("fold"))
                && j >= 1
                && tokens[j - 1].is_punct(".")
            {
                Some(format!("`.{}()` reduction", tokens[j].text))
            } else {
                None
            };
            let Some(what) = hit else { continue };
            if in_test(ctx, tokens[j].line) {
                continue;
            }
            if let Some(m) = marker {
                if !shielded {
                    out.marker_uses.push(m.line);
                    shielded = true;
                }
                continue;
            }
            out.findings.push(finding(
                ctx,
                tokens[j].line,
                LINT_FLOAT_ACC,
                format!(
                    "{what} in merge path `{}`: float accumulation order changes the \
                     result across merge trees; use the sanctioned pairwise helper \
                     (marked `via-audit: ordered-merge(..)`) or accumulate in u64",
                    tokens[i + 1].text
                ),
            ));
        }
        i = close.max(i + 1);
    }
}

/// For a `+=` at token `at`, describes the assignment when either side is
/// provably `f64`: the LHS ident is a known float, or the RHS contains a
/// float literal or known float ident.
fn float_assign_target(ctx: &FileCtx, tokens: &[Token], at: usize) -> Option<String> {
    if at >= 1
        && tokens[at - 1].kind == TokenKind::Ident
        && ctx.symbols.floats.contains(&tokens[at - 1].text)
    {
        return Some(format!("`{} +=`", tokens[at - 1].text));
    }
    let mut j = at + 1;
    while j < tokens.len() && !tokens[j].is_punct(";") && j - at < 32 {
        let u = &tokens[j];
        if u.kind == TokenKind::Float {
            return Some("float-literal `+=`".to_string());
        }
        if u.kind == TokenKind::Ident && ctx.symbols.floats.contains(&u.text) {
            return Some(format!("`+= {}`", u.text));
        }
        j += 1;
    }
    None
}

/// Integer/float types an `as` cast can silently truncate into.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// The `cast-truncation` pass (hot-path and socket crates, non-test code).
pub fn pass_cast_truncation(ctx: &FileCtx, out: &mut PassOutput) {
    let tokens = ctx.tokens;
    for i in 0..tokens.len().saturating_sub(1) {
        if !tokens[i].is_ident("as") {
            continue;
        }
        let ty = &tokens[i + 1];
        if ty.kind != TokenKind::Ident || !NARROW_TARGETS.contains(&ty.text.as_str()) {
            continue;
        }
        if in_test(ctx, tokens[i].line) {
            continue;
        }
        out.findings.push(finding(
            ctx,
            tokens[i].line,
            LINT_CAST,
            format!(
                "narrowing `as {}` cast truncates silently on overflow; use \
                 `{}::try_from` with an explicit fallback, widen the destination, \
                 or justify the bound with an allow",
                ty.text, ty.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::FileKind;
    use crate::passes::file_ctx_for_test;

    const SIM: FileKind = FileKind {
        sim_crate: true,
        lib_code: true,
        hot_path: true,
        socket_crate: false,
    };

    fn run(src: &str, pass: fn(&FileCtx, &mut PassOutput)) -> Vec<Finding> {
        let mut out = PassOutput::default();
        file_ctx_for_test(src, SIM, |ctx| pass(ctx, &mut out));
        out.findings
    }

    #[test]
    fn map_sum_is_denied() {
        let src = "let m: HashMap<u32, f64> = HashMap::new();\nlet t: f64 = m.values().sum();\n";
        let f = run(src, pass_map_order);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LINT_MAP_ORDER);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn map_collect_to_vec_without_sort_is_denied() {
        let src = "let m = HashMap::new();\nlet v: Vec<u32> = m.keys().collect();\nuse_it(v);\n";
        let f = run(src, pass_map_order);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn map_collect_then_sort_is_clean() {
        let src = "let m = HashMap::new();\nlet mut v: Vec<u32> = m.keys().collect();\nv.sort_unstable();\n";
        assert!(run(src, pass_map_order).is_empty());
    }

    #[test]
    fn map_collect_into_map_is_clean() {
        let src = "let m = HashMap::new();\nlet v: HashMap<u32, u32> = m.iter().collect();\nlet w = m.keys().collect::<HashSet<_>>();\n";
        assert!(run(src, pass_map_order).is_empty());
    }

    #[test]
    fn map_get_and_count_are_clean() {
        let src =
            "let m = HashMap::new();\nm.get(&1);\nlet n = m.iter().count();\nlet l = m.len();\n";
        assert!(run(src, pass_map_order).is_empty());
    }

    #[test]
    fn for_loop_with_push_is_denied_but_map_insert_is_clean() {
        let pushy = "let m = HashMap::new();\nlet mut v = Vec::new();\nfor (k, x) in m {\n    v.push(k);\n}\n";
        let f = run(pushy, pass_map_order);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        let inserty = "let m = HashMap::new();\nlet mut d = HashMap::new();\nfor (k, x) in m {\n    d.entry(k).or_default();\n}\n";
        assert!(run(inserty, pass_map_order).is_empty());
    }

    #[test]
    fn for_loop_over_ref_and_iter_adapters() {
        let src = "let m = HashMap::new();\nlet mut acc = 0.0;\nfor v in m.values() {\n    acc += v;\n}\n";
        let f = run(src, pass_map_order);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn nested_closure_param_is_tracked() {
        let src = "struct S { windows: HashMap<u64, HashMap<u32, f64>> }\n\
                   fn f(s: &S, w: u64) -> f64 {\n\
                   s.windows.get(&w).map_or(0.0, |m| m.values().sum())\n}\n";
        let f = run(src, pass_map_order);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn vec_iteration_is_clean() {
        let src = "let xs: Vec<f64> = Vec::new();\nlet t: f64 = xs.iter().sum();\nfor x in &xs { v.push(x); }\n";
        assert!(run(src, pass_map_order).is_empty());
    }

    #[test]
    fn constant_seed_is_denied_outside_tests() {
        let src = "fn f() { let mut rng = StdRng::seed_from_u64(42); }\n";
        let f = run(src, pass_rng_discipline);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LINT_RNG);
        let test = "#[cfg(test)]\nmod tests {\n    fn t() { let mut rng = StdRng::seed_from_u64(42); }\n}\n";
        assert!(run(test, pass_rng_discipline).is_empty());
    }

    #[test]
    fn xor_splitting_is_denied_but_derive_is_clean() {
        let f = run(
            "fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed ^ 0x55); }\n",
            pass_rng_discipline,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        let clean = "fn f(seed: u64) {\n\
                     let a = StdRng::seed_from_u64(seed::derive(seed, \"x\"));\n\
                     let b = StdRng::seed_from_u64(seed::derive_indexed(seed, \"y\", 7));\n\
                     let c = StdRng::seed_from_u64(seed);\n}\n";
        assert!(run(clean, pass_rng_discipline).is_empty());
    }

    #[test]
    fn rng_clone_is_denied() {
        let src = "fn f(rng: &mut StdRng) { let dup = rng.clone(); }\n";
        let f = run(src, pass_rng_discipline);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("duplicates"));
        let other = "fn f(cfg: &Config) { let c = cfg.clone(); }\n";
        assert!(run(other, pass_rng_discipline).is_empty());
    }

    #[test]
    fn float_accumulation_in_merge_is_denied() {
        let src = "struct S { mean: f64, n: u64 }\n\
                   impl S {\n\
                   fn merge(&mut self, o: &S) {\n\
                   self.mean += o.mean;\n\
                   self.n += o.n;\n}\n}\n";
        let f = run(src, pass_float_accumulation);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].lint, LINT_FLOAT_ACC);
    }

    #[test]
    fn u64_accumulation_in_merge_is_clean() {
        let src = "struct S { count: u64 }\nimpl S {\nfn merge(&mut self, o: &S) { self.count += o.count; }\n}\n";
        assert!(run(src, pass_float_accumulation).is_empty());
    }

    #[test]
    fn sum_outside_merge_fn_is_clean() {
        let src = "fn total(xs: &[f64]) -> f64 { xs.iter().sum() }\n";
        assert!(run(src, pass_float_accumulation).is_empty());
    }

    #[test]
    fn ordered_merge_marker_shields_and_is_tracked() {
        let src = "struct S { mean: f64 }\n\
                   impl S {\n\
                   // via-audit: ordered-merge(pairwise Chan merge, shard-index order)\n\
                   fn merge(&mut self, o: &S) { self.mean += o.mean; }\n}\n";
        let mut out = PassOutput::default();
        file_ctx_for_test(src, SIM, |ctx| pass_float_accumulation(ctx, &mut out));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.marker_uses, vec![3]);
    }

    #[test]
    fn narrowing_casts_are_denied_outside_tests() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\nfn g(x: u64) -> u64 { x as u64 }\n";
        let f = run(src, pass_cast_truncation);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LINT_CAST);
        assert_eq!(f[0].line, 1);
        let test = "#[cfg(test)]\nmod tests {\n    fn t(n: usize) -> u32 { n as u32 }\n}\n";
        assert!(run(test, pass_cast_truncation).is_empty());
    }
}
