//! Suppression directives and the stale-suppression audit.
//!
//! A lint finding can be silenced at its site with a comment directive:
//!
//! ```text
//! // Shard-local scratch; merged in shard-index order at the barrier.
//! // via-audit: allow(map-iteration-order)
//! ```
//!
//! The directive suppresses the named lints on its own line and the line
//! directly below. Two rules make the suppression surface auditable, and
//! both are enforced as *deny* findings so the surface can only shrink:
//!
//! 1. **No stale allows.** Every `allow(lint)` must suppress at least one
//!    finding the passes actually produced. An allow that matches nothing —
//!    because the code was fixed, the lint renamed, or the name typo'd — is
//!    reported as a [`LINT_STALE`] finding at the directive's line.
//! 2. **No bare allows.** Every directive must carry a justification: prose
//!    in the same comment, or in the contiguous `//` block directly above
//!    it. A directive with no explanation is reported as a deny finding
//!    even when it suppresses something.
//!
//! `LINT_STALE` findings themselves cannot be suppressed.
//!
//! The module also owns the `ordered-merge` **marker**:
//!
//! ```text
//! // via-audit: ordered-merge(pairwise Chan merge, applied in shard-index order)
//! ```
//!
//! placed on or directly above a `fn` whose name contains `merge`, it marks
//! the sanctioned ordered-merge helper the float-accumulation lint demands.
//! Markers are audited like allows: an unused marker (shielding no would-be
//! finding) and an empty marker reason are both deny findings.

use crate::lints::{Finding, Severity};
use crate::token::Comment;

/// Lint name for the stale-suppression audit's own findings.
pub const LINT_STALE: &str = "stale-suppression";

/// One `allow(..)` directive site.
#[derive(Debug)]
pub struct AllowSite {
    /// 1-indexed line of the directive.
    pub line: usize,
    /// Lint names listed in the directive, in source order.
    pub lints: Vec<String>,
    /// Justification prose (same comment + contiguous block above),
    /// directives removed.
    pub justification: String,
}

/// One `ordered-merge(..)` marker site.
#[derive(Debug)]
pub struct MarkerSite {
    /// 1-indexed line of the marker.
    pub line: usize,
    /// The reason text inside the parentheses.
    pub reason: String,
}

/// All directives parsed from one file's comments.
#[derive(Debug, Default)]
pub struct Directives {
    /// Allow sites, in source order.
    pub allows: Vec<AllowSite>,
    /// Ordered-merge markers, in source order.
    pub markers: Vec<MarkerSite>,
}

/// Extracts the parenthesized argument of `directive(` in `text`, returning
/// (args, remaining text with the directive call removed).
fn split_directive(text: &str, directive: &str) -> Option<(String, String)> {
    let key = format!("via-audit: {directive}(");
    let pos = text.find(&key)?;
    let after = &text[pos + key.len()..];
    let close = after.find(')')?;
    let args = after[..close].to_string();
    let mut rest = String::with_capacity(text.len());
    rest.push_str(&text[..pos]);
    rest.push_str(&after[close + 1..]);
    Some((args, rest))
}

/// Parses all directives out of a file's comments, attaching justifications.
pub fn collect(comments: &[Comment]) -> Directives {
    let mut d = Directives::default();
    for (ci, c) in comments.iter().enumerate() {
        // Doc comments never carry directives: `via-audit:` text in
        // documentation is an example, not an exception.
        if c.doc {
            continue;
        }
        let mut rest = c.text.clone();
        let mut lints = Vec::new();
        while let Some((args, r)) = split_directive(&rest, "allow") {
            lints.extend(
                args.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            );
            rest = r;
        }
        let mut marker_reason = None;
        while let Some((args, r)) = split_directive(&rest, "ordered-merge") {
            marker_reason = Some(args.trim().to_string());
            rest = r;
        }
        if lints.is_empty() && marker_reason.is_none() {
            continue;
        }
        // Justification: leftover prose in this comment, else the contiguous
        // run of standalone comment lines directly above the directive.
        let mut justification = rest.trim().trim_matches('.').trim().to_string();
        if justification.is_empty() {
            let mut expect_line = c.line.saturating_sub(1);
            for prev in comments[..ci].iter().rev() {
                if prev.trailing || prev.line != expect_line {
                    break;
                }
                if !prev.text.trim().is_empty() {
                    justification = prev.text.trim().to_string();
                    break;
                }
                expect_line = expect_line.saturating_sub(1);
            }
        }
        if !lints.is_empty() {
            d.allows.push(AllowSite {
                line: c.line,
                lints,
                justification: justification.clone(),
            });
        }
        if let Some(reason) = marker_reason {
            d.markers.push(MarkerSite {
                line: c.line,
                reason,
            });
        }
    }
    d
}

/// Applies suppressions to `findings` and appends the stale-suppression
/// audit's own findings.
///
/// `known_lints` is the registry's name list (unknown names in an allow are
/// stale by definition). `marker_uses` lists marker lines the
/// float-accumulation pass actually consulted to shield a would-be finding.
pub fn apply(
    file: &str,
    findings: Vec<Finding>,
    directives: &Directives,
    known_lints: &[&str],
    marker_uses: &[usize],
) -> Vec<Finding> {
    let mut used = vec![Vec::new(); directives.allows.len()];
    let mut out = Vec::new();

    'finding: for f in findings {
        if f.lint != LINT_STALE {
            for (si, site) in directives.allows.iter().enumerate() {
                let covers = site.line == f.line || site.line + 1 == f.line;
                if covers && site.lints.iter().any(|l| l == f.lint) {
                    used[si].push(f.lint);
                    continue 'finding;
                }
            }
        }
        out.push(f);
    }

    for (site, used_lints) in directives.allows.iter().zip(&used) {
        for lint in &site.lints {
            if !known_lints.contains(&lint.as_str()) {
                out.push(Finding {
                    file: file.to_string(),
                    line: site.line,
                    lint: LINT_STALE,
                    severity: Severity::Deny,
                    message: format!(
                        "`allow({lint})` names an unknown lint; known lints: {}",
                        known_lints.join(", ")
                    ),
                });
            } else if !used_lints.contains(&lint.as_str()) {
                out.push(Finding {
                    file: file.to_string(),
                    line: site.line,
                    lint: LINT_STALE,
                    severity: Severity::Deny,
                    message: format!(
                        "`allow({lint})` suppresses no finding on this or the next \
                         line; remove the stale directive"
                    ),
                });
            }
        }
        if site.justification.is_empty() {
            out.push(Finding {
                file: file.to_string(),
                line: site.line,
                lint: LINT_STALE,
                severity: Severity::Deny,
                message: format!(
                    "`allow({})` carries no justification; state why the \
                     exception is sound in the same comment or the block above",
                    site.lints.join(", ")
                ),
            });
        }
    }

    for m in &directives.markers {
        if m.reason.is_empty() {
            out.push(Finding {
                file: file.to_string(),
                line: m.line,
                lint: LINT_STALE,
                severity: Severity::Deny,
                message: "`ordered-merge()` marker carries no reason; describe the \
                          merge-order contract inside the parentheses"
                    .to_string(),
            });
        } else if !marker_uses.contains(&m.line) {
            out.push(Finding {
                file: file.to_string(),
                line: m.line,
                lint: LINT_STALE,
                severity: Severity::Deny,
                message: "`ordered-merge(..)` marker shields no float accumulation; \
                          remove the stale marker"
                    .to_string(),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::lex;

    const KNOWN: &[&str] = &["nondeterminism", "panic"];

    fn deny(file: &str, line: usize, lint: &'static str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            lint,
            severity: Severity::Deny,
            message: "x".to_string(),
        }
    }

    #[test]
    fn directive_suppresses_same_and_next_line() {
        let l =
            lex("// seeded upstream by the caller. via-audit: allow(nondeterminism)\ncode();\n");
        let d = collect(&l.comments);
        let out = apply(
            "f.rs",
            vec![deny("f.rs", 2, "nondeterminism")],
            &d,
            KNOWN,
            &[],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unmatched_allow_is_a_stale_finding() {
        let l = lex("// the code below was fixed. via-audit: allow(nondeterminism)\ncode();\n");
        let d = collect(&l.comments);
        let out = apply("f.rs", Vec::new(), &d, KNOWN, &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, LINT_STALE);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn unknown_lint_name_is_stale() {
        let l = lex("// justified. via-audit: allow(no-such-lint)\ncode();\n");
        let d = collect(&l.comments);
        let out = apply("f.rs", Vec::new(), &d, KNOWN, &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unknown lint"));
    }

    #[test]
    fn bare_allow_without_justification_is_denied() {
        let l = lex("// via-audit: allow(panic)\nx.unwrap();\n");
        let d = collect(&l.comments);
        let out = apply("f.rs", vec![deny("f.rs", 2, "panic")], &d, KNOWN, &[]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("justification"));
    }

    #[test]
    fn justification_from_contiguous_block_above() {
        let src = "// This wait is bounded by the caller's deadline loop,\n\
                   // re-checked every WouldBlock.\n\
                   // via-audit: allow(panic)\nx.unwrap();\n";
        let l = lex(src);
        let d = collect(&l.comments);
        assert!(!d.allows[0].justification.is_empty());
        let out = apply("f.rs", vec![deny("f.rs", 4, "panic")], &d, KNOWN, &[]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn trailing_comment_on_code_does_not_justify_a_later_directive() {
        let src =
            "let a = 1; // unrelated trailing note\n// via-audit: allow(panic)\nx.unwrap();\n";
        let l = lex(src);
        let d = collect(&l.comments);
        assert!(d.allows[0].justification.is_empty());
    }

    #[test]
    fn stale_findings_cannot_be_suppressed() {
        let l = lex("// meta. via-audit: allow(stale-suppression)\ncode();\n");
        let d = collect(&l.comments);
        let out = apply(
            "f.rs",
            vec![deny("f.rs", 2, LINT_STALE)],
            &d,
            &["stale-suppression"],
            &[],
        );
        // The original stale finding survives AND the allow is itself stale.
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn doc_comment_examples_are_not_directives() {
        let src = "//! Suppress with `// via-audit: allow(panic)` on the line.\n\
                   /// Or mark it: `via-audit: ordered-merge(reason)`.\n\
                   fn lib() {}\n";
        let l = lex(src);
        let d = collect(&l.comments);
        assert!(d.allows.is_empty(), "{:?}", d.allows);
        assert!(d.markers.is_empty(), "{:?}", d.markers);
    }

    #[test]
    fn markers_parse_and_audit() {
        let l = lex("// via-audit: ordered-merge(pairwise Chan merge at the barrier)\nfn merge() {}\n// via-audit: ordered-merge()\nfn merge2() {}\n");
        let d = collect(&l.comments);
        assert_eq!(d.markers.len(), 2);
        let out = apply("f.rs", Vec::new(), &d, KNOWN, &[1]);
        // Marker 1 used; marker 3 has no reason.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("no reason"));
    }

    #[test]
    fn multiple_lints_in_one_allow_audit_independently() {
        let l =
            lex("// both fire here, honestly. via-audit: allow(nondeterminism, panic)\ncode();\n");
        let d = collect(&l.comments);
        let out = apply(
            "f.rs",
            vec![deny("f.rs", 2, "nondeterminism")],
            &d,
            KNOWN,
            &[],
        );
        // `panic` suppressed nothing → one stale finding.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, LINT_STALE);
    }
}
