//! The structured lint-pass framework.
//!
//! Every lint is a [`Pass`]: a name, an applicability predicate over
//! [`FileKind`], and a run function over one fully-analyzed file. The
//! [`REGISTRY`] is the single place a lint is wired in; the engine
//! ([`crate::audit_source`]) lexes once, builds the per-file [`FileCtx`]
//! (tokens, rendered lines, symbol table, test mask, directives), runs every
//! applicable pass, then applies suppression *centrally* — passes emit
//! findings unconditionally and never look at `allow` directives, which is
//! what makes the stale-suppression audit sound: a suppressed finding is
//! still *produced*, so an allow that matches nothing is provably stale.

use crate::lints::{self, FileKind, Finding};
use crate::semantic;
use crate::suppress::Directives;
use crate::symbols::SymbolTable;
use crate::token::Token;

/// Everything a pass can see about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative display path.
    pub file: &'a str,
    /// File classification (sim / lib / hot-path / socket).
    pub kind: FileKind,
    /// The token stream.
    pub tokens: &'a [Token],
    /// Code-only rendered lines (comments/literals blanked, columns kept).
    pub lines: &'a [String],
    /// Per-file symbol table.
    pub symbols: &'a SymbolTable,
    /// One flag per 0-indexed line: true inside `#[cfg(test)]`/`#[test]`.
    pub test_mask: &'a [bool],
    /// Parsed `via-audit:` directives (allows and ordered-merge markers).
    pub directives: &'a Directives,
}

/// What a pass produces.
#[derive(Debug, Default)]
pub struct PassOutput {
    /// Findings, pre-suppression.
    pub findings: Vec<Finding>,
    /// Lines of `ordered-merge` markers that shielded a would-be finding
    /// (consumed by the stale-marker audit).
    pub marker_uses: Vec<usize>,
}

/// One registered lint pass.
pub struct Pass {
    /// The lint name findings carry (and `allow(..)` refers to).
    pub lint: &'static str,
    /// Whether the pass runs on a file of this kind.
    pub applies: fn(FileKind) -> bool,
    /// The pass body.
    pub run: fn(&FileCtx<'_>, &mut PassOutput),
}

fn always(_: FileKind) -> bool {
    true
}

fn sim(k: FileKind) -> bool {
    k.sim_crate
}

fn sim_or_socket_lib(k: FileKind) -> bool {
    (k.sim_crate || k.socket_crate) && k.lib_code
}

fn socket_lib(k: FileKind) -> bool {
    k.socket_crate && k.lib_code
}

fn hot(k: FileKind) -> bool {
    k.hot_path
}

fn hot_or_socket_lib(k: FileKind) -> bool {
    (k.hot_path || k.socket_crate) && k.lib_code
}

/// Every lint pass, in the order they run. One entry per lint name.
pub const REGISTRY: &[Pass] = &[
    Pass {
        lint: lints::LINT_NONDET,
        applies: sim,
        run: lints::pass_determinism,
    },
    Pass {
        lint: lints::LINT_PANIC,
        applies: sim_or_socket_lib,
        run: lints::pass_panic,
    },
    Pass {
        lint: lints::LINT_NAN,
        applies: always,
        run: lints::pass_nan,
    },
    Pass {
        lint: lints::LINT_CONTENTION,
        applies: hot,
        run: lints::pass_contention,
    },
    Pass {
        lint: lints::LINT_SOCKET,
        applies: socket_lib,
        run: lints::pass_socket,
    },
    Pass {
        lint: lints::LINT_TIMING,
        applies: hot,
        run: lints::pass_timing,
    },
    Pass {
        lint: semantic::LINT_MAP_ORDER,
        applies: sim,
        run: semantic::pass_map_order,
    },
    Pass {
        lint: semantic::LINT_RNG,
        applies: sim,
        run: semantic::pass_rng_discipline,
    },
    Pass {
        lint: semantic::LINT_FLOAT_ACC,
        applies: sim,
        run: semantic::pass_float_accumulation,
    },
    // Cast truncation is denied on the hot path for speed-of-light reasons
    // and in socket-crate lib code for wire-correctness ones: a silently
    // truncated relay index or session id becomes a cross-wired session
    // (the harness.rs `r as u16` bug this scope extension would have
    // caught).
    Pass {
        lint: semantic::LINT_CAST,
        applies: hot_or_socket_lib,
        run: semantic::pass_cast_truncation,
    },
];

/// All lint names an `allow(..)` may legally reference: the registry plus
/// the stale-suppression audit's own name (listed so the "unknown lint"
/// message can cite it, though allows on it never match — its findings
/// bypass suppression).
pub fn known_lints() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = REGISTRY.iter().map(|p| p.lint).collect();
    names.push(crate::suppress::LINT_STALE);
    names
}

/// Runs every applicable registered pass over one analyzed file.
pub fn run_passes(ctx: &FileCtx<'_>) -> PassOutput {
    let mut out = PassOutput::default();
    for pass in REGISTRY {
        if (pass.applies)(ctx.kind) {
            (pass.run)(ctx, &mut out);
        }
    }
    out
}

/// Test helper: lexes `src`, builds the full [`FileCtx`], and hands it to
/// `f`. Keeps pass unit tests free of analysis boilerplate.
#[cfg(test)]
pub fn file_ctx_for_test<R>(src: &str, kind: FileKind, f: impl FnOnce(&FileCtx<'_>) -> R) -> R {
    let lexed = crate::token::lex(src);
    let symbols = crate::symbols::collect(&lexed.tokens);
    let test_mask = crate::regions::test_regions(&lexed.lines);
    let directives = crate::suppress::collect(&lexed.comments);
    let ctx = FileCtx {
        file: "test.rs",
        kind,
        tokens: &lexed.tokens,
        lines: &lexed.lines,
        symbols: &symbols,
        test_mask: &test_mask,
        directives: &directives,
    };
    f(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|p| p.lint).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate lint name in REGISTRY");
    }

    #[test]
    fn known_lints_includes_registry_and_stale() {
        let known = known_lints();
        for p in REGISTRY {
            assert!(known.contains(&p.lint));
        }
        assert!(known.contains(&crate::suppress::LINT_STALE));
    }
}
