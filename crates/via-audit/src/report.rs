//! Machine-readable findings output.
//!
//! `cargo run -p via-audit -- --format json` emits one JSON document for CI
//! artifact upload. The crate is dependency-free on purpose (it lints the
//! workspace, so it must not depend on the workspace), so the emitter is
//! hand-written: fields in a fixed order (`file`, `line`, `lint`,
//! `severity`, `message`), findings in the caller's order (the workspace
//! walk sorts by file, then line, then lint), strings escaped per RFC 8259.

use crate::lints::{Finding, Severity};

/// Escapes `s` as the contents of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

/// Renders findings as a pretty-printed JSON document (trailing newline
/// included).
pub fn to_json(findings: &[Finding]) -> String {
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warnings = findings.len() - errors;
    let mut out = String::with_capacity(findings.len() * 128 + 128);
    out.push_str("{\n");
    out.push_str("  \"tool\": \"via-audit\",\n");
    out.push_str("  \"schema_version\": 2,\n");
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {warnings},\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    { \"file\": \"");
        escape_into(&mut out, &f.file);
        out.push_str(&format!("\", \"line\": {}, \"lint\": \"", f.line));
        escape_into(&mut out, f.lint);
        out.push_str("\", \"severity\": \"");
        out.push_str(match f.severity {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        });
        out.push_str("\", \"message\": \"");
        escape_into(&mut out, &f.message);
        out.push_str("\" }");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, sev: Severity, msg: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            lint: "panic",
            severity: sev,
            message: msg.to_string(),
        }
    }

    #[test]
    fn empty_report() {
        let j = to_json(&[]);
        assert!(j.contains("\"errors\": 0"));
        assert!(j.contains("\"findings\": []"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn counts_and_field_order_are_stable() {
        let j = to_json(&[
            finding("a.rs", 1, Severity::Deny, "x"),
            finding("b.rs", 2, Severity::Warn, "y"),
        ]);
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("\"warnings\": 1"));
        let file_pos = j.find("\"file\"").unwrap_or(usize::MAX);
        let line_pos = j.find("\"line\"").unwrap_or(0);
        let lint_pos = j.find("\"lint\"").unwrap_or(0);
        let sev_pos = j.find("\"severity\"").unwrap_or(0);
        let msg_pos = j.find("\"message\"").unwrap_or(0);
        assert!(file_pos < line_pos && line_pos < lint_pos);
        assert!(lint_pos < sev_pos && sev_pos < msg_pos);
    }

    #[test]
    fn strings_are_escaped() {
        let j = to_json(&[finding("a\\b.rs", 1, Severity::Deny, "say \"hi\"\n\u{1}")]);
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\\u0001"));
    }
}
