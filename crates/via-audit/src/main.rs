//! CLI entry point: `cargo run -p via-audit [-- --root <dir>] [-v] [--format json|text]`.
//!
//! Walks `<root>/crates`, runs every registered lint pass, prints findings,
//! and exits non-zero when any deny-level finding exists. In text mode
//! warnings are summarized (full detail with `-v`) and never affect the
//! exit code; in JSON mode the full findings list (warnings included) is
//! emitted as one document for CI artifact upload.

use std::path::PathBuf;
use std::process::ExitCode;

use via_audit::lints::Severity;
use via_audit::report;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut verbose = false;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("json") => Format::Json,
                    Some("text") => Format::Text,
                    other => {
                        eprintln!(
                            "--format requires `json` or `text`, got {}",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "-v" | "--verbose" => verbose = true,
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: via-audit [--root <dir>] [-v] [--format json|text]"
                );
                return ExitCode::from(2);
            }
        }
    }

    // When invoked via `cargo run` from a crate directory, walk up to the
    // workspace root (the directory containing `crates/`).
    if !root.join("crates").is_dir() {
        if let Ok(mut cur) = std::env::current_dir() {
            while !cur.join("crates").is_dir() {
                if !cur.pop() {
                    break;
                }
            }
            if cur.join("crates").is_dir() {
                root = cur;
            }
        }
    }

    let findings = match via_audit::audit_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "via-audit: failed to walk workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();

    match format {
        Format::Json => print!("{}", report::to_json(&findings)),
        Format::Text => {
            let mut warnings = 0usize;
            for f in &findings {
                match f.severity {
                    Severity::Deny => println!("{f}"),
                    Severity::Warn => {
                        warnings += 1;
                        if verbose {
                            println!("{f}");
                        }
                    }
                }
            }
            println!(
                "via-audit: {errors} error{}, {warnings} warning{}{}",
                if errors == 1 { "" } else { "s" },
                if warnings == 1 { "" } else { "s" },
                if warnings > 0 && !verbose {
                    " (rerun with -v for warning detail)"
                } else {
                    ""
                }
            );
        }
    }

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
