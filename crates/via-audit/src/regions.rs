//! Test-region detection over sanitized source.
//!
//! The panic-safety lint only applies to code that ships: anything under a
//! `#[cfg(test)]` attribute (the workspace convention is a trailing
//! `mod tests`) or a `#[test]` function is exempt. Regions are found by
//! locating the attribute, then brace-matching the item that follows —
//! sanitized text has no braces inside strings or comments, so counting is
//! exact.

/// Returns one flag per line (0-indexed): true when the line belongs to a
/// test-only item.
pub fn test_regions(lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    for (start, l) in lines.iter().enumerate() {
        if !(l.contains("#[cfg(test)]") || l.contains("#[test]")) {
            continue;
        }
        // Walk forward from the attribute: the item it decorates ends at the
        // close of its first brace block, or at a `;` for brace-less items
        // (e.g. `#[cfg(test)] use ...;`).
        let mut depth = 0usize;
        let mut opened = false;
        let mut end = start;
        'scan: for (li, line) in lines.iter().enumerate().skip(start) {
            // Skip everything up to (and including) the attribute's `]` on
            // the first line so `#[...]`'s own brackets don't confuse us —
            // attributes contain no braces, so only `{`/`}`/`;` matter.
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            end = li;
                            break 'scan;
                        }
                    }
                    ';' if !opened => {
                        end = li;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            end = li;
        }
        for flag in mask.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<String> {
        src.lines().map(str::to_string).collect()
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let mask = test_regions(&lines(src));
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn lib() {}\n";
        let mask = test_regions(&lines(src));
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn nested_braces_are_matched() {
        let src = "#[test]\nfn t() {\n    if x { y(); }\n    z();\n}\nfn lib() {}\n";
        let mask = test_regions(&lines(src));
        assert_eq!(mask, vec![true, true, true, true, true, false]);
    }
}
