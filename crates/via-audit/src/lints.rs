//! Core types and the line-based lint passes.
//!
//! * `nondeterminism` — forbids entropy and wall-clock sources
//!   (`thread_rng`, `from_entropy`, `SystemTime::now`, `Instant::now`) in
//!   the simulation crates. Applies to test code too: a nondeterministic
//!   test cannot reproduce its failures. (Hash-container *iteration* is the
//!   token-aware `map-iteration-order` lint's job — see [`crate::semantic`].)
//! * `panic` — forbids `.unwrap()` / `.expect(` in shipping library code of
//!   the simulation crates (test regions exempt) and warns on slice
//!   indexing.
//! * `nan-cmp` — flags `partial_cmp(..).unwrap()`-style float comparisons
//!   anywhere in the workspace, suggesting `f64::total_cmp`.
//! * `lock-contention` — forbids `Mutex<HashMap<..>>` / `Mutex<BTreeMap<..>>`
//!   in the hot-path crates (`via-netsim`, `via-core`): a single map-wide
//!   mutex serializes every reader and flattens parallel-replay scaling (the
//!   exact regression PR 3 removed from `PerfModel`). Use sharded `RwLock`
//!   tables, dense `OnceLock` slots, or per-worker state instead.
//! * `socket-wait` — forbids unbounded socket waits in the socket crates'
//!   library code: bare `TcpStream::connect(`, blocking `.accept()`,
//!   `set_read_timeout(None)` / `set_write_timeout(None)`, and the
//!   deadline-free `read_frame(` helper. Every socket wait must carry a
//!   deadline (`connect_deadline`, `accept_deadline`,
//!   `FrameConn::read_deadline`) or the harness can hang forever on one
//!   dead peer.
//! * `raw-timing` — forbids raw wall-clock reads (`Instant::now`,
//!   `SystemTime::now`) in the hot-path crates even where a
//!   `allow(nondeterminism)` justification exists. Timing in the replay
//!   hot path must go through the `via_obs::Stopwatch` facade so every
//!   wall-clock read lands in the opt-in timing layer that serialized
//!   metrics snapshots exclude — a bare clock read next to recorded state
//!   is how nondeterminism leaks into "deterministic" outputs.
//!
//! Passes emit findings unconditionally; suppression (`via-audit:
//! allow(lint-name)` with a justification) is applied centrally by the
//! engine so stale allows are detectable — see [`crate::suppress`].

use std::fmt;

use crate::passes::{FileCtx, PassOutput};

/// Determinism lint name.
pub const LINT_NONDET: &str = "nondeterminism";
/// Panic-safety lint name.
pub const LINT_PANIC: &str = "panic";
/// NaN-safe comparison lint name.
pub const LINT_NAN: &str = "nan-cmp";
/// Map-wide mutex lint name.
pub const LINT_CONTENTION: &str = "lock-contention";
/// Unbounded-socket-wait lint name.
pub const LINT_SOCKET: &str = "socket-wait";
/// Raw wall-clock read lint name (hot-path crates).
pub const LINT_TIMING: &str = "raw-timing";

/// Finding severity: denies fail the audit, warnings are informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit (non-zero exit).
    Deny,
    /// Reported but never fails the audit.
    Warn,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Which lint fired.
    pub lint: &'static str,
    /// Deny or warn.
    pub severity: Severity,
    /// Human-readable description with a suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        };
        write!(
            f,
            "{}:{}: {sev}[{}]: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// What kind of code a file holds, for lint applicability.
#[derive(Debug, Clone, Copy)]
pub struct FileKind {
    /// The crate belongs to the deterministic simulation core.
    pub sim_crate: bool,
    /// Shipping library code (not a bin target, bench, or example).
    pub lib_code: bool,
    /// The crate is on the replay hot path (`via-netsim`, `via-core`), where
    /// shared-lock contention patterns are denied.
    pub hot_path: bool,
    /// The crate drives real sockets (`via-testbed`): unbounded socket waits
    /// are denied and the panic lint applies even though the crate is not a
    /// simulation crate.
    pub socket_crate: bool,
}

fn push(
    ctx: &FileCtx<'_>,
    out: &mut PassOutput,
    line: usize,
    lint: &'static str,
    sev: Severity,
    message: String,
) {
    out.findings.push(Finding {
        file: ctx.file.to_string(),
        line,
        lint,
        severity: sev,
        message,
    });
}

/// Entropy / wall-clock patterns forbidden in simulation code.
const NONDET_SOURCES: &[(&str, &str)] = &[
    (
        "thread_rng",
        "entropy-seeded RNG; use `StdRng::seed_from_u64` with a derived seed",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG; use `StdRng::seed_from_u64` with a derived seed",
    ),
    (
        "SystemTime::now",
        "wall-clock read; use `SimTime` carried by the trace",
    ),
    (
        "Instant::now",
        "wall-clock read; simulation time must come from the trace",
    ),
];

/// The determinism pass: entropy and wall-clock sources.
pub fn pass_determinism(ctx: &FileCtx<'_>, out: &mut PassOutput) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        for &(pat, advice) in NONDET_SOURCES {
            if line.contains(pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    LINT_NONDET,
                    Severity::Deny,
                    format!("`{pat}` is nondeterministic: {advice}"),
                );
            }
        }
    }
}

/// The panic-safety pass (lib code only; test regions exempt).
pub fn pass_panic(ctx: &FileCtx<'_>, out: &mut PassOutput) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        if line.contains(".unwrap()") {
            push(
                ctx,
                out,
                idx + 1,
                LINT_PANIC,
                Severity::Deny,
                "`.unwrap()` in library code; match, use `unwrap_or*`, or propagate \
                 with `?`"
                    .to_string(),
            );
        }
        if line.contains(".expect(") {
            push(
                ctx,
                out,
                idx + 1,
                LINT_PANIC,
                Severity::Deny,
                "`.expect(..)` in library code; encode the invariant in types or \
                 handle the `None`/`Err` arm"
                    .to_string(),
            );
        }
        // Slice/array indexing can panic; warn (heuristic, never fails CI).
        if !line.trim_start().starts_with('#') {
            let chars: Vec<char> = line.chars().collect();
            for (ci, &c) in chars.iter().enumerate() {
                if c != '[' || ci == 0 {
                    continue;
                }
                let prev = chars[ci - 1];
                if prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
                    push(
                        ctx,
                        out,
                        idx + 1,
                        LINT_PANIC,
                        Severity::Warn,
                        "slice indexing can panic; prefer `.get(..)` where the index \
                         is not provably in bounds"
                            .to_string(),
                    );
                    break; // one warning per line is enough
                }
            }
        }
    }
}

/// Map types that, wrapped in a whole-map `Mutex`, serialize every reader.
const CONTENDED_MAPS: &[&str] = &["Mutex<HashMap", "Mutex<BTreeMap"];

/// The lock-contention pass (hot-path crates only): a `Mutex` around a whole
/// `HashMap`/`BTreeMap` funnels every parallel-replay reader through one
/// lock.
pub fn pass_contention(ctx: &FileCtx<'_>, out: &mut PassOutput) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        // Strip whitespace so `Mutex< HashMap` and split generics match too.
        let packed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        for pat in CONTENDED_MAPS {
            if packed.contains(pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    LINT_CONTENTION,
                    Severity::Deny,
                    format!(
                        "`{pat}<..>>` serializes all readers on one lock and destroys \
                         parallel-replay scaling; use a sharded `RwLock` table, dense \
                         `OnceLock` slots, or per-worker state"
                    ),
                );
            }
        }
    }
}

/// Socket waits that can block forever, with the bounded alternative.
const UNBOUNDED_WAITS: &[(&str, &str)] = &[
    (
        "TcpStream::connect(",
        "blocking connect with the OS default timeout; use `connect_deadline`",
    ),
    (
        ".accept()",
        "blocking accept can wait forever on a peer that never arrives; \
         use `accept_deadline`",
    ),
    (
        "set_read_timeout(None)",
        "disabling the read timeout makes the next read unbounded",
    ),
    (
        "set_write_timeout(None)",
        "disabling the write timeout makes the next write unbounded",
    ),
    (
        "read_frame(",
        "deadline-free frame read; use `FrameConn::read_deadline`",
    ),
];

/// The unbounded-socket-wait pass (socket crates' lib code only; test
/// regions exempt — tests may block because the test runner itself is the
/// deadline).
pub fn pass_socket(ctx: &FileCtx<'_>, out: &mut PassOutput) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for &(pat, advice) in UNBOUNDED_WAITS {
            if line.contains(pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    LINT_SOCKET,
                    Severity::Deny,
                    format!("`{pat}` is an unbounded socket wait: {advice}"),
                );
            }
        }
    }
}

/// Raw wall-clock constructors. `.elapsed()` on a stored start point is
/// deliberately not matched: reading out a `Stopwatch` is the facade's job,
/// and the facade itself carries the one sanctioned constructor site.
const RAW_CLOCKS: &[&str] = &["Instant::now", "SystemTime::now"];

/// The raw-timing pass (hot-path crates only).
///
/// Overlaps with the `nondeterminism` lint on purpose: that lint can be
/// suppressed site-by-site with `allow(nondeterminism)`, which is exactly
/// how ad-hoc timing reads used to accumulate in the replay loop. This lint
/// has its own name, so a justified nondeterminism exception still cannot
/// put a bare clock read on the hot path — timing goes through
/// `via_obs::Stopwatch` or not at all.
pub fn pass_timing(ctx: &FileCtx<'_>, out: &mut PassOutput) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        for pat in RAW_CLOCKS {
            if line.contains(pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    LINT_TIMING,
                    Severity::Deny,
                    format!(
                        "raw `{pat}` on the hot path; route timing through \
                         `via_obs::Stopwatch` so it stays in the opt-in timing \
                         layer excluded from deterministic snapshots"
                    ),
                );
            }
        }
    }
}

/// The NaN-safety pass.
pub fn pass_nan(ctx: &FileCtx<'_>, out: &mut PassOutput) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        // Catch `a.partial_cmp(&b).unwrap()` including the chained-across-
        // newline style: look at this line joined with the next.
        if !line.contains("partial_cmp") {
            continue;
        }
        let joined = match ctx.lines.get(idx + 1) {
            Some(next) => format!("{line}{next}"),
            None => line.clone(),
        };
        if joined.contains(".unwrap()") || joined.contains(".expect(") {
            push(
                ctx,
                out,
                idx + 1,
                LINT_NAN,
                Severity::Deny,
                "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp` \
                 for float ordering"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_all(src: &str, kind: FileKind) -> Vec<Finding> {
        crate::audit_source("test.rs", src, kind)
    }

    const SIM_LIB: FileKind = FileKind {
        sim_crate: true,
        lib_code: true,
        hot_path: true,
        socket_crate: false,
    };

    const SOCKET_LIB: FileKind = FileKind {
        sim_crate: false,
        lib_code: true,
        hot_path: false,
        socket_crate: true,
    };

    fn denies(f: &[Finding]) -> usize {
        f.iter().filter(|x| x.severity == Severity::Deny).count()
    }

    #[test]
    fn entropy_sources_are_denied() {
        let f = run_all("fn f() { let mut rng = rand::thread_rng(); }\n", SIM_LIB);
        assert_eq!(denies(&f), 1);
        assert_eq!(f[0].lint, LINT_NONDET);
        // A clock read on the hot path trips both the determinism lint and
        // the raw-timing lint: two findings, one site.
        let f = run_all("fn f() { let t = std::time::Instant::now(); }\n", SIM_LIB);
        assert_eq!(denies(&f), 2);
        assert!(f.iter().any(|x| x.lint == LINT_NONDET));
        assert!(f.iter().any(|x| x.lint == LINT_TIMING));
    }

    #[test]
    fn nondeterminism_suppression_does_not_silence_raw_timing() {
        // The loophole this lint closes: a justified allow(nondeterminism)
        // used to be enough to put an ad-hoc clock read on the hot path.
        let src =
            "// wall timing only. via-audit: allow(nondeterminism)\nlet t = Instant::now();\n";
        let f = run_all(src, SIM_LIB);
        assert_eq!(denies(&f), 1, "{f:?}");
        assert_eq!(f[0].lint, LINT_TIMING);
        assert!(f[0].message.contains("Stopwatch"));
    }

    #[test]
    fn raw_timing_applies_only_on_the_hot_path_and_is_suppressible() {
        let src = "fn f() { let t = SystemTime::now(); }\n";
        let cold = FileKind {
            sim_crate: false,
            lib_code: true,
            hot_path: false,
            socket_crate: false,
        };
        assert_eq!(denies(&run_all(src, cold)), 0);
        let suppressed = "// facade-internal read. via-audit: allow(raw-timing, nondeterminism)\nlet t = SystemTime::now();\n";
        assert_eq!(denies(&run_all(suppressed, SIM_LIB)), 0);
    }

    #[test]
    fn stopwatch_reads_do_not_trip_raw_timing() {
        let src = "let sw = Stopwatch::started();\nstats.wall_ms = sw.elapsed_ms();\nlet d = start.elapsed();\n";
        let f = run_all(src, SIM_LIB);
        assert!(
            f.iter().all(|x| x.lint != LINT_TIMING),
            "false positive: {f:?}"
        );
    }

    #[test]
    fn suppression_comment_silences_a_site() {
        let src = "// deliberate: seeded elsewhere. via-audit: allow(nondeterminism)\nlet mut rng = rand::thread_rng();\n";
        assert_eq!(denies(&run_all(src, SIM_LIB)), 0);
    }

    #[test]
    fn unwrap_in_lib_code_is_denied_but_tests_are_exempt() {
        let src = "fn lib(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        let f = run_all(src, SIM_LIB);
        assert_eq!(denies(&f), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn lib(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n";
        assert_eq!(denies(&run_all(src, SIM_LIB)), 0);
    }

    #[test]
    fn indexing_warns_without_failing() {
        let f = run_all("fn lib(xs: &[u32]) -> u32 { xs[0] }\n", SIM_LIB);
        assert_eq!(denies(&f), 0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Warn);
    }

    #[test]
    fn nan_unsafe_comparison_is_denied_everywhere() {
        let src = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let f = run_all(
            src,
            FileKind {
                sim_crate: false,
                lib_code: false,
                hot_path: false,
                socket_crate: false,
            },
        );
        assert_eq!(denies(&f), 1);
        assert_eq!(f[0].lint, LINT_NAN);
        assert!(f[0].message.contains("total_cmp"));
    }

    #[test]
    fn total_cmp_is_fine() {
        let src = "xs.sort_by(|a, b| a.total_cmp(b));\nlet o = a.partial_cmp(&b);\n";
        assert_eq!(
            denies(&run_all(
                src,
                FileKind {
                    sim_crate: false,
                    lib_code: false,
                    hot_path: false,
                    socket_crate: false,
                }
            )),
            0
        );
    }

    #[test]
    fn mutexed_map_is_denied_on_the_hot_path() {
        for src in [
            "struct S { cache: Mutex<HashMap<Segment, SegState>> }\n",
            "type T = Mutex<BTreeMap<u32, f64>>;\n",
            "let c: Mutex< HashMap<u32, u32> > = Mutex::default();\n",
        ] {
            let f = run_all(src, SIM_LIB);
            assert_eq!(denies(&f), 1, "{src:?} → {f:?}");
            assert_eq!(f[0].lint, LINT_CONTENTION);
        }
    }

    #[test]
    fn mutexed_map_is_allowed_off_the_hot_path_or_with_suppression() {
        let src = "struct S { cache: Mutex<HashMap<u32, u32>> }\n";
        let cold = FileKind {
            sim_crate: true,
            lib_code: true,
            hot_path: false,
            socket_crate: false,
        };
        assert_eq!(denies(&run_all(src, cold)), 0);
        let suppressed = "// cold config table, touched once. via-audit: allow(lock-contention)\nstruct S { cache: Mutex<HashMap<u32, u32>> }\n";
        assert_eq!(denies(&run_all(suppressed, SIM_LIB)), 0);
    }

    #[test]
    fn unbounded_socket_waits_are_denied_in_socket_lib_code() {
        for src in [
            "let s = TcpStream::connect(addr)?;\n",
            "let (stream, peer) = listener.accept()?;\n",
            "stream.set_read_timeout(None)?;\n",
            "stream.set_write_timeout(None)?;\n",
            "let msg: ClientMsg = read_frame(&mut stream)?;\n",
        ] {
            let f = run_all(src, SOCKET_LIB);
            assert_eq!(denies(&f), 1, "{src:?} → {f:?}");
            assert_eq!(f[0].lint, LINT_SOCKET);
        }
    }

    #[test]
    fn bounded_socket_waits_are_fine() {
        let src = "let s = TcpStream::connect_timeout(&addr, t)?;\n\
                   let got = accept_deadline(&listener, deadline)?;\n\
                   stream.set_read_timeout(Some(slice))?;\n\
                   pub fn read_frame<T>(r: &mut impl Read) -> Result<T, FrameError> {\n\
                   let msg = conn.read_deadline(deadline)?;\n";
        assert_eq!(denies(&run_all(src, SOCKET_LIB)), 0);
    }

    #[test]
    fn socket_waits_in_tests_or_with_suppression_are_exempt() {
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn t() { let (s, _) = l.accept().unwrap(); }\n}\n";
        assert_eq!(denies(&run_all(in_test, SOCKET_LIB)), 0);
        let suppressed = "// nonblocking poll, bounded by the caller's deadline. \
                          via-audit: allow(socket-wait)\nmatch listener.accept() {\n";
        assert_eq!(denies(&run_all(suppressed, SOCKET_LIB)), 0);
    }

    #[test]
    fn socket_crates_also_get_the_panic_lint() {
        let src = "fn lib(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = run_all(src, SOCKET_LIB);
        assert_eq!(denies(&f), 1);
        assert_eq!(f[0].lint, LINT_PANIC);
    }

    #[test]
    fn sharded_rwlock_and_plain_maps_are_fine() {
        let src = "struct S { sparse: Vec<RwLock<HashMap<u32, u32>>>, plain: HashMap<u32, u32>, m: Mutex<Vec<u32>> }\n";
        let f = run_all(src, SIM_LIB);
        assert!(
            f.iter().all(|x| x.lint != LINT_CONTENTION),
            "false positive: {f:?}"
        );
    }
}
