//! Per-file symbol tables for the token-aware lints.
//!
//! The semantic passes need to know, for an identifier, whether it names a
//! hash-ordered container, an RNG, or an `f64` value. A full type system is
//! out of reach (and out of scope); what *is* reachable from tokens alone
//! covers the patterns this workspace actually writes:
//!
//! * `name: HashMap<..>` / `name: HashSet<..>` — type-ascribed bindings,
//!   function parameters, and struct fields, plus struct-literal
//!   initializers (`windows: HashMap::new()`), all share the `ident ':'
//!   …type…` shape.
//! * `let [mut] name = HashMap::new()` — inferred bindings initialized from
//!   a container constructor.
//! * The same two shapes with RNG types (`StdRng`, `SmallRng`, anything
//!   ending in `Rng`) feed the RNG-discipline lint.
//! * `name: f64` (exactly) marks float bindings/fields for the
//!   float-accumulation lint. Compound types (`Vec<f64>`) are deliberately
//!   not marked: indexing/iteration obscures enough that flagging them
//!   would be guesswork.
//!
//! Tables are file-scoped. A field declared in another file is invisible —
//! a documented precision limit, not a bug: per-file tables keep the audit
//! dependency-free and O(workspace), and the fixture corpus pins exactly
//! what is and is not caught.

use std::collections::BTreeSet;

use crate::token::{Token, TokenKind};

/// Identifier classification for one file.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Bindings/fields whose type (or initializer) mentions `HashMap` or
    /// `HashSet`.
    pub hash_containers: BTreeSet<String>,
    /// Hash containers whose *value* type contains another hash container
    /// (`HashMap<u64, HashMap<..>>`): `.get(..)` on these yields a hash
    /// container, which closure-parameter binding in the map-order pass
    /// uses.
    pub nested_hash: BTreeSet<String>,
    /// Bindings/fields with an RNG-ish type (`StdRng`, `SmallRng`, or any
    /// identifier ending in `Rng`).
    pub rngs: BTreeSet<String>,
    /// Bindings/fields typed exactly `f64` (modulo `&`/`mut`).
    pub floats: BTreeSet<String>,
}

/// True for type identifiers whose iteration order follows the hash seed.
pub fn is_hash_container_ty(name: &str) -> bool {
    name == "HashMap" || name == "HashSet"
}

/// True for type identifiers naming an RNG.
fn is_rng_ty(name: &str) -> bool {
    name.ends_with("Rng") && name != "SeedableRng"
}

/// Tokens that end a type region when seen at angle-depth 0.
fn ends_type_region(t: &Token) -> bool {
    t.kind == TokenKind::Punct && matches!(t.text.as_str(), "," | ";" | ")" | "{" | "}" | "=")
}

/// Builds the symbol table for one file's token stream.
pub fn collect(tokens: &[Token]) -> SymbolTable {
    let mut table = SymbolTable::default();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }

        // `ident : <type/expr region>` — fields, params, ascribed lets, and
        // struct-literal inits. Skip `::` (path separator, joined token).
        if tokens[i + 1].is_punct(":") {
            let mut angle = 0i32;
            let mut j = i + 2;
            let mut hash_hits = 0usize;
            let mut saw_rng = false;
            let mut plain = Vec::new();
            while j < tokens.len() && j - i < 64 {
                let u = &tokens[j];
                if u.is_punct("<") {
                    angle += 1;
                } else if u.is_punct(">") {
                    angle -= 1;
                    if angle < 0 {
                        break;
                    }
                } else if angle == 0 && ends_type_region(u) {
                    break;
                } else if u.kind == TokenKind::Ident {
                    if is_hash_container_ty(&u.text) {
                        hash_hits += 1;
                    }
                    if is_rng_ty(&u.text) {
                        saw_rng = true;
                    }
                    if angle == 0 {
                        plain.push(u.text.as_str());
                    }
                }
                j += 1;
            }
            if hash_hits > 0 {
                table.hash_containers.insert(t.text.clone());
                if hash_hits > 1 {
                    table.nested_hash.insert(t.text.clone());
                }
            }
            if saw_rng {
                table.rngs.insert(t.text.clone());
            }
            // Exactly-`f64` type: the region's only non-`&`/`mut` plain
            // ident is `f64` (so `Vec<f64>` and `Option<f64>` don't match).
            let plains: Vec<&&str> = plain.iter().filter(|s| **s != "mut").collect();
            if plains == [&"f64"] {
                table.floats.insert(t.text.clone());
            }
        }

        // `let [mut] ident = <expr>;` — inferred container/RNG bindings.
        if tokens[i + 1].is_punct("=")
            && i >= 1
            && (tokens[i - 1].is_ident("let")
                || (tokens[i - 1].is_ident("mut") && i >= 2 && tokens[i - 2].is_ident("let")))
        {
            let mut j = i + 2;
            while j < tokens.len() && j - i < 64 && !tokens[j].is_punct(";") {
                let u = &tokens[j];
                if u.kind == TokenKind::Ident {
                    if is_hash_container_ty(&u.text) {
                        table.hash_containers.insert(t.text.clone());
                    }
                    if is_rng_ty(&u.text) {
                        table.rngs.insert(t.text.clone());
                    }
                }
                j += 1;
            }
        }

        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::lex;

    fn table(src: &str) -> SymbolTable {
        collect(&lex(src).tokens)
    }

    #[test]
    fn ascribed_bindings_and_fields() {
        let t = table(
            "struct S { cells: HashMap<u32, f64>, names: Vec<String> }\n\
             fn f(seen: &mut HashSet<u32>, xs: &[f64]) {}\n",
        );
        assert!(t.hash_containers.contains("cells"));
        assert!(t.hash_containers.contains("seen"));
        assert!(!t.hash_containers.contains("names"));
        assert!(!t.hash_containers.contains("xs"));
    }

    #[test]
    fn inferred_let_bindings() {
        let t = table("let mut cache = HashMap::new();\nlet v = Vec::new();\n");
        assert!(t.hash_containers.contains("cache"));
        assert!(!t.hash_containers.contains("v"));
    }

    #[test]
    fn struct_literal_initializers() {
        let t = table("Self { windows: HashMap::with_capacity(4), n: 0 }\n");
        assert!(t.hash_containers.contains("windows"));
        assert!(!t.hash_containers.contains("n"));
    }

    #[test]
    fn nested_hash_value_types() {
        let t = table("windows: HashMap<u64, HashMap<(K, O), S>>,\nflat: HashMap<u32, f64>,\n");
        assert!(t.nested_hash.contains("windows"));
        assert!(!t.nested_hash.contains("flat"));
    }

    #[test]
    fn rng_bindings() {
        let t = table(
            "fn f(rng: &mut StdRng) { let mut local = StdRng::seed_from_u64(s); }\n\
             fn g(r: &mut impl Rng) {}\n",
        );
        assert!(t.rngs.contains("rng"));
        assert!(t.rngs.contains("local"));
        assert!(t.rngs.contains("r"));
    }

    #[test]
    fn float_idents_are_exact_f64_only() {
        let t = table("struct S { mean: f64, m2: f64, n: u64, xs: Vec<f64>, o: Option<f64> }\n");
        assert!(t.floats.contains("mean"));
        assert!(t.floats.contains("m2"));
        assert!(!t.floats.contains("n"));
        assert!(!t.floats.contains("xs"));
        assert!(!t.floats.contains("o"));
    }

    #[test]
    fn seedable_rng_trait_is_not_an_rng_value() {
        let t = table("fn f<R: SeedableRng>(x: R) {}\n");
        assert!(!t.rngs.contains("f"));
        assert!(!t.rngs.contains("x"));
    }
}
