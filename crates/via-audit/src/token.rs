//! A dependency-free Rust lexer producing a [`Token`] stream with spans.
//!
//! The lint passes used to run over sanitized *lines* and match substrings —
//! good enough for `thread_rng`, useless for "this `HashMap` binding is
//! folded into an `f64` sum three tokens later". This lexer is the single
//! source of truth the whole pass framework builds on:
//!
//! * **Tokens** — identifiers, lifetimes, integer/float/string/char
//!   literals, and (joined multi-char) punctuation, each carrying its
//!   1-indexed line, column, and brace-nesting depth.
//! * **Comments** — collected separately (never in the token stream) so the
//!   suppression module can parse `via-audit:` directives *and* verify each
//!   carries a human justification.
//! * **Rendered lines** — the source with comments blanked and string/char
//!   literal contents replaced by spaces, columns preserved. Line-based
//!   passes (substring lints, test-region brace matching) run over these,
//!   so one lexer feeds both token-aware and line-based passes.
//!
//! It is deliberately not a full parser: no `syn` offline, and the passes
//! need token adjacency and nesting, not an AST. Known approximations are
//! documented where they matter (e.g. `>>` is never joined, so generics
//! like `Vec<Vec<u32>>` lex cleanly).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `for`, `as`, names).
    Ident,
    /// Lifetime (`'a`), without the quote in `text`.
    Lifetime,
    /// Integer literal (including hex/octal/binary, `_` separators, suffix).
    Int,
    /// Float literal (has `.`, exponent, or an `f32`/`f64` suffix).
    Float,
    /// String literal (plain, raw, byte); `text` is `""` — contents are
    /// never lint-relevant and blanking them kills false positives.
    Str,
    /// Char literal; `text` is `''`.
    Char,
    /// Punctuation, with common multi-char operators joined (`::`, `->`,
    /// `=>`, `+=`, `..=`, …). `<<`/`>>` are never joined so nested generic
    /// closers lex as two `>`s.
    Punct,
}

/// One lexed token with its span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// The token's text (see [`TokenKind`] for literal conventions).
    pub text: String,
    /// 1-indexed source line of the token's first character.
    pub line: usize,
    /// 1-indexed column of the token's first character.
    pub col: usize,
    /// Brace (`{}`) nesting depth at the token. An opening `{` and its
    /// matching `}` carry the same (outer) depth.
    pub depth: u32,
}

impl Token {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when the token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// One comment, with whether it trails code on its line (`let x = 1; // c`)
/// or stands alone. Block comments contribute one entry per line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed line the comment text is on.
    pub line: usize,
    /// The comment's text without the `//` / `/*` markers.
    pub text: String,
    /// True when code precedes the comment on the same line.
    pub trailing: bool,
    /// True for doc comments (`///`, `//!`, `/**`, `/*!`). Directive parsing
    /// skips these: a `via-audit:` directive in documentation is an example,
    /// not an exception.
    pub doc: bool,
}

/// Full lexer output for one file.
#[derive(Debug)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// Code-only rendering: comments blanked, literal contents blanked,
    /// columns preserved. One entry per source line.
    pub lines: Vec<String>,
}

/// Two-character operators joined into one `Punct` token. `<<`/`>>` are
/// deliberately absent (generics), and `>=`/`<=` are safe post-rustfmt
/// (a generic closer is never glued to `=`).
const JOINED2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "|=",
    "&=", "..",
];

/// Streaming writer for the rendered code-only lines.
struct Render {
    lines: Vec<String>,
    cur: String,
}

impl Render {
    fn push(&mut self, c: char) {
        if c == '\n' {
            self.lines.push(std::mem::take(&mut self.cur));
        } else {
            self.cur.push(c);
        }
    }

    fn blank(&mut self, c: char) {
        self.push(if c == '\n' { '\n' } else { ' ' });
    }

    fn finish(mut self) -> Vec<String> {
        if !self.cur.is_empty() {
            self.lines.push(self.cur);
        }
        self.lines
    }
}

/// Lexes one file. Never fails: unterminated constructs lex as far as the
/// input allows, which is the right behavior for a linter that must keep
/// going on half-edited code.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut tokens = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut render = Render {
        lines: Vec::new(),
        cur: String::new(),
    };
    let mut line = 1usize;
    let mut col = 1usize;
    let mut depth = 0u32;
    let mut line_has_code = false;
    let mut i = 0usize;

    // A newline resets the "code seen on this line" flag; written through a
    // helper because most token kinds cannot contain `\n`, and the compiler
    // would otherwise flag the (correct) reset as dead per call site.
    fn reset_flag(flag: &mut bool) {
        *flag = false;
    }

    // Advances the cursor over one source char, keeping line/col in sync.
    macro_rules! step {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
                reset_flag(&mut line_has_code);
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            let at_line = line;
            let trailing = line_has_code;
            let doc =
                matches!(chars.get(i + 2), Some(&'/' | &'!')) && chars.get(i + 3) != Some(&'/'); // `////…` separators are plain
            while i < n && chars[i] != '\n' {
                render.blank(chars[i]);
                step!();
            }
            let text: String = chars[start..i].iter().collect();
            comments.push(Comment {
                line: at_line,
                text: text.trim_start_matches('/').trim().to_string(),
                trailing,
                doc,
            });
            continue;
        }

        // Block comment (nested per Rust rules); one Comment entry per line.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut cdepth = 0usize;
            let mut text = String::new();
            let trailing = line_has_code;
            let mut at_line = line;
            let doc =
                matches!(chars.get(i + 2), Some(&'*' | &'!')) && chars.get(i + 3) != Some(&'/'); // `/**/` is empty, not doc
            while i < n {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    cdepth += 1;
                    render.blank('/');
                    step!();
                    render.blank('*');
                    step!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    cdepth -= 1;
                    render.blank('*');
                    step!();
                    render.blank('/');
                    step!();
                    if cdepth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        comments.push(Comment {
                            line: at_line,
                            text: text.trim_matches(['*', ' ']).to_string(),
                            trailing: trailing && at_line == line,
                            doc,
                        });
                        text.clear();
                        at_line = line + 1;
                    } else {
                        text.push(chars[i]);
                    }
                    render.blank(chars[i]);
                    step!();
                }
            }
            comments.push(Comment {
                line: at_line,
                text: text.trim_matches(['*', ' ']).to_string(),
                trailing,
                doc,
            });
            continue;
        }

        // Raw (and raw byte) string literal: r"…" / r#"…"# / br#"…"#.
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if !prev_is_ident && (c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'))) {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: "\"\"".to_string(),
                    line,
                    col,
                    depth,
                });
                line_has_code = true;
                while i <= j {
                    render.push(chars[i]);
                    step!();
                }
                'raw: while i < n {
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                render.push(chars[i]);
                                step!();
                            }
                            break 'raw;
                        }
                    }
                    render.blank(chars[i]);
                    step!();
                }
                continue;
            }
        }

        // Ordinary (and byte) string literal.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_is_ident) {
            tokens.push(Token {
                kind: TokenKind::Str,
                text: "\"\"".to_string(),
                line,
                col,
                depth,
            });
            line_has_code = true;
            if c == 'b' {
                render.push('b');
                step!();
            }
            render.push('"');
            step!();
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    render.blank(chars[i]);
                    step!();
                    render.blank(chars[i]);
                    step!();
                } else if chars[i] == '"' {
                    render.push('"');
                    step!();
                    break;
                } else {
                    render.blank(chars[i]);
                    step!();
                }
            }
            continue;
        }

        // Char literal vs lifetime: 'x' / '\n' are literals; 'a is a
        // lifetime when no closing quote follows the one char.
        if c == '\'' {
            let is_escape = chars.get(i + 1) == Some(&'\\');
            let is_short = chars.get(i + 2) == Some(&'\'');
            if is_escape || is_short {
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: "''".to_string(),
                    line,
                    col,
                    depth,
                });
                line_has_code = true;
                render.push('\'');
                step!();
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        render.blank(chars[i]);
                        step!();
                        render.blank(chars[i]);
                        step!();
                    } else if chars[i] == '\'' {
                        render.push('\'');
                        step!();
                        break;
                    } else {
                        render.blank(chars[i]);
                        step!();
                    }
                }
                continue;
            }
            // Lifetime: quote + ident.
            let (l0, c0) = (line, col);
            render.push('\'');
            step!();
            let mut name = String::new();
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                name.push(chars[i]);
                render.push(chars[i]);
                step!();
            }
            tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: name,
                line: l0,
                col: c0,
                depth,
            });
            line_has_code = true;
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let (l0, c0) = (line, col);
            let mut name = String::new();
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                name.push(chars[i]);
                render.push(chars[i]);
                step!();
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: name,
                line: l0,
                col: c0,
                depth,
            });
            line_has_code = true;
            continue;
        }

        // Number literal.
        if c.is_ascii_digit() {
            let (l0, c0) = (line, col);
            let mut text = String::new();
            let mut is_float = false;
            let radix_prefix = c == '0'
                && matches!(
                    chars.get(i + 1),
                    Some(&'x' | &'o' | &'b' | &'X' | &'O' | &'B')
                );
            let digit_ok = |ch: char, hex: bool| {
                ch.is_ascii_digit() || ch == '_' || (hex && ch.is_ascii_hexdigit())
            };
            if radix_prefix {
                text.push(chars[i]);
                render.push(chars[i]);
                step!();
                let hex = matches!(chars[i], 'x' | 'X');
                text.push(chars[i]);
                render.push(chars[i]);
                step!();
                while i < n && digit_ok(chars[i], hex) {
                    text.push(chars[i]);
                    render.push(chars[i]);
                    step!();
                }
            } else {
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    text.push(chars[i]);
                    render.push(chars[i]);
                    step!();
                }
                // `1.5` is a float; `1..n` is a range; `1.method()` is rare
                // and lexed as a float-then-ident approximation we accept.
                if i < n && chars[i] == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                    is_float = true;
                    text.push('.');
                    render.push('.');
                    step!();
                    while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        text.push(chars[i]);
                        render.push(chars[i]);
                        step!();
                    }
                }
                // Exponent.
                if i < n
                    && (chars[i] == 'e' || chars[i] == 'E')
                    && chars
                        .get(i + 1)
                        .is_some_and(|&d| d.is_ascii_digit() || d == '+' || d == '-')
                {
                    is_float = true;
                    text.push(chars[i]);
                    render.push(chars[i]);
                    step!();
                    while i < n
                        && (chars[i].is_ascii_digit()
                            || chars[i] == '_'
                            || chars[i] == '+'
                            || chars[i] == '-')
                    {
                        text.push(chars[i]);
                        render.push(chars[i]);
                        step!();
                    }
                }
            }
            // Type suffix (`u64`, `f32`, …) folds into the literal token.
            if i < n && chars[i].is_alphabetic() {
                let mut suffix = String::new();
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    suffix.push(chars[j]);
                    j += 1;
                }
                if matches!(
                    suffix.as_str(),
                    "u8" | "u16"
                        | "u32"
                        | "u64"
                        | "u128"
                        | "usize"
                        | "i8"
                        | "i16"
                        | "i32"
                        | "i64"
                        | "i128"
                        | "isize"
                        | "f32"
                        | "f64"
                ) {
                    if suffix.starts_with('f') {
                        is_float = true;
                    }
                    for _ in 0..suffix.len() {
                        text.push(chars[i]);
                        render.push(chars[i]);
                        step!();
                    }
                }
            }
            tokens.push(Token {
                kind: if is_float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
                text,
                line: l0,
                col: c0,
                depth,
            });
            line_has_code = true;
            continue;
        }

        // Whitespace.
        if c.is_whitespace() {
            render.push(c);
            step!();
            continue;
        }

        // Punctuation: try 3-char, then 2-char joins, then single.
        let three: String = chars[i..n.min(i + 3)].iter().collect();
        let two: String = chars[i..n.min(i + 2)].iter().collect();
        let text = if three == "..=" {
            three
        } else if JOINED2.contains(&two.as_str()) {
            two
        } else {
            c.to_string()
        };
        if text == "}" {
            depth = depth.saturating_sub(1);
        }
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: text.clone(),
            line,
            col,
            depth,
        });
        if text == "{" {
            depth += 1;
        }
        line_has_code = true;
        for _ in 0..text.len() {
            render.push(chars[i]);
            step!();
        }
    }

    Lexed {
        tokens,
        comments,
        lines: render.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_joins() {
        assert_eq!(
            texts("let x += y::z();"),
            vec!["let", "x", "+=", "y", "::", "z", "(", ")", ";"]
        );
    }

    #[test]
    fn numbers_and_ranges() {
        let l = lex("for i in 0..10 { let f = 1.5e3; let h = 0xFF_u32; }");
        let floats: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1.5e3"]);
        assert!(l.tokens.iter().any(|t| t.is_punct("..")));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Int && t.text == "0xFF_u32"));
    }

    #[test]
    fn float_suffix_marks_float() {
        let l = lex("let x = 3f64;");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Float && t.text == "3f64"));
    }

    #[test]
    fn strings_and_comments_leave_no_tokens() {
        let l = lex("call(); // thread_rng\nlet s = \"thread_rng\";\n");
        assert!(!l.tokens.iter().any(|t| t.text.contains("thread_rng")));
        assert!(!l.lines.iter().any(|x| x.contains("thread_rng")));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].text, "thread_rng");
    }

    #[test]
    fn rendered_lines_preserve_columns() {
        let l = lex("let a = 1; /* gone */ let b = 2;\n");
        assert_eq!(l.lines.len(), 1);
        assert!(l.lines[0].contains("let a = 1;"));
        assert!(l.lines[0].contains("let b = 2;"));
        assert!(!l.lines[0].contains("gone"));
        // Columns survive blanking: `let b` starts where it did in source.
        assert_eq!(
            l.lines[0].find("let b"),
            "let a = 1; /* gone */ let b = 2;".find("let b")
        );
    }

    #[test]
    fn depth_tracks_braces() {
        let l = lex("fn f() { if x { y(); } }");
        let y = l.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.depth, 2);
        let f = l.tokens.iter().find(|t| t.is_ident("f")).unwrap();
        assert_eq!(f.depth, 0);
        // Matching braces share the outer depth.
        let opens: Vec<_> = l.tokens.iter().filter(|t| t.is_punct("{")).collect();
        let closes: Vec<_> = l.tokens.iter().filter(|t| t.is_punct("}")).collect();
        assert_eq!(opens[0].depth, closes[1].depth);
        assert_eq!(opens[1].depth, closes[0].depth);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn nested_generics_lex_as_single_closers() {
        let l = lex("let v: Vec<Vec<u32>> = Vec::new();");
        let closers = l.tokens.iter().filter(|t| t.is_punct(">")).count();
        assert_eq!(closers, 2, "`>>` must not be joined");
    }

    #[test]
    fn raw_strings_blank_contents() {
        let l = lex("let s = r#\"multi\nline thread_rng\"#; next();\n");
        assert_eq!(l.lines.len(), 2);
        assert!(!l.lines[1].contains("thread_rng"));
        assert!(l.lines[1].contains("next();"));
    }

    #[test]
    fn block_comments_collect_per_line() {
        let l = lex("/* first\nsecond via-audit: allow(x) */ code();\n");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[1].text.contains("via-audit"));
    }
}
