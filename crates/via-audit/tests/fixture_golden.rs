//! Golden-corpus test for the lint fixtures.
//!
//! Every lint has a fixture file under `tests/fixtures/` holding a positive
//! case, a suppressed case, and a clean case. Each file's first line is a
//! `// audit-fixture: kind=…` header naming the [`FileKind`] flags it is
//! audited under. The corpus findings, rendered through the JSON report,
//! must match `tests/fixtures/findings.json` byte-for-byte.
//!
//! Regenerate the golden file after an intentional lint change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p via-audit --test fixture_golden
//! ```

// Test-harness helpers outside #[test] fns: panicking on a broken corpus
// is the correct behavior here, as in any test.
#![allow(clippy::expect_used)]

use std::path::PathBuf;

use via_audit::lints::{FileKind, Finding};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses the `// audit-fixture: kind=sim,hot,socket,lib` header.
fn fixture_kind(path: &std::path::Path, src: &str) -> FileKind {
    let header = src.lines().next().unwrap_or_default();
    let spec = header
        .strip_prefix("// audit-fixture: kind=")
        .unwrap_or_else(|| {
            panic!(
                "{} must start with `// audit-fixture: kind=…`, got {header:?}",
                path.display()
            )
        });
    let flags: Vec<&str> = spec.split(',').map(str::trim).collect();
    for f in &flags {
        assert!(
            matches!(*f, "sim" | "hot" | "socket" | "lib"),
            "{}: unknown fixture kind flag {f:?}",
            path.display()
        );
    }
    FileKind {
        sim_crate: flags.contains(&"sim"),
        hot_path: flags.contains(&"hot"),
        socket_crate: flags.contains(&"socket"),
        lib_code: flags.contains(&"lib"),
    }
}

/// Audits the whole corpus, findings sorted the way `audit_workspace` sorts.
fn corpus_findings() -> Vec<Finding> {
    let dir = fixtures_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir must exist")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "fixture corpus is empty");

    let mut findings = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).expect("fixture must be readable");
        let name = format!(
            "fixtures/{}",
            path.file_name()
                .and_then(|n| n.to_str())
                .expect("utf-8 name")
        );
        findings.extend(via_audit::audit_source(
            &name,
            &src,
            fixture_kind(path, &src),
        ));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    findings
}

#[test]
fn corpus_matches_golden_findings_json() {
    let findings = corpus_findings();
    let got = via_audit::report::to_json(&findings);
    let golden = fixtures_dir().join("findings.json");

    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&golden, format!("{got}\n")).expect("write golden");
        return;
    }

    let want = std::fs::read_to_string(&golden).unwrap_or_default();
    assert_eq!(
        want.trim_end(),
        got.trim_end(),
        "fixture corpus drifted from findings.json; if the lint change is \
         intentional, regenerate with UPDATE_GOLDEN=1 cargo test -p via-audit \
         --test fixture_golden"
    );
}

/// Every registered lint must appear in the corpus findings at least once —
/// a lint with no positive fixture has no regression net.
#[test]
fn every_lint_has_a_positive_fixture() {
    let findings = corpus_findings();
    for lint in via_audit::passes::known_lints() {
        assert!(
            findings.iter().any(|f| f.lint == lint),
            "no fixture finding exercises lint `{lint}`"
        );
    }
}

/// Suppressed fixture cases must actually suppress: no fixture may report a
/// non-stale finding on the line directly below a justified allow. (The
/// stale-suppression fixture deliberately reports directive-audit findings;
/// those carry the stale-suppression lint and are exempt here.)
#[test]
fn suppressed_cases_stay_suppressed() {
    let findings = corpus_findings();
    let dir = fixtures_dir();
    for f in &findings {
        if f.lint == "stale-suppression" {
            continue;
        }
        let path = dir.join(f.file.trim_start_matches("fixtures/"));
        let src = std::fs::read_to_string(&path).expect("fixture must be readable");
        let prev = f.line.checked_sub(2).and_then(|i| src.lines().nth(i));
        assert!(
            !prev.is_some_and(|l| l.contains(&format!("allow({})", f.lint))),
            "{}:{} reports `{}` despite an allow directly above",
            f.file,
            f.line,
            f.lint
        );
    }
}
