// audit-fixture: kind=sim,lib
//! `map-iteration-order` corpus: hash iteration into order-sensitive sinks.

pub fn positive_chain(m: &HashMap<u32, f64>) -> f64 {
    let total: f64 = m.values().sum();
    total
}

pub fn positive_loop(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(*k);
    }
    out
}

pub fn suppressed(m: &HashMap<u32, f64>) -> Vec<u32> {
    // The caller treats this as a set membership probe: it only checks
    // `contains`, so element order cannot reach any result.
    // via-audit: allow(map-iteration-order)
    let probe: Vec<u32> = m.keys().copied().collect();
    probe
}

pub fn clean_sorted(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn clean_order_independent(m: &HashMap<u32, f64>) -> HashMap<u32, u64> {
    m.iter().map(|(k, v)| (*k, v.to_bits())).collect::<HashMap<u32, u64>>()
}
