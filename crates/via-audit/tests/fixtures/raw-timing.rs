// audit-fixture: kind=hot,lib
//! `raw-timing` corpus: bare wall-clock reads on the replay hot path.

pub fn positive() -> Instant {
    Instant::now()
}

pub fn suppressed() -> Instant {
    // One-time startup stamp taken before the replay loop begins; it
    // never lands in recorded per-call state.
    // via-audit: allow(raw-timing)
    Instant::now()
}

pub fn clean() -> f64 {
    let sw = Stopwatch::started();
    sw.elapsed_ms()
}
