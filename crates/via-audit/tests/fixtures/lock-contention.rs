// audit-fixture: kind=hot,lib
//! `lock-contention` corpus: whole-map mutexes on the hot path.

pub struct Positive {
    pub cells: Mutex<HashMap<u64, f64>>,
}

pub struct Suppressed {
    // Written once at startup before any worker exists, then read-only;
    // the lock is never contended after initialization.
    // via-audit: allow(lock-contention)
    pub boot: Mutex<BTreeMap<u64, f64>>,
}

pub struct Clean {
    pub shards: [RwLock<Vec<(u64, f64)>>; 16],
}
