// audit-fixture: kind=sim,lib
//! `rng-discipline` corpus: constant seeds, xor splitting, RNG clones.

pub fn positive_constant_seed() -> StdRng {
    StdRng::seed_from_u64(42)
}

pub fn positive_xor_split(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x9e37_79b9)
}

pub fn positive_clone(rng: &mut StdRng) -> StdRng {
    rng.clone()
}

pub fn suppressed() -> StdRng {
    // Golden-fixture generator: the constant IS the fixture identity, and
    // the stream is consumed whole by exactly one caller.
    // via-audit: allow(rng-discipline)
    StdRng::seed_from_u64(7)
}

pub fn clean(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed::derive(seed, "fixture-stream"))
}
