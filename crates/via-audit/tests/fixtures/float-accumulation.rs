// audit-fixture: kind=sim,lib
//! `float-accumulation` corpus: order-sensitive float folds in merge paths.

pub struct Stats {
    pub mean: f64,
    pub n: u64,
}

impl Stats {
    pub fn merge(&mut self, other: &Stats) {
        self.mean += other.mean;
        self.n += other.n;
    }

    // Shards are combined in ascending shard-index order by the one
    // caller, so the operation sequence is fixed per shard count.
    // via-audit: ordered-merge(pairwise update applied in shard-index order)
    pub fn merge_ordered(&mut self, other: &Stats) {
        self.mean += other.mean;
        self.n += other.n;
    }

    pub fn merge_counts(&mut self, other: &Stats) {
        self.n += other.n;
    }
}
