// audit-fixture: kind=sim,lib
//! `stale-suppression` corpus: the audit of the directives themselves.

// Stale: the unwrap this once covered was rewritten as a match long ago.
// via-audit: allow(panic)
pub fn positive_stale(x: Option<u32>) -> u32 {
    match x {
        Some(v) => v,
        None => 0,
    }
}

// Unknown lint name (typo'd): nothing can ever match it.
// via-audit: allow(panics)
pub fn positive_unknown(x: Option<u32>) -> u32 {
    x.map_or(0, |v| v)
}

pub fn positive_bare(x: Option<u32>) -> u32 {
    // via-audit: allow(panic)
    x.unwrap()
}

pub fn clean_justified(x: Option<u32>) -> u32 {
    // Keys are inserted for every pair at construction and never removed,
    // so lookup failure is a construction bug worth crashing on.
    // via-audit: allow(panic)
    x.unwrap()
}
