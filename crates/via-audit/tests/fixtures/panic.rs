// audit-fixture: kind=sim,lib
//! `panic` corpus: `.unwrap()` / `.expect(` denies plus the indexing warn.

pub fn positive(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn positive_expect(x: Option<u32>) -> u32 {
    x.expect("present by construction")
}

pub fn warns_on_indexing(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // The map is seeded with this key in `new()` and keys are never
    // removed; absence is a construction bug worth crashing on.
    // via-audit: allow(panic)
    x.unwrap()
}

pub fn clean(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
