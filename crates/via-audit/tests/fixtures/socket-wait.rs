// audit-fixture: kind=socket,lib
//! `socket-wait` corpus: unbounded socket waits in testbed library code.

pub fn positive(listener: &TcpListener) -> std::io::Result<TcpStream> {
    let (stream, _) = listener.accept()?;
    Ok(stream)
}

pub fn positive_connect(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}

pub fn suppressed(listener: &TcpListener) -> std::io::Result<TcpStream> {
    // The supervisor kills this helper process after 5 s; the OS-level
    // wait is bounded by the process lifetime, not by this call.
    // via-audit: allow(socket-wait)
    let (stream, _) = listener.accept()?;
    Ok(stream)
}

pub fn clean(listener: &TcpListener, deadline: Instant) -> std::io::Result<TcpStream> {
    accept_deadline(listener, deadline)
}
