// audit-fixture: kind=lib
//! `nan-cmp` corpus: NaN-unsafe float comparisons (applies to every crate).

pub fn positive(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn suppressed(xs: &mut [f64]) {
    // Inputs are clamped percentiles in [0, 100]; a NaN here means the
    // clamp upstream is broken and panicking is the right response.
    // via-audit: allow(nan-cmp)
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn clean(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
