// audit-fixture: kind=sim,lib
//! `nondeterminism` corpus: entropy / wall-clock sources in sim code.

pub fn positive(n: u64) -> u64 {
    let mut rng = rand::thread_rng();
    n.wrapping_add(rng.random())
}

pub fn suppressed() -> u8 {
    // Log-color jitter only: this stream never feeds recorded results,
    // and the palette resets every run.
    // via-audit: allow(nondeterminism)
    let mut palette = rand::thread_rng();
    palette.random()
}

pub fn clean(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed::derive(seed, "fixture"));
    rng.random()
}
