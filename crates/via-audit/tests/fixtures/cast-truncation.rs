// audit-fixture: kind=hot,lib
//! `cast-truncation` corpus: narrowing `as` casts on the hot path.

pub fn positive(n: usize) -> u32 {
    n as u32
}

pub fn suppressed(flag: bool) -> u8 {
    // A bool is exactly 0 or 1, so this narrowing can never truncate.
    // via-audit: allow(cast-truncation)
    flag as u8
}

pub fn clean_fallback(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

pub fn clean_widening(x: u32) -> u64 {
    u64::from(x)
}
