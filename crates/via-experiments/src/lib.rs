//! Shared infrastructure for the experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` (see
//! DESIGN.md §4 for the index). This library provides the common pieces:
//! standard world/trace construction, the output directory layout, result
//! serialization, and small table-printing helpers so each binary prints the
//! same rows the paper reports.
//!
//! Binaries accept an optional `--scale tiny|small|paper` argument (default
//! `small` — minutes, not hours, on a laptop), an optional `--seed N`, and
//! an optional `--workers N` (replay worker threads; 0 = one per core;
//! results are identical for any value).

// Experiment-driver code: a failure to create the output directory or write
// a result file should abort the run with the OS error — there is no caller
// to recover. The unwrap/expect denies target the simulation libraries;
// via-audit exempts this crate too (see crates/via-audit/src/lib.rs).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::path::{Path, PathBuf};
use via_core::replay::{ReplayConfig, ReplaySim};
use via_core::strategy::StrategyKind;
use via_core::Outcome;
use via_model::metrics::Metric;
use via_netsim::{World, WorldConfig};
use via_trace::{Trace, TraceConfig, TraceGenerator};

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: CI smoke runs.
    Tiny,
    /// Tens of seconds: the default.
    Small,
    /// Minutes: full paper-shaped run (~1 M calls).
    Paper,
}

impl Scale {
    /// Parses `tiny|small|paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// World preset for this scale.
    pub fn world_config(self) -> WorldConfig {
        match self {
            Scale::Tiny => WorldConfig::tiny(),
            Scale::Small => WorldConfig::small(),
            Scale::Paper => WorldConfig::paper_scale(),
        }
    }

    /// Trace preset for this scale.
    pub fn trace_config(self) -> TraceConfig {
        match self {
            Scale::Tiny => TraceConfig::tiny(),
            Scale::Small => TraceConfig::small(),
            Scale::Paper => TraceConfig::paper_scale(),
        }
    }
}

/// Parsed common CLI arguments.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Selected scale.
    pub scale: Scale,
    /// Experiment seed.
    pub seed: u64,
    /// Replay worker threads (0 = one per core). Only affects wall-clock:
    /// replay results are byte-identical for any value.
    pub workers: usize,
}

impl Args {
    /// Parses `--scale`, `--seed`, and `--workers` from `std::env::args`.
    pub fn parse() -> Args {
        let mut scale = Scale::Small;
        let mut seed = 2016; // SIGCOMM 2016
        let mut workers = 0;
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    scale = argv
                        .get(i + 1)
                        .and_then(|s| Scale::parse(s))
                        .unwrap_or_else(|| panic!("--scale expects tiny|small|paper"));
                    i += 2;
                }
                "--seed" => {
                    seed = argv
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed expects an integer"));
                    i += 2;
                }
                "--workers" => {
                    workers = argv
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--workers expects an integer"));
                    i += 2;
                }
                other => panic!(
                    "unknown argument {other}; use --scale tiny|small|paper, --seed N, --workers N"
                ),
            }
        }
        Args {
            scale,
            seed,
            workers,
        }
    }
}

/// A generated experiment environment: world + trace.
pub struct Env {
    /// The synthetic world.
    pub world: World,
    /// The call trace over it.
    pub trace: Trace,
    /// The seed everything derives from.
    pub seed: u64,
    /// Replay worker threads (0 = one per core).
    pub workers: usize,
}

/// Builds the standard environment for an experiment.
pub fn build_env(args: Args) -> Env {
    let world = World::generate(&args.scale.world_config(), args.seed);
    let trace = TraceGenerator::new(&world, args.scale.trace_config(), args.seed).generate();
    Env {
        world,
        trace,
        seed: args.seed,
        workers: args.workers,
    }
}

impl Env {
    /// Runs one strategy with the given objective metric, standard config.
    pub fn run(&self, kind: StrategyKind, objective: Metric) -> Outcome {
        let cfg = ReplayConfig {
            objective,
            seed: self.seed,
            workers: self.workers,
            ..ReplayConfig::default()
        };
        ReplaySim::new(&self.world, &self.trace, cfg).run(kind)
    }

    /// Runs one strategy with a custom replay config.
    pub fn run_with(&self, kind: StrategyKind, cfg: ReplayConfig) -> Outcome {
        ReplaySim::new(&self.world, &self.trace, cfg).run(kind)
    }

    /// Runs one strategy through the streaming engine, feeding this
    /// environment's trace record-by-record (a
    /// [`via_trace::stream::TraceRecords`] source). Per-call outcomes are
    /// not materialized — every summary lives in [`Outcome::aggregate`],
    /// byte-identical to what [`Env::run`] computes for the same inputs.
    pub fn run_streamed(&self, kind: StrategyKind, objective: Metric) -> Outcome {
        let cfg = ReplayConfig {
            objective,
            seed: self.seed,
            workers: self.workers,
            collect_calls: false,
            ..ReplayConfig::default()
        };
        ReplaySim::streaming(&self.world, cfg)
            .run_stream(via_trace::stream::TraceRecords::new(&self.trace), kind)
            .expect("an in-memory record source cannot fail to decode")
    }

    /// Like [`Env::run`], but with the via-obs metric sink enabled: the
    /// outcome carries a deterministic [`via_obs::MetricsSnapshot`] (see
    /// [`write_metrics`]) at a modest replay-throughput cost (tracked by
    /// the `metrics_overhead` bench case).
    pub fn run_observed(&self, kind: StrategyKind, objective: Metric) -> Outcome {
        let cfg = ReplayConfig {
            objective,
            seed: self.seed,
            workers: self.workers,
            metrics: true,
            ..ReplayConfig::default()
        };
        ReplaySim::new(&self.world, &self.trace, cfg).run(kind)
    }
}

/// Writes an outcome's metrics snapshot (if one was recorded — see
/// [`Env::run_observed`]) as `experiments/out/<name>.metrics.json` and
/// returns the path. The file holds only the deterministic core, so it is
/// byte-identical across reruns and worker counts and safe to diff in CI.
pub fn write_metrics(name: &str, outcome: &Outcome) -> Option<PathBuf> {
    outcome
        .obs
        .as_ref()
        .map(|snap| write_json(&format!("{name}.metrics"), snap))
}

/// The §5.1 evaluation filter: "for statistical confidence, in each 24-hour
/// window, we focus on AS pairs where there are at least 10 calls" (the paper
/// keeps 32 M of 430 M calls this way). Also skips a warm-up prefix of
/// windows so learning strategies are past their cold start, as the paper's
/// seven-month replay naturally is.
///
/// Returns one flag per trace record: `true` if the call participates in
/// evaluation. Apply the same mask to every strategy's outcome.
pub fn eligible_calls(
    trace: &Trace,
    window: via_model::WindowLen,
    min_calls_per_window: usize,
    warmup_windows: u64,
) -> Vec<bool> {
    use std::collections::HashMap;
    let mut counts: HashMap<(via_model::AsPair, u64), usize> = HashMap::new();
    for r in &trace.records {
        *counts
            .entry((r.as_pair(), window.window_of(r.t).index))
            .or_default() += 1;
    }
    trace
        .records
        .iter()
        .map(|r| {
            let w = window.window_of(r.t).index;
            w >= warmup_windows && counts[&(r.as_pair(), w)] >= min_calls_per_window
        })
        .collect()
}

impl Env {
    /// Standard evaluation mask for this environment: the §5.1 density
    /// filter at the scale-appropriate threshold plus a 2-window warm-up.
    pub fn eligible(&self, scale: Scale) -> Vec<bool> {
        let min_calls = match scale {
            Scale::Tiny => 5,
            Scale::Small => 10,
            Scale::Paper => 10,
        };
        eligible_calls(&self.trace, via_model::WindowLen::DAY, min_calls, 2)
    }
}

/// PNR of an outcome restricted to the eligible mask.
pub fn pnr_masked(
    outcome: &Outcome,
    mask: &[bool],
    thresholds: &via_model::Thresholds,
) -> via_quality::PnrReport {
    via_quality::PnrReport::from_calls(
        outcome
            .calls
            .iter()
            .filter(|c| mask[c.call_index as usize])
            .map(|c| &c.metrics),
        thresholds,
    )
}

/// Metric values of an outcome restricted to the eligible mask.
pub fn metric_values_masked(outcome: &Outcome, mask: &[bool], metric: Metric) -> Vec<f64> {
    outcome
        .calls
        .iter()
        .filter(|c| mask[c.call_index as usize])
        .map(|c| c.metrics[metric])
        .collect()
}

/// Output directory for experiment artifacts (`experiments/out`), created on
/// demand.
pub fn out_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("experiments")
        .join("out");
    std::fs::create_dir_all(&dir).expect("create output dir");
    dir
}

/// Writes an experiment's result object as pretty JSON under
/// `experiments/out/<name>.json` and returns the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = out_dir().join(format!("{name}.json"));
    let file = std::fs::File::create(&path).expect("create result file");
    serde_json::to_writer_pretty(file, value).expect("serialize result");
    path
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown table header (and separator).
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Formats a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn env_builds_at_tiny_scale() {
        let env = build_env(Args {
            scale: Scale::Tiny,
            seed: 1,
            workers: 2,
        });
        assert!(!env.trace.is_empty());
        assert!(env.trace.is_chronological());
    }

    #[test]
    fn streamed_run_matches_materialized_aggregate() {
        let env = build_env(Args {
            scale: Scale::Tiny,
            seed: 3,
            workers: 2,
        });
        let a = env.run(StrategyKind::Via, Metric::Rtt);
        let b = env.run_streamed(StrategyKind::Via, Metric::Rtt);
        assert!(b.calls.is_empty(), "streamed runs skip per-call outcomes");
        assert_eq!(a.aggregate, b.aggregate);
        assert_eq!(a.controller_contacts, b.controller_contacts);
    }

    #[test]
    fn out_dir_exists_after_call() {
        let d = out_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}
