//! Figure 6: temporal patterns — persistence and prevalence of high-PNR AS
//! pairs.
//!
//! The paper labels an AS pair high-PNR on a day if its PNR is ≥ 1.5× the
//! day's overall PNR, then reports two skewed distributions: 10–20 % of
//! pairs are essentially always bad, while 60–70 % are bad less than 30 % of
//! the time with episodes no longer than a day — motivating *dynamic* relay
//! selection.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_experiments::{build_env, header, pct, row, write_json, Args, Scale};
use via_model::metrics::Thresholds;
use via_model::stats::Cdf;

#[derive(Serialize)]
struct Fig06 {
    persistence_cdf: Vec<(f64, f64)>,
    prevalence_cdf: Vec<(f64, f64)>,
    pairs: usize,
    always_bad_fraction: f64,
    rarely_bad_fraction: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let min_calls = match args.scale {
        Scale::Tiny => 2,
        Scale::Small => 4,
        Scale::Paper => 10,
    };
    let tp = via_trace::analysis::temporal_patterns(&env.trace, &Thresholds::default(), min_calls);
    assert!(!tp.prevalence.is_empty(), "no qualifying pairs");

    let persistence = Cdf::from_samples(tp.persistence.iter().copied()).expect("non-empty");
    let prevalence = Cdf::from_samples(tp.prevalence.iter().copied()).expect("non-empty");

    println!("# Figure 6a: persistence of high-PNR pairs (median run length, days)\n");
    header(&["days", "CDF"]);
    let mut p_cdf = Vec::new();
    for d in [0.0, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0] {
        let f = persistence.fraction_at_or_below(d);
        row(&[format!("{d:.0}"), pct(f)]);
        p_cdf.push((d, f));
    }

    println!("\n# Figure 6b: prevalence of high-PNR pairs (fraction of days)\n");
    header(&["prevalence", "CDF"]);
    let mut v_cdf = Vec::new();
    for p in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let f = prevalence.fraction_at_or_below(p);
        row(&[format!("{p:.1}"), pct(f)]);
        v_cdf.push((p, f));
    }

    let always = 1.0 - prevalence.fraction_at_or_below(0.9);
    let rarely = prevalence.fraction_at_or_below(0.3);
    println!(
        "\nAlways-bad pairs (prevalence > 0.9): {} (paper: 10-20%)\n\
         Rarely-bad pairs (prevalence < 0.3): {} (paper: 60-70%)",
        pct(always),
        pct(rarely)
    );

    let path = write_json(
        "fig06",
        &Fig06 {
            persistence_cdf: p_cdf,
            prevalence_cdf: v_cdf,
            pairs: tp.prevalence.len(),
            always_bad_fraction: always,
            rarely_bad_fraction: rarely,
        },
    );
    println!("Wrote {}", path.display());
}
