//! Figure 2: CDFs of RTT, loss rate, and jitter over default-routed calls.
//!
//! The paper picks the poor-performance thresholds (320 ms, 1.2 %, 12 ms) so
//! that a bit over 15 % of calls cross each; the generative model is
//! calibrated to the same tail mass. Prints quantiles of each metric and the
//! fraction beyond each threshold.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_experiments::{build_env, header, pct, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};
use via_trace::analysis::metric_cdf;

#[derive(Serialize)]
struct Fig02 {
    metric: String,
    quantiles: Vec<(f64, f64)>,
    threshold: f64,
    fraction_beyond_threshold: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();

    println!("# Figure 2: distribution of network metrics on default paths\n");
    header(&[
        "metric",
        "p10",
        "p25",
        "p50",
        "p75",
        "p90",
        "p95",
        "p99",
        "threshold",
        "beyond",
    ]);

    let mut results = Vec::new();
    for metric in Metric::ALL {
        let cdf = metric_cdf(&env.trace, metric).expect("non-empty trace");
        let qs = [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99];
        let quantiles: Vec<(f64, f64)> = qs.iter().map(|&q| (q, cdf.quantile(q))).collect();
        let threshold = thresholds.for_metric(metric);
        let beyond = cdf.fraction_at_or_above(threshold);

        row(&[
            metric.to_string(),
            format!("{:.1}", quantiles[0].1),
            format!("{:.1}", quantiles[1].1),
            format!("{:.1}", quantiles[2].1),
            format!("{:.1}", quantiles[3].1),
            format!("{:.1}", quantiles[4].1),
            format!("{:.1}", quantiles[5].1),
            format!("{:.1}", quantiles[6].1),
            format!("{:.1}{}", threshold, metric.unit()),
            pct(beyond),
        ]);

        results.push(Fig02 {
            metric: metric.to_string(),
            quantiles,
            threshold,
            fraction_beyond_threshold: beyond,
        });
    }

    let path = write_json("fig02", &results);
    println!("\nPaper: ≥15% of calls beyond each threshold.");
    println!("Wrote {}", path.display());
}
