//! Figure 17: sensitivity of VIA to its control granularities.
//!
//! (a) Spatial granularity: country-level vs AS-level vs finer-than-AS keys.
//!     Paper: coarser than AS loses improvement (ISPs within a country have
//!     different optimal relays); finer than AS doesn't help (data becomes
//!     too sparse to predict).
//! (b) Temporal granularity: the control period T. Paper: T beyond a day
//!     loses improvement; much finer adds little.
//! (c) Relay deployment: dropping the least-used half of the relay fleet
//!     barely hurts — benefit per relay is highly skewed.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::collections::HashMap;
use via_core::replay::{ReplayConfig, SpatialGranularity};
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, pnr_masked, row, write_json, Args};
use via_model::ids::RelayId;
use via_model::metrics::{Metric, Thresholds};
use via_model::time::WindowLen;

#[derive(Serialize)]
struct Fig17 {
    spatial: Vec<(String, f64)>,
    temporal: Vec<(String, f64)>,
    relay_ablation: Vec<(String, f64)>,
    default_pnr: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);
    let objective = Metric::Rtt;

    let base_cfg = ReplayConfig {
        objective,
        seed: env.seed,
        ..ReplayConfig::default()
    };
    let default_pnr = pnr_masked(
        &env.run(StrategyKind::Default, objective),
        &mask,
        &thresholds,
    )
    .any;
    println!("default PNR (at least one bad) = {default_pnr:.3}\n");

    // (a) Spatial granularity.
    println!("# Figure 17a: spatial decision granularity\n");
    header(&["granularity", "VIA PNR (any)"]);
    let mut spatial = Vec::new();
    for (label, g) in [
        ("country", SpatialGranularity::Country),
        ("AS pair (paper default)", SpatialGranularity::As),
        (
            "/20-like (4 buckets per AS)",
            SpatialGranularity::SubAs { buckets: 4 },
        ),
        (
            "/24-like (16 buckets per AS)",
            SpatialGranularity::SubAs { buckets: 16 },
        ),
    ] {
        let cfg = ReplayConfig {
            granularity: g,
            ..base_cfg.clone()
        };
        let pnr = pnr_masked(&env.run_with(StrategyKind::Via, cfg), &mask, &thresholds).any;
        row(&[label.to_string(), format!("{pnr:.3}")]);
        spatial.push((label.to_string(), pnr));
    }

    // (b) Temporal granularity.
    println!("\n# Figure 17b: control period T\n");
    header(&["T (hours)", "VIA PNR (any)"]);
    let mut temporal = Vec::new();
    for hours in [6u64, 12, 24, 48, 96] {
        let cfg = ReplayConfig {
            window: WindowLen::hours(hours),
            ..base_cfg.clone()
        };
        let pnr = pnr_masked(&env.run_with(StrategyKind::Via, cfg), &mask, &thresholds).any;
        row(&[hours.to_string(), format!("{pnr:.3}")]);
        temporal.push((format!("{hours}h"), pnr));
    }

    // (c) Relay-fleet ablation: rank relays by VIA's usage, drop the least
    // used.
    println!("\n# Figure 17c: dropping the least-used relays\n");
    let full = env.run_with(StrategyKind::Via, base_cfg.clone());
    let mut usage: HashMap<RelayId, usize> = HashMap::new();
    for c in &full.calls {
        for r in c.option.relays() {
            *usage.entry(r).or_default() += 1;
        }
    }
    let mut ranked: Vec<RelayId> = env.world.relays.iter().map(|r| r.id).collect();
    ranked.sort_by_key(|r| std::cmp::Reverse(usage.get(r).copied().unwrap_or(0)));

    header(&["fleet", "VIA PNR (any)"]);
    let full_pnr = pnr_masked(&full, &mask, &thresholds).any;
    row(&["all relays".into(), format!("{full_pnr:.3}")]);
    let mut relay_ablation = vec![("all relays".to_string(), full_pnr)];
    for keep_frac in [0.75, 0.5, 0.25] {
        let keep = ((ranked.len() as f64 * keep_frac).round() as usize).max(1);
        let cfg = ReplayConfig {
            allowed_relays: Some(ranked[..keep].to_vec()),
            ..base_cfg.clone()
        };
        let pnr = pnr_masked(&env.run_with(StrategyKind::Via, cfg), &mask, &thresholds).any;
        let label = format!("top {:.0}% most-used ({keep})", keep_frac * 100.0);
        row(&[label.clone(), format!("{pnr:.3}")]);
        relay_ablation.push((label, pnr));
    }
    println!("\nPaper: removing 50% of the least-used relays causes little drop in gains.");

    let path = write_json(
        "fig17",
        &Fig17 {
            spatial,
            temporal,
            relay_ablation,
            default_pnr,
        },
    );
    println!("Wrote {}", path.display());
}
