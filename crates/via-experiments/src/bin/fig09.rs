//! Figure 9: how long does the oracle's best relaying option last?
//!
//! For every AS pair in the trace, compute the oracle's per-day best option
//! over the horizon and measure the median run length of identical
//! consecutive choices. Paper: the best option changes within 2 days for
//! 30 % of pairs, and only 20 % keep the same optimum for > 20 days —
//! the case for *dynamic* selection.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::collections::HashSet;
use via_experiments::{build_env, header, pct, row, write_json, Args};
use via_model::metrics::Metric;
use via_model::stats::Cdf;
use via_model::time::{SimTime, SECS_PER_DAY};

#[derive(Serialize)]
struct Fig09 {
    cdf: Vec<(f64, f64)>,
    pairs: usize,
    lt2_days: f64,
    gt20_days: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let days = env.trace.days;
    let objective = Metric::Rtt;

    // Unique AS pairs seen in the trace.
    let pairs: HashSet<(via_model::AsId, via_model::AsId)> = env
        .trace
        .records
        .iter()
        .map(|r| {
            let p = r.as_pair();
            (p.lo, p.hi)
        })
        .collect();

    let mut medians = Vec::new();
    for &(a, b) in &pairs {
        if a == b {
            continue; // intra-AS: direct is trivially stable
        }
        let options = env.world.candidate_options(a, b);
        let mut choices = Vec::with_capacity(days as usize);
        for d in 0..days {
            let t = SimTime(d * SECS_PER_DAY + SECS_PER_DAY / 2);
            let best = options
                .iter()
                .min_by(|&&x, &&y| {
                    let mx = env.world.perf().option_mean(a, b, x, t)[objective];
                    let my = env.world.perf().option_mean(a, b, y, t)[objective];
                    mx.total_cmp(&my)
                })
                .copied()
                .expect("non-empty options");
            choices.push(best);
        }
        // Run lengths of identical consecutive choices.
        let mut runs = Vec::new();
        let mut run = 1u64;
        for w in choices.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                runs.push(run as f64);
                run = 1;
            }
        }
        runs.push(run as f64);
        medians.push(via_model::stats::percentile(&runs, 50.0).unwrap());
    }

    let cdf = Cdf::from_samples(medians.iter().copied()).expect("pairs exist");
    println!("# Figure 9: duration the oracle's best option persists (per AS pair)\n");
    header(&["days", "CDF of pairs"]);
    let mut points = Vec::new();
    for d in [1.0, 2.0, 3.0, 5.0, 10.0, 20.0, days as f64] {
        let f = cdf.fraction_at_or_below(d);
        row(&[format!("{d:.0}"), pct(f)]);
        points.push((d, f));
    }

    let lt2 = cdf.fraction_at_or_below(2.0);
    let gt20 = 1.0 - cdf.fraction_at_or_below(20.0);
    println!(
        "\nBest option lasts < 2 days for {} of pairs (paper: 30%); \
         > 20 days for {} (paper: 20%).",
        pct(lt2),
        pct(gt20)
    );

    let path = write_json(
        "fig09",
        &Fig09 {
            cdf: points,
            pairs: medians.len(),
            lt2_days: lt2,
            gt20_days: gt20,
        },
    );
    println!("Wrote {}", path.display());
}
