//! Table 1: dataset summary (calls, users, ASes, countries) plus the §2.1
//! composition statistics (international / inter-AS / wireless fractions).

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use via_experiments::{build_env, header, pct, row, write_json, Args};
use via_trace::analysis::dataset_summary;

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let s = dataset_summary(&env.trace);

    println!("# Table 1: dataset summary\n");
    header(&["statistic", "synthetic trace", "paper"]);
    row(&["calls".into(), s.calls.to_string(), "430M".into()]);
    row(&["users".into(), s.users.to_string(), "135M".into()]);
    row(&["ASes".into(), s.ases.to_string(), "1.9K".into()]);
    row(&[
        "countries/regions".into(),
        s.countries.to_string(),
        "126".into(),
    ]);
    row(&["days".into(), s.days.to_string(), "197".into()]);
    row(&[
        "international".into(),
        pct(s.international_fraction),
        "46.6%".into(),
    ]);
    row(&["inter-AS".into(), pct(s.inter_as_fraction), "80.7%".into()]);
    row(&["wireless".into(), pct(s.wireless_fraction), "83%".into()]);

    let path = write_json("table1", &s);
    println!("\nWrote {}", path.display());
}
