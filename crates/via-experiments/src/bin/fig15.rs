//! Figure 15: ablating VIA's two guided-exploration modifications (§5.3).
//!
//! 1. Dynamic confidence-closure top-k vs a fixed top-2.
//! 2. Outlier-robust reward normalization vs raw UCB1 rewards.
//!
//! Paper: with the "at least one bad" metric, full VIA reduces PNR by 24 %
//! vs 15 % for fixed top-2 (loss PNR: 44 % vs 26 %) — each modification
//! contributes.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, pnr_masked, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};
use via_quality::relative_improvement;

#[derive(Serialize)]
struct Fig15 {
    /// variant → (rtt, loss, jitter, any) PNR reductions (%).
    rows: Vec<(String, [f64; 4])>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);

    let default_run = env.run(StrategyKind::Default, Metric::Rtt);
    let default_pnr = pnr_masked(&default_run, &mask, &thresholds);

    let variants = [
        ("via (dynamic top-k + normalized)", StrategyKind::Via),
        ("fixed top-2", StrategyKind::ViaFixedTopK { k: 2 }),
        ("fixed top-4", StrategyKind::ViaFixedTopK { k: 4 }),
        ("raw rewards (original UCB1)", StrategyKind::ViaRawReward),
    ];

    println!("# Figure 15: guided-exploration ablations (PNR reduction over default)\n");
    header(&["variant", "RTT", "loss", "jitter", "at least one bad"]);

    let mut rows = Vec::new();
    for (label, kind) in variants {
        let mut per = [0.0f64; 4];
        let mut worst_any = f64::MIN;
        for (i, metric) in Metric::ALL.into_iter().enumerate() {
            let out = env.run(kind, metric);
            let pnr = pnr_masked(&out, &mask, &thresholds);
            per[i] = relative_improvement(default_pnr.for_metric(metric), pnr.for_metric(metric));
            worst_any = worst_any.max(pnr.any);
        }
        per[3] = relative_improvement(default_pnr.any, worst_any);
        row(&[
            label.to_string(),
            format!("{:.0}%", per[0]),
            format!("{:.0}%", per[1]),
            format!("{:.0}%", per[2]),
            format!("{:.0}%", per[3]),
        ]);
        rows.push((label.to_string(), per));
    }

    println!("\nPaper: full VIA 24% on 'any' vs 15% with fixed top-2; loss 44% vs 26%.");
    let path = write_json("fig15", &Fig15 { rows });
    println!("Wrote {}", path.display());
}
