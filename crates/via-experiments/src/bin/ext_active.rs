//! Extension (§7 "Active Measurements"): does orchestrating mock calls to
//! fill tomography holes improve VIA?
//!
//! The paper proposes, as future work, actively probing the holes in
//! passively collected measurements. Holes are rare at AS granularity (the
//! whole point of tomography), so this experiment runs at finer-than-AS
//! granularity — where Figure 17a showed coverage collapse — and sweeps the
//! per-window probe budget. PNR is over *all* calls (no density filter —
//! sparse keys are exactly where holes live).

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::replay::{ReplayConfig, SpatialGranularity};
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};
use via_quality::relative_improvement;

#[derive(Serialize)]
struct ExtActive {
    default_pnr: f64,
    points: Vec<(usize, f64)>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let objective = Metric::Rtt;

    let default_pnr = env
        .run(StrategyKind::Default, objective)
        .pnr(&thresholds)
        .any;
    println!("# §7 extension: active measurements (probes per window, /24-like granularity)\n");
    println!("default PNR (any, all calls) = {default_pnr:.3}\n");
    header(&["probes/window", "VIA PNR (any)", "reduction vs default"]);

    let mut points = Vec::new();
    let mut baseline_pnr = None;
    for probes in [0usize, 100, 500, 2000] {
        let cfg = ReplayConfig {
            objective,
            seed: env.seed,
            active_probes_per_window: probes,
            granularity: SpatialGranularity::SubAs { buckets: 8 },
            ..ReplayConfig::default()
        };
        let pnr = env.run_with(StrategyKind::Via, cfg).pnr(&thresholds).any;
        if probes == 0 {
            baseline_pnr = Some(pnr);
        }
        row(&[
            probes.to_string(),
            format!("{pnr:.3}"),
            format!("{:.1}%", relative_improvement(default_pnr, pnr)),
        ]);
        points.push((probes, pnr));
    }

    if let Some(base) = baseline_pnr {
        let best = points.iter().map(|&(_, p)| p).fold(f64::INFINITY, f64::min);
        println!(
            "\nActive probing removes up to {:.1}% of the residual PNR that passive-only VIA leaves.",
            100.0 * (base - best) / base.max(1e-9)
        );
    }

    let path = write_json(
        "ext_active",
        &ExtActive {
            default_pnr,
            points,
        },
    );
    println!("Wrote {}", path.display());
}
