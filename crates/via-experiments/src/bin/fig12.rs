//! Figure 12: VIA vs the strawmen and the oracle.
//!
//! (a) PNR reduction over the default strategy for pure prediction
//!     (Strawman I), pure exploration (Strawman II), VIA, and the oracle —
//!     paper: VIA reduces per-metric PNR by 39–45 % (oracle 53 %) and the
//!     "at least one bad" PNR by 23 % (oracle 30 %), beating both strawmen.
//! (b) VIA's improvement on distribution percentiles — paper: 20–58 % at the
//!     median, 20–57 % at the 90th.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, metric_values_masked, pnr_masked, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};
use via_model::stats::percentile;
use via_quality::relative_improvement;

#[derive(Serialize)]
struct Fig12 {
    /// strategy → metric → PNR reduction %.
    pnr_reduction: Vec<(String, Vec<(String, f64)>)>,
    /// strategy → "at least one bad" reduction % (conservative).
    any_reduction: Vec<(String, f64)>,
    /// metric → percentile → VIA improvement %.
    via_percentiles: Vec<(String, Vec<(f64, f64)>)>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();

    let strategies = [
        StrategyKind::PredictionOnly,
        StrategyKind::ExplorationOnly,
        StrategyKind::Via,
        StrategyKind::Oracle,
    ];

    let mask = env.eligible(args.scale);
    let kept = mask.iter().filter(|&&b| b).count();
    println!(
        "Evaluation mask (§5.1 density filter): {kept} of {} calls eligible\n",
        mask.len()
    );

    let default_run = env.run(StrategyKind::Default, Metric::Rtt);
    let default_pnr = pnr_masked(&default_run, &mask, &thresholds);

    let mut pnr_reduction = Vec::new();
    let mut any_reduction = Vec::new();
    let mut via_percentiles = Vec::new();

    println!("# Figure 12a: PNR reduction over the default strategy\n");
    header(&["strategy", "RTT", "loss", "jitter", "at least one bad"]);

    for kind in strategies {
        let mut per_metric = Vec::new();
        let mut worst_any = f64::MIN;
        for metric in Metric::ALL {
            let out = env.run(kind, metric);
            let pnr = pnr_masked(&out, &mask, &thresholds);
            per_metric.push((
                metric.to_string(),
                relative_improvement(default_pnr.for_metric(metric), pnr.for_metric(metric)),
            ));
            worst_any = worst_any.max(pnr.any);

            if kind == StrategyKind::Via {
                let mut per_p = Vec::new();
                for &p in &[50.0, 90.0, 99.0] {
                    let b =
                        percentile(&metric_values_masked(&default_run, &mask, metric), p).unwrap();
                    let a = percentile(&metric_values_masked(&out, &mask, metric), p).unwrap();
                    per_p.push((p, relative_improvement(b, a)));
                }
                via_percentiles.push((metric.to_string(), per_p));
            }
        }
        let any = relative_improvement(default_pnr.any, worst_any);
        row(&[
            kind.name(),
            format!("{:.0}%", per_metric[0].1),
            format!("{:.0}%", per_metric[1].1),
            format!("{:.0}%", per_metric[2].1),
            format!("{any:.0}%"),
        ]);
        pnr_reduction.push((kind.name(), per_metric));
        any_reduction.push((kind.name(), any));
    }
    println!(
        "\nPaper: VIA 39-45% per metric / 23% any; oracle 53% / 30%; strawmen well below VIA."
    );

    println!("\n# Figure 12b: VIA improvement on percentiles\n");
    header(&["metric", "p50", "p90", "p99"]);
    for (m, ps) in &via_percentiles {
        row(&[
            m.clone(),
            format!("{:.0}%", ps[0].1),
            format!("{:.0}%", ps[1].1),
            format!("{:.0}%", ps[2].1),
        ]);
    }
    println!("\nPaper: 20-58% at median, 20-57% at p90, 35-60% at p99.");

    let path = write_json(
        "fig12",
        &Fig12 {
            pnr_reduction,
            any_reduction,
            via_percentiles,
        },
    );
    println!("\nWrote {}", path.display());
}
