//! §2.2 validation: do thresholds on per-call *averages* agree with quality
//! judged from full *packet traces*?
//!
//! The paper ran a proprietary MOS calculator over packet traces of 70 K
//! calls and found that 80 % of calls rated "non-poor" by the average-metric
//! thresholds score a higher trace-MOS than three quarters of the "poor"
//! calls. We regenerate packet traces for a sample of the synthetic calls
//! with `via-media` and compute the same cross-statistic.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_experiments::{build_env, header, pct, row, write_json, Args, Scale};
use via_media::call_sim::{simulate_call, CallSimConfig};
use via_model::metrics::Thresholds;
use via_model::stats::percentile;

#[derive(Serialize)]
struct Sec22 {
    sampled_calls: usize,
    poor_calls: usize,
    poor_mos_p75: f64,
    nonpoor_above_that: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let sample = match args.scale {
        Scale::Tiny => 2_000,
        Scale::Small => 10_000,
        Scale::Paper => 70_000,
    };
    let stride = (env.trace.len() / sample).max(1);
    let cfg = CallSimConfig::default();

    let mut poor_mos = Vec::new();
    let mut nonpoor_mos = Vec::new();
    for r in env.trace.records.iter().step_by(stride) {
        // Cap trace length for speed: quality statistics converge long
        // before the mean call duration.
        let duration = r.duration_s.min(90.0);
        let report = simulate_call(&r.direct_metrics, duration, &cfg, u64::from(r.id.0));
        if thresholds.any_poor(&r.direct_metrics) {
            poor_mos.push(report.mos);
        } else {
            nonpoor_mos.push(report.mos);
        }
    }
    assert!(!poor_mos.is_empty() && !nonpoor_mos.is_empty());

    let p75_poor = percentile(&poor_mos, 75.0).unwrap();
    let above =
        nonpoor_mos.iter().filter(|&&m| m > p75_poor).count() as f64 / nonpoor_mos.len() as f64;

    println!("# §2.2: packet-trace MOS vs average-metric thresholds\n");
    header(&["statistic", "synthetic", "paper"]);
    row(&[
        "calls simulated at packet level".into(),
        (poor_mos.len() + nonpoor_mos.len()).to_string(),
        "70K".into(),
    ]);
    row(&[
        "75th percentile MOS of 'poor' calls".into(),
        format!("{p75_poor:.2}"),
        "-".into(),
    ]);
    row(&[
        "'non-poor' calls scoring above it".into(),
        pct(above),
        "80%".into(),
    ]);
    println!("\nThresholds on per-call averages are a reasonable proxy for trace-level quality.");

    let path = write_json(
        "sec2_2",
        &Sec22 {
            sampled_calls: poor_mos.len() + nonpoor_mos.len(),
            poor_calls: poor_mos.len(),
            poor_mos_p75: p75_poor,
            nonpoor_above_that: above,
        },
    );
    println!("Wrote {}", path.display());
}
