//! Figure 14: dissecting VIA's improvement by country.
//!
//! For the countries with the worst default PNR (one side of an
//! international call in that country), compare default / VIA / oracle PNR
//! per metric. Paper: the worst countries sit far above the global PNR, and
//! VIA lands closer to the oracle than to the default for most of them.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::collections::HashMap;
use via_core::strategy::StrategyKind;
use via_core::Outcome;
use via_experiments::{build_env, header, pct, row, write_json, Args};
use via_model::ids::CountryId;
use via_model::metrics::{Metric, Thresholds};

#[derive(Serialize)]
struct CountryRow {
    country: String,
    calls: usize,
    default_pnr: f64,
    via_pnr: f64,
    oracle_pnr: f64,
}

#[derive(Serialize)]
struct Fig14 {
    metric: String,
    global_default_pnr: f64,
    rows: Vec<CountryRow>,
}

/// Per-country PNR of one metric over international calls (a call counts for
/// both endpoint countries, like the paper's "one side of the call").
fn by_country(
    out: &Outcome,
    env: &via_experiments::Env,
    mask: &[bool],
    metric: Metric,
    thresholds: &Thresholds,
) -> HashMap<CountryId, (usize, usize)> {
    let mut acc: HashMap<CountryId, (usize, usize)> = HashMap::new();
    for c in &out.calls {
        let r = &env.trace.records[c.call_index as usize];
        if !mask[c.call_index as usize] || !r.is_international() {
            continue;
        }
        let poor = thresholds.is_poor(&c.metrics, metric);
        for country in [r.src_country, r.dst_country] {
            let e = acc.entry(country).or_default();
            e.0 += 1;
            if poor {
                e.1 += 1;
            }
        }
    }
    acc
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);

    let mut results = Vec::new();
    for metric in Metric::ALL {
        let default_run = env.run(StrategyKind::Default, metric);
        let via_run = env.run(StrategyKind::Via, metric);
        let oracle_run = env.run(StrategyKind::Oracle, metric);

        let d = by_country(&default_run, &env, &mask, metric, &thresholds);
        let v = by_country(&via_run, &env, &mask, metric, &thresholds);
        let o = by_country(&oracle_run, &env, &mask, metric, &thresholds);

        // Global default PNR on this metric (the red line of Figure 14).
        let (g_calls, g_poor) = d
            .values()
            .fold((0, 0), |(c, p), &(cc, pp)| (c + cc, p + pp));
        let global = g_poor as f64 / g_calls.max(1) as f64;

        // Rank countries by default PNR, keep the worst with enough calls.
        let mut ranked: Vec<(CountryId, f64, usize)> = d
            .iter()
            .filter(|(_, &(calls, _))| calls >= 200)
            .map(|(&cid, &(calls, poor))| (cid, poor as f64 / calls as f64, calls))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

        println!("\n# Figure 14 ({metric}): worst countries, PNR under default/VIA/oracle");
        println!("global default PNR({metric}) = {}\n", pct(global));
        header(&["country", "calls", "default", "VIA", "oracle"]);
        let mut rows = Vec::new();
        for &(cid, d_pnr, calls) in ranked.iter().take(10) {
            let v_pnr = v
                .get(&cid)
                .map_or(0.0, |&(c, p)| p as f64 / c.max(1) as f64);
            let o_pnr = o
                .get(&cid)
                .map_or(0.0, |&(c, p)| p as f64 / c.max(1) as f64);
            let name = env.world.countries[cid.index()].name.clone();
            row(&[
                name.clone(),
                calls.to_string(),
                pct(d_pnr),
                pct(v_pnr),
                pct(o_pnr),
            ]);
            rows.push(CountryRow {
                country: name,
                calls,
                default_pnr: d_pnr,
                via_pnr: v_pnr,
                oracle_pnr: o_pnr,
            });
        }
        results.push(Fig14 {
            metric: metric.to_string(),
            global_default_pnr: global,
            rows,
        });
    }

    let path = write_json("fig14", &results);
    println!("\nWrote {}", path.display());
}
