//! §5.2 statistics: where does VIA send calls, and what do transit relays
//! buy over bouncing alone?
//!
//! Paper: VIA sends ~54 % of calls to bouncing relays, ~38 % to transit
//! relays, ~8 % direct; and PNR is substantially lower when transit relays
//! are available than with bouncing only.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::replay::ReplayConfig;
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, pnr_masked, row, write_json, write_metrics, Args};
use via_model::metrics::{Metric, Thresholds};
use via_quality::relative_improvement;

#[derive(Serialize)]
struct Sec52 {
    direct_fraction: f64,
    bounce_fraction: f64,
    transit_fraction: f64,
    pnr_with_transit: f64,
    pnr_bounce_only: f64,
    transit_benefit_pct: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);
    let objective = Metric::Rtt;

    let with_transit = env.run_observed(StrategyKind::Via, objective);
    // Option mix over the evaluated (dense) calls — the population the
    // paper's §5.1 filter leaves, which is also what its §5.2 mix numbers
    // describe.
    let mix_over = |pred: &dyn Fn(usize) -> bool| {
        let mut d = 0usize;
        let mut b = 0usize;
        let mut tr = 0usize;
        let mut n = 0usize;
        for c in &with_transit.calls {
            let idx = c.call_index as usize;
            if !mask[idx] || !pred(idx) {
                continue;
            }
            n += 1;
            if c.option.is_bounce() {
                b += 1;
            } else if c.option.is_transit() {
                tr += 1;
            } else {
                d += 1;
            }
        }
        let n = n.max(1) as f64;
        (d as f64 / n, b as f64 / n, tr as f64 / n)
    };
    let (direct, bounce, transit) = mix_over(&|_| true);
    let (d_intl, b_intl, t_intl) = mix_over(&|i| env.trace.records[i].is_international());

    let bounce_only_cfg = ReplayConfig {
        objective,
        seed: env.seed,
        allow_transit: false,
        ..ReplayConfig::default()
    };
    let bounce_only = env.run_with(StrategyKind::Via, bounce_only_cfg);

    // Transit pays off on long-haul paths; measure its effect where it is
    // actually used — international calls (the paper conditions on AS pairs
    // that used both kinds).
    let pnr_intl = |out: &via_core::Outcome| {
        via_quality::PnrReport::from_calls(
            out.calls
                .iter()
                .filter(|c| {
                    mask[c.call_index as usize]
                        && env.trace.records[c.call_index as usize].is_international()
                })
                .map(|c| &c.metrics),
            &thresholds,
        )
        .any
    };
    let pnr_with = pnr_intl(&with_transit);
    let pnr_without = pnr_intl(&bounce_only);
    let default_pnr = pnr_masked(
        &env.run(StrategyKind::Default, objective),
        &mask,
        &thresholds,
    )
    .any;

    println!("# §5.2: option mix and the value of transit relaying\n");
    header(&["statistic", "synthetic", "paper"]);
    row(&[
        "calls sent direct".into(),
        format!("{:.0}%", 100.0 * direct),
        "8%".into(),
    ]);
    row(&[
        "bouncing relays".into(),
        format!("{:.0}%", 100.0 * bounce),
        "54%".into(),
    ]);
    row(&[
        "transit relays".into(),
        format!("{:.0}%", 100.0 * transit),
        "38%".into(),
    ]);
    row(&[
        "… direct (international only)".into(),
        format!("{:.0}%", 100.0 * d_intl),
        "-".into(),
    ]);
    row(&[
        "… bounce (international only)".into(),
        format!("{:.0}%", 100.0 * b_intl),
        "-".into(),
    ]);
    row(&[
        "… transit (international only)".into(),
        format!("{:.0}%", 100.0 * t_intl),
        "-".into(),
    ]);
    row(&[
        "intl PNR(any), transit + bounce".into(),
        format!("{pnr_with:.3}"),
        "-".into(),
    ]);
    row(&[
        "intl PNR(any), bounce only".into(),
        format!("{pnr_without:.3}"),
        "-".into(),
    ]);
    let benefit = relative_improvement(pnr_without - 0.0, pnr_with);
    println!(
        "\nTransit availability lowers VIA's PNR by {benefit:.0}% \
         (default strategy: {default_pnr:.3}; paper: 50% lower PNR with transit available)."
    );

    // Engine-side observability for the headline VIA run: how much the
    // bandit explored vs exploited, and how often the predictor refit.
    if let Some(snap) = &with_transit.obs {
        let pulls = snap.counter("replay_bandit_pulls_total");
        let eps = snap.counter("replay_explore_epsilon_total");
        let decided = (pulls + eps).max(1);
        println!(
            "\nEngine: {} predictor refits over {} windows; bandit explored \
             {:.1}% of decisions ({} of {}).",
            snap.counter("replay_predictor_fits_total"),
            snap.counter("replay_windows_total"),
            100.0 * eps as f64 / decided as f64,
            eps,
            decided
        );
        if let Some(mos) = snap.histogram("replay_mos_delta") {
            println!(
                "MOS delta vs direct: {} calls recorded, min {:.2}, max {:.2}.",
                mos.count, mos.min, mos.max
            );
        }
    }
    if let Some(mpath) = write_metrics("sec5_2", &with_transit) {
        println!("Wrote {}", mpath.display());
    }

    let path = write_json(
        "sec5_2",
        &Sec52 {
            direct_fraction: direct,
            bounce_fraction: bounce,
            transit_fraction: transit,
            pnr_with_transit: pnr_with,
            pnr_bounce_only: pnr_without,
            transit_benefit_pct: benefit,
        },
    );
    println!("Wrote {}", path.display());
}
