//! Figure 8: the oracle's potential (§3.2).
//!
//! (a) Relative improvement of RTT / loss / jitter distribution percentiles
//!     when an oracle picks the best relaying option per (pair, day) —
//!     paper: 30–60 % at the median, 40–65 % at the tail.
//! (b) PNR reduction per metric (paper: up to 53 %) and on the combined
//!     "at least one bad" criterion, conservatively taking the worst of the
//!     three per-metric optimizations (paper: > 30 %).

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};
use via_model::stats::percentile;
use via_quality::relative_improvement;

#[derive(Serialize)]
struct Fig08 {
    percentile_improvements: Vec<(String, Vec<(f64, f64)>)>,
    pnr_reduction: Vec<(String, f64)>,
    pnr_reduction_any_conservative: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let ps = [25.0, 50.0, 75.0, 90.0, 95.0, 99.0];

    let default_run = env.run(StrategyKind::Default, Metric::Rtt);
    let default_pnr = default_run.pnr(&thresholds);

    println!("# Figure 8a: oracle improvement on metric percentiles\n");
    header(&["metric", "p25", "p50", "p75", "p90", "p95", "p99"]);

    let mut pct_improvements = Vec::new();
    let mut pnr_reduction = Vec::new();
    let mut worst_any = f64::MIN;

    for metric in Metric::ALL {
        let oracle = env.run(StrategyKind::Oracle, metric);
        let base_vals = default_run.metric_values(metric);
        let oracle_vals = oracle.metric_values(metric);

        let mut per_p = Vec::new();
        let mut cells = vec![metric.to_string()];
        for &p in &ps {
            let b = percentile(&base_vals, p).unwrap();
            let a = percentile(&oracle_vals, p).unwrap();
            let imp = relative_improvement(b, a);
            cells.push(format!("{imp:.0}%"));
            per_p.push((p, imp));
        }
        row(&cells);
        pct_improvements.push((metric.to_string(), per_p));

        let o_pnr = oracle.pnr(&thresholds);
        pnr_reduction.push((
            metric.to_string(),
            relative_improvement(default_pnr.for_metric(metric), o_pnr.for_metric(metric)),
        ));
        // Conservative "any": worst (largest) any-PNR across the three
        // single-metric optimizations.
        worst_any = worst_any.max(o_pnr.any);
    }

    let any_reduction = relative_improvement(default_pnr.any, worst_any);

    println!("\n# Figure 8b: oracle PNR reduction\n");
    header(&["metric", "default PNR", "oracle PNR reduction", "paper"]);
    for (m, r) in &pnr_reduction {
        let metric = Metric::ALL
            .iter()
            .find(|x| x.to_string() == *m)
            .copied()
            .unwrap();
        row(&[
            m.clone(),
            format!("{:.1}%", 100.0 * default_pnr.for_metric(metric)),
            format!("{r:.0}%"),
            "up to 53%".into(),
        ]);
    }
    row(&[
        "at least one bad".into(),
        format!("{:.1}%", 100.0 * default_pnr.any),
        format!("{any_reduction:.0}%"),
        ">30%".into(),
    ]);

    let path = write_json(
        "fig08",
        &Fig08 {
            percentile_improvements: pct_improvements,
            pnr_reduction,
            pnr_reduction_any_conservative: any_reduction,
        },
    );
    println!("\nWrote {}", path.display());
}
