//! Figure 13: VIA's improvement on international vs domestic calls.
//!
//! Paper: VIA improves both, with a somewhat larger improvement on
//! international calls (relaying cannot fix a poor last mile, which
//! dominates more of the domestic poor calls).

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::strategy::StrategyKind;
use via_core::Outcome;
use via_experiments::{build_env, header, pct, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};
use via_quality::PnrReport;
use via_trace::Trace;

#[derive(Serialize)]
struct Fig13 {
    /// (strategy, intl PNR-any, domestic PNR-any), conservative across
    /// per-metric optimizations.
    rows: Vec<(String, f64, f64)>,
}

fn pnr_split(
    out: &Outcome,
    trace: &Trace,
    mask: &[bool],
    thresholds: &Thresholds,
) -> (PnrReport, PnrReport) {
    let masked = |intl: bool| {
        PnrReport::from_calls(
            out.calls
                .iter()
                .filter(|c| {
                    mask[c.call_index as usize]
                        && trace.records[c.call_index as usize].is_international() == intl
                })
                .map(|c| &c.metrics),
            thresholds,
        )
    };
    (masked(true), masked(false))
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);

    println!("# Figure 13: PNR (at least one bad) on international vs domestic calls\n");
    header(&["strategy", "international", "domestic"]);

    let mut rows = Vec::new();
    for kind in [
        StrategyKind::Default,
        StrategyKind::Via,
        StrategyKind::Oracle,
    ] {
        // Conservative "any" PNR: worst across the three per-metric runs.
        let mut worst_intl = f64::MIN;
        let mut worst_dom = f64::MIN;
        for metric in Metric::ALL {
            let out = env.run(kind, metric);
            let (intl, dom) = pnr_split(&out, &env.trace, &mask, &thresholds);
            worst_intl = worst_intl.max(intl.any);
            worst_dom = worst_dom.max(dom.any);
            if kind == StrategyKind::Default {
                break; // default ignores the objective
            }
        }
        row(&[kind.name(), pct(worst_intl), pct(worst_dom)]);
        rows.push((kind.name(), worst_intl, worst_dom));
    }

    let d = &rows[0];
    let v = &rows[1];
    println!(
        "\nVIA reduction: international {:.0}%, domestic {:.0}% (paper: both improve, international slightly more).",
        100.0 * (d.1 - v.1) / d.1.max(1e-9),
        100.0 * (d.2 - v.2) / d.2.max(1e-9),
    );

    let path = write_json("fig13", &Fig13 { rows });
    println!("Wrote {}", path.display());
}
