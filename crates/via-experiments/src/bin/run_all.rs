//! Runs every experiment binary in sequence, forwarding `--scale`/`--seed`.
//!
//! The sibling executables live next to this one in the target directory;
//! each regenerates one table or figure of the paper and writes its JSON to
//! `experiments/out/`.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::Command;

/// Experiment ids in paper order.
const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig01",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "sec2_2",
    "fig08",
    "fig09",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "sec5_2",
    "sec_multipath",
    "fig18",
    "ext_active",
    "ext_vivaldi",
    "ext_cache",
    "ext_hybrid",
    "ext_placement",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("target dir");

    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let bin = dir.join(exp);
        println!("\n================ {exp} ================\n");
        let status = Command::new(&bin)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        if !status.success() {
            eprintln!("{exp} FAILED with {status}");
            failures.push(*exp);
        }
    }

    println!("\n================ summary ================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("failed: {failures:?}");
        std::process::exit(1);
    }
}
