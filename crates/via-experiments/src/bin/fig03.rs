//! Figure 3: pairwise correlation between the network metrics.
//!
//! For each ordered pair of metrics (x, y), calls are binned by x and the
//! 10th/50th/90th percentiles of y are reported per bin. The paper uses the
//! substantial spread to argue that improving one metric could worsen
//! another — motivating the combined "at least one bad" objective.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_experiments::{build_env, header, row, write_json, Args, Scale};
use via_model::metrics::Metric;
use via_trace::analysis::pairwise_metric_percentiles;

#[derive(Serialize)]
struct Panel {
    x: String,
    y: String,
    bins: Vec<via_model::stats::binning::PercentileBin>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let min_samples = match args.scale {
        Scale::Tiny => 30,
        Scale::Small => 150,
        Scale::Paper => 1000,
    };
    let range_of = |m: Metric| match m {
        Metric::Rtt => 700.0,
        Metric::Loss => 6.0,
        Metric::Jitter => 25.0,
    };

    let pairs = [
        (Metric::Rtt, Metric::Loss),
        (Metric::Rtt, Metric::Jitter),
        (Metric::Loss, Metric::Jitter),
    ];

    println!("# Figure 3: pairwise metric correlations (p10/p50/p90 of y per x bin)\n");
    let mut panels = Vec::new();
    for (x, y) in pairs {
        let bins = pairwise_metric_percentiles(&env.trace, x, y, range_of(x), 10, min_samples);
        println!("## {y} vs {x}\n");
        header(&[
            &format!("{x} ({})", x.unit()),
            "calls",
            &format!("{y} p10"),
            &format!("{y} p50"),
            &format!("{y} p90"),
        ]);
        for b in &bins {
            row(&[
                format!("{:.1}", b.x_center),
                b.count.to_string(),
                format!("{:.2}", b.y_percentiles[0]),
                format!("{:.2}", b.y_percentiles[1]),
                format!("{:.2}", b.y_percentiles[2]),
            ]);
        }
        println!();
        panels.push(Panel {
            x: x.to_string(),
            y: y.to_string(),
            bins,
        });
    }

    let path = write_json("fig03", &panels);
    println!("Wrote {}", path.display());
}
