//! Figure 5: how concentrated are poor calls across AS pairs?
//!
//! The paper's central "no easy fix" observation: even the worst 1000 AS
//! pairs together account for under 15 % of all poor-network calls, so
//! point fixes at specific pairs cannot move the needle. This binary prints
//! the cumulative share of poor calls contributed by the worst n pairs.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_experiments::{build_env, header, pct, row, write_json, Args};
use via_model::metrics::Thresholds;
use via_trace::analysis::worst_pair_concentration;

#[derive(Serialize)]
struct Fig05 {
    /// (rank, cumulative fraction) at selected ranks.
    points: Vec<(usize, f64)>,
    total_pairs: usize,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let conc = worst_pair_concentration(&env.trace, &Thresholds::default());
    assert!(
        !conc.is_empty(),
        "trace has no poor calls — world miscalibrated"
    );

    let total_pairs = conc.len();
    let marks = [1usize, 3, 10, 30, 100, 300, 1000, 3000];
    println!("# Figure 5: share of poor calls from the worst n AS pairs\n");
    header(&["worst n pairs", "share of poor calls"]);
    let mut points = Vec::new();
    for &n in &marks {
        if n > total_pairs {
            break;
        }
        let share = conc[n - 1].1;
        row(&[n.to_string(), pct(share)]);
        points.push((n, share));
    }
    row(&[format!("{total_pairs} (all)"), pct(1.0)]);

    // The paper's headline number: worst 1000 pairs < 15 %. At smaller
    // scales, report the equivalent share of the same *fraction* of pairs.
    let frac_idx = ((total_pairs as f64 * 0.05).ceil() as usize).clamp(1, total_pairs);
    println!(
        "\nWorst 5% of pairs ({} pairs) hold {} of poor calls — spread-out badness.",
        frac_idx,
        pct(conc[frac_idx - 1].1)
    );

    let path = write_json(
        "fig05",
        &Fig05 {
            points,
            total_pairs,
        },
    );
    println!("Wrote {}", path.display());
}
