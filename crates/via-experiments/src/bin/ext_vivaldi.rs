//! Extension (the paper's related-work reference 18): Vivaldi network
//! coordinates vs the
//! geographic prior for *direct-path* prediction.
//!
//! Relay-based tomography cannot predict direct (BGP) paths — they do not
//! decompose into client↔relay segments. VIA falls back to a geographic
//! prior for direct-path holes; this experiment asks whether a Vivaldi
//! embedding trained on *other pairs'* direct-path observations does better.
//! Train: one day of direct-path calls over a random 60 % of AS pairs.
//! Test: RTT prediction error on the held-out 40 %.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::Serialize;
use std::collections::HashSet;
use via_core::coords::{Vivaldi, VivaldiConfig};
use via_experiments::{build_env, header, pct, row, write_json, Args};
use via_model::options::RelayOption;
use via_model::time::{SimTime, SECS_PER_DAY};

#[derive(Serialize)]
struct ExtVivaldi {
    held_out_pairs: usize,
    geo_within_20: f64,
    vivaldi_within_20: f64,
    geo_median_err: f64,
    vivaldi_median_err: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let mut rng = StdRng::seed_from_u64(env.seed ^ 0x71A1D1);
    let n = env.world.ases.len();

    // Pairs that appear in the trace, split train/test.
    let pairs: HashSet<(u32, u32)> = env
        .trace
        .records
        .iter()
        .filter(|r| r.src_as != r.dst_as)
        .map(|r| {
            let p = r.as_pair();
            (p.lo.0, p.hi.0)
        })
        .collect();
    let mut pairs: Vec<_> = pairs.into_iter().collect();
    pairs.sort_unstable();

    let mut vivaldi = Vivaldi::new(n, VivaldiConfig::default(), env.seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for &(a, b) in &pairs {
        if rng.random::<f64>() < 0.6 {
            train.push((a, b));
        } else {
            test.push((a, b));
        }
    }

    // Train on noisy direct-path samples (several passes so coordinates
    // settle).
    for _pass in 0..6 {
        for &(a, b) in &train {
            let t = SimTime(SECS_PER_DAY + rng.random_range(0..SECS_PER_DAY));
            let m = env.world.perf().sample_option(
                via_model::AsId(a),
                via_model::AsId(b),
                RelayOption::Direct,
                t,
                &mut rng,
            );
            vivaldi.observe(a as usize, b as usize, m.rtt_ms);
        }
    }

    // Evaluate both predictors on held-out pairs against the latent mean.
    let t_mid = SimTime(SECS_PER_DAY + SECS_PER_DAY / 2);
    let prior_inflation = 1.9; // same prior as the predictor's default
    let mut geo_err = Vec::new();
    let mut viv_err = Vec::new();
    for &(a, b) in &test {
        let truth = env
            .world
            .perf()
            .option_mean(
                via_model::AsId(a),
                via_model::AsId(b),
                RelayOption::Direct,
                t_mid,
            )
            .rtt_ms;
        let geo = env.world.ases[a as usize]
            .pos
            .min_rtt_ms(&env.world.ases[b as usize].pos)
            * prior_inflation
            + 20.0;
        let viv = vivaldi.predict(a as usize, b as usize);
        geo_err.push((geo - truth).abs() / truth.max(1.0));
        viv_err.push((viv - truth).abs() / truth.max(1.0));
    }
    assert!(!geo_err.is_empty(), "no held-out pairs");

    let within =
        |errs: &[f64]| errs.iter().filter(|&&e| e <= 0.2).count() as f64 / errs.len() as f64;
    let median = |errs: &[f64]| via_model::stats::percentile(errs, 50.0).unwrap();

    println!("# Extension: Vivaldi coordinates vs geographic prior (direct-path RTT)\n");
    header(&["predictor", "within 20% of truth", "median relative error"]);
    row(&[
        "geographic prior".into(),
        pct(within(&geo_err)),
        pct(median(&geo_err)),
    ]);
    row(&[
        "Vivaldi embedding".into(),
        pct(within(&viv_err)),
        pct(median(&viv_err)),
    ]);
    println!(
        "\n({} held-out pairs; Vivaldi trained on {} pairs' direct calls, {} observations)",
        test.len(),
        train.len(),
        vivaldi.samples()
    );

    let path = write_json(
        "ext_vivaldi",
        &ExtVivaldi {
            held_out_pairs: test.len(),
            geo_within_20: within(&geo_err),
            vivaldi_within_20: within(&viv_err),
            geo_median_err: median(&geo_err),
            vivaldi_median_err: median(&viv_err),
        },
    );
    println!("Wrote {}", path.display());
}
