//! Figure 11 / §5.3: accuracy of relay-based tomography on unseen paths.
//!
//! Build one day of relayed call history with a random subset of each pair's
//! relaying options observed, fit the tomography predictor, and evaluate the
//! *held-out* options against the ground-truth model. The paper reports that
//! 71 % of predictions land within 20 % of the actual performance, while
//! 14 % err by ≥ 50 % — accurate enough to prune, not accurate enough to
//! pick a single winner (hence prediction-guided *exploration*).

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::Serialize;
use std::collections::HashSet;
use via_core::history::{CallHistory, KeyPair};
use via_core::predictor::{GeoPrior, Predictor, PredictorConfig};
use via_core::PredictionSource;
use via_experiments::{build_env, header, pct, row, write_json, Args};
use via_model::metrics::Metric;
use via_model::time::{SimTime, WindowLen, SECS_PER_DAY};

#[derive(Serialize)]
struct Fig11 {
    evaluated: usize,
    covered_fraction: f64,
    within_20: f64,
    beyond_50: f64,
    median_rel_error: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let mut rng = StdRng::seed_from_u64(env.seed ^ 0xF1611);
    let window = WindowLen::DAY.window_of(SimTime::from_days(1));
    let t_mid = SimTime(SECS_PER_DAY + SECS_PER_DAY / 2);

    // Pairs observed in the trace (AS granularity, like the paper).
    let pairs: HashSet<(via_model::AsId, via_model::AsId)> = env
        .trace
        .records
        .iter()
        .filter(|r| r.src_as != r.dst_as)
        .map(|r| {
            let p = r.as_pair();
            (p.lo, p.hi)
        })
        .collect();
    let mut pairs: Vec<_> = pairs.into_iter().collect();
    pairs.sort();

    // Observe a random 60% of each pair's relayed options with 8 calls each.
    let mut history = CallHistory::new();
    let mut holdout = Vec::new();
    for &(a, b) in &pairs {
        for opt in env.world.candidate_options(a, b) {
            if !opt.is_relayed() {
                continue;
            }
            if rng.random::<f64>() < 0.6 {
                for _ in 0..8 {
                    let t = SimTime(SECS_PER_DAY + rng.random_range(0..SECS_PER_DAY));
                    let m = env.world.perf().sample_option(a, b, opt, t, &mut rng);
                    history.record(window, KeyPair::new(a.0, b.0), opt, &m);
                }
            } else {
                holdout.push((a, b, opt));
            }
        }
    }

    let prior = GeoPrior::new(
        env.world.ases.iter().map(|x| x.pos).collect(),
        env.world.relays.iter().map(|r| r.pos).collect(),
    );
    let n = env.world.relays.len();
    let mut table = vec![via_model::PathMetrics::ZERO; n * n];
    for i in 0..n {
        for j in 0..n {
            table[i * n + j] = env
                .world
                .perf()
                .backbone_metrics(via_model::RelayId(i as u32), via_model::RelayId(j as u32));
        }
    }
    let backbone = Box::new(move |a: via_model::RelayId, b: via_model::RelayId| {
        table[a.index() * n + b.index()]
    });
    let predictor = Predictor::fit(
        &history,
        window,
        prior,
        backbone,
        PredictorConfig::default(),
    );

    // Evaluate held-out options: only tomography-sourced predictions count
    // as "coverage expansion".
    let mut errors = Vec::new();
    let mut covered = 0usize;
    for &(a, b, opt) in &holdout {
        let pred = predictor.predict(a.0, b.0, opt);
        if pred.source != PredictionSource::Tomography {
            continue;
        }
        covered += 1;
        let truth = env.world.perf().option_mean(a, b, opt, t_mid);
        let rel = (pred.mean(Metric::Rtt) - truth.rtt_ms).abs() / truth.rtt_ms.max(1.0);
        errors.push(rel);
    }
    assert!(
        !errors.is_empty(),
        "tomography produced no stitched predictions"
    );

    let within_20 = errors.iter().filter(|&&e| e <= 0.2).count() as f64 / errors.len() as f64;
    let beyond_50 = errors.iter().filter(|&&e| e >= 0.5).count() as f64 / errors.len() as f64;
    let median = via_model::stats::percentile(&errors, 50.0).unwrap();

    println!("# Figure 11 / §5.3: tomography prediction accuracy on held-out paths\n");
    header(&["statistic", "synthetic", "paper"]);
    row(&[
        "held-out options".into(),
        holdout.len().to_string(),
        "-".into(),
    ]);
    row(&[
        "stitchable (coverage)".into(),
        pct(covered as f64 / holdout.len().max(1) as f64),
        "-".into(),
    ]);
    row(&["within 20% of truth".into(), pct(within_20), "71%".into()]);
    row(&["error >= 50%".into(), pct(beyond_50), "14%".into()]);
    row(&["median relative error".into(), pct(median), "-".into()]);

    let path = write_json(
        "fig11",
        &Fig11 {
            evaluated: errors.len(),
            covered_fraction: covered as f64 / holdout.len().max(1) as f64,
            within_20,
            beyond_50,
            median_rel_error: median,
        },
    );
    println!("\nWrote {}", path.display());
}
