//! Figure 16: impact of the relaying budget (§4.6 / §5.4).
//!
//! Sweeps the budget B (maximum fraction of calls relayed) and compares
//! budget-aware VIA (relay only the top-B-percentile-benefit calls) against
//! budget-unaware VIA (first-come-first-served until the cap). Paper:
//! budget-aware reaches about half of the unbudgeted benefit with B = 0.3
//! and dominates the unaware variant at every budget.
//!
//! One replay per (budget, variant) with the RTT objective; PNR is the
//! "at least one bad" rate of that run.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, pnr_masked, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};

#[derive(Serialize)]
struct Point {
    budget: f64,
    aware_pnr: f64,
    aware_relayed: f64,
    unaware_pnr: f64,
    unaware_relayed: f64,
}

#[derive(Serialize)]
struct Fig16 {
    default_pnr: f64,
    unbudgeted_pnr: f64,
    oracle_pnr: f64,
    points: Vec<Point>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);
    let objective = Metric::Rtt;

    let default_pnr = pnr_masked(
        &env.run(StrategyKind::Default, objective),
        &mask,
        &thresholds,
    )
    .any;
    let via_full = env.run(StrategyKind::Via, objective);
    let unbudgeted_pnr = pnr_masked(&via_full, &mask, &thresholds).any;
    let oracle_pnr = pnr_masked(
        &env.run(StrategyKind::Oracle, objective),
        &mask,
        &thresholds,
    )
    .any;

    println!("# Figure 16: PNR (at least one bad) vs relaying budget\n");
    println!(
        "default = {:.3}, unbudgeted VIA = {:.3} (relays {:.0}% of calls), oracle = {:.3}\n",
        default_pnr,
        unbudgeted_pnr,
        100.0 * via_full.relayed_fraction(),
        oracle_pnr
    );
    header(&[
        "budget",
        "budget-aware PNR",
        "aware relayed",
        "budget-unaware PNR",
        "unaware relayed",
    ]);

    let mut points = Vec::new();
    for budget in [0.05, 0.1, 0.2, 0.3, 0.5, 0.75] {
        let aware = env.run(StrategyKind::ViaBudgeted { budget }, objective);
        let unaware = env.run(StrategyKind::ViaBudgetUnaware { budget }, objective);
        let p = Point {
            budget,
            aware_pnr: pnr_masked(&aware, &mask, &thresholds).any,
            aware_relayed: aware.relayed_fraction(),
            unaware_pnr: pnr_masked(&unaware, &mask, &thresholds).any,
            unaware_relayed: unaware.relayed_fraction(),
        };
        row(&[
            format!("{budget:.2}"),
            format!("{:.3}", p.aware_pnr),
            format!("{:.0}%", 100.0 * p.aware_relayed),
            format!("{:.3}", p.unaware_pnr),
            format!("{:.0}%", 100.0 * p.unaware_relayed),
        ]);
        points.push(p);
    }

    // The paper's headline: budget-aware at B=0.3 achieves ~half the
    // maximum (unbudgeted) benefit.
    if let Some(p30) = points.iter().find(|p| (p.budget - 0.3).abs() < 1e-9) {
        let max_benefit = default_pnr - unbudgeted_pnr;
        let b30_benefit = default_pnr - p30.aware_pnr;
        println!(
            "\nBudget 0.3 captures {:.0}% of the unbudgeted benefit (paper: ~50%).",
            100.0 * b30_benefit / max_benefit.max(1e-9)
        );
    }

    let path = write_json(
        "fig16",
        &Fig16 {
            default_pnr,
            unbudgeted_pnr,
            oracle_pnr,
            points,
        },
    );
    println!("Wrote {}", path.display());
}
