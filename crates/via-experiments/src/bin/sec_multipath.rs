//! Multipath extension: what does a second, redundant relay path buy?
//!
//! Not a paper figure — the paper's §7 sketches "using multiple relays in
//! parallel" as future work. This experiment quantifies it on the synthetic
//! replay: singlepath VIA vs 2-path redundant VIA (duplicate mode, receiver
//! deduplicates and plays the earliest copy) vs the singlepath oracle, under
//! the trace's episode churn (paths degrade and recover mid-replay; a path
//! of the set can die mid-call). Duplicated traffic is charged k× by the
//! budget gate, so the budgeted row shows redundancy under an honest
//! traffic cap.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::strategy::{MultipathMode, StrategyKind};
use via_core::Outcome;
use via_experiments::{build_env, header, pnr_masked, row, write_json, write_metrics, Args};
use via_model::metrics::{Metric, Thresholds};

#[derive(Serialize)]
struct SecMultipath {
    pnr_via: f64,
    pnr_multipath: f64,
    pnr_multipath_budgeted: f64,
    pnr_oracle: f64,
    mos_via: f64,
    mos_multipath: f64,
    mos_oracle: f64,
    paths_per_call: f64,
    dedup_drops: u64,
    failovers: u64,
    budgeted_gate_denied: u64,
}

/// Mean trace-MOS over the eligible calls of an outcome.
fn mean_mos(out: &Outcome, mask: &[bool]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for c in &out.calls {
        if mask[c.call_index as usize] {
            sum += via_quality::mos(&c.metrics);
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);
    let objective = Metric::Rtt;

    let via = env.run_observed(StrategyKind::Via, objective);
    let multipath = env.run_observed(
        StrategyKind::Multipath {
            k: 2,
            mode: MultipathMode::Duplicate,
            budget: 1.0,
        },
        objective,
    );
    // Same redundancy under a hard traffic cap: each admitted duplicate
    // call charges 2 traffic units against a 30% budget.
    let budgeted = env.run_observed(
        StrategyKind::Multipath {
            k: 2,
            mode: MultipathMode::Duplicate,
            budget: 0.3,
        },
        objective,
    );
    let oracle = env.run(StrategyKind::Oracle, objective);

    let pnr = |out: &Outcome| pnr_masked(out, &mask, &thresholds).any;
    let pnr_via = pnr(&via);
    let pnr_mp = pnr(&multipath);
    let pnr_mp_budgeted = pnr(&budgeted);
    let pnr_oracle = pnr(&oracle);
    let mos_via = mean_mos(&via, &mask);
    let mos_mp = mean_mos(&multipath, &mask);
    let mos_oracle = mean_mos(&oracle, &mask);

    let snap = multipath.obs.as_ref().expect("observed run has a snapshot");
    let calls = snap.counter("replay_calls_total").max(1);
    let extra = snap.counter("replay_multipath_extra_paths_total");
    let dedup_drops = snap.counter("replay_multipath_dedup_drops_total");
    let failovers = snap.counter("replay_multipath_failovers_total");
    let paths_per_call = 1.0 + extra as f64 / calls as f64;
    let budgeted_snap = budgeted.obs.as_ref().expect("observed run has a snapshot");
    let gate_denied = budgeted_snap.counter("replay_gate_denied_total");

    println!("# Multipath: singlepath VIA vs 2-path redundant VIA vs oracle\n");
    header(&["strategy", "PNR(any)", "mean MOS"]);
    row(&[
        "via (singlepath)".into(),
        format!("{pnr_via:.3}"),
        format!("{mos_via:.2}"),
    ]);
    row(&[
        "multipath dup k=2".into(),
        format!("{pnr_mp:.3}"),
        format!("{mos_mp:.2}"),
    ]);
    row(&[
        "multipath dup k=2, budget 0.3".into(),
        format!("{pnr_mp_budgeted:.3}"),
        format!("{:.2}", mean_mos(&budgeted, &mask)),
    ]);
    row(&[
        "oracle (singlepath)".into(),
        format!("{pnr_oracle:.3}"),
        format!("{mos_oracle:.2}"),
    ]);

    println!(
        "\nRedundancy: {paths_per_call:.2} paths per call, {dedup_drops} duplicate \
         copies dropped receiver-side, {failovers} mid-call failovers absorbed."
    );
    println!(
        "Budgeted run: {gate_denied} calls denied by the 2x-charging gate \
         (duplicate traffic pays for both paths)."
    );

    if let Some(mpath) = write_metrics("sec_multipath", &multipath) {
        println!("Wrote {}", mpath.display());
    }
    let path = write_json(
        "sec_multipath",
        &SecMultipath {
            pnr_via,
            pnr_multipath: pnr_mp,
            pnr_multipath_budgeted: pnr_mp_budgeted,
            pnr_oracle,
            mos_via,
            mos_multipath: mos_mp,
            mos_oracle,
            paths_per_call,
            dedup_drops,
            failovers,
            budgeted_gate_denied: gate_denied,
        },
    );
    println!("Wrote {}", path.display());
}
