//! Figure 1: poor call rate (PCR) vs binned network metrics.
//!
//! The paper bins rated calls by RTT / loss / jitter (≥ 1000 samples per
//! bin) and reports PCR correlations of 0.97 / 0.95 / 0.91 with the three
//! metrics. This binary reproduces the curves (y normalized to the maximum
//! PCR, as in the paper's plot) and the correlation coefficients.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_experiments::{build_env, header, row, write_json, Args, Scale};
use via_model::metrics::Metric;
use via_trace::analysis::{pcr_vs_metric, PcrCurve};

#[derive(Serialize)]
struct Fig01 {
    curves: Vec<PcrCurve>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let min_samples = match args.scale {
        Scale::Tiny => 30,
        Scale::Small => 200,
        Scale::Paper => 1000,
    };

    // Bin ranges chosen to span the observed distributions (Figure 2).
    let ranges = [
        (Metric::Rtt, 800.0, 16),
        (Metric::Loss, 8.0, 16),
        (Metric::Jitter, 30.0, 15),
    ];

    println!("# Figure 1: normalized PCR vs network metrics\n");
    let mut curves = Vec::new();
    for (metric, x_max, n_bins) in ranges {
        let curve = pcr_vs_metric(&env.trace, metric, x_max, n_bins, min_samples);
        let max_pcr = curve
            .bins
            .iter()
            .map(|b| b.y_mean)
            .fold(f64::MIN, f64::max)
            .max(1e-9);

        println!(
            "## {metric} (correlation {:.3}, paper: {})\n",
            curve.correlation.unwrap_or(f64::NAN),
            match metric {
                Metric::Rtt => "0.97",
                Metric::Loss => "0.95",
                Metric::Jitter => "0.91",
            }
        );
        header(&[
            &format!("{metric} ({})", metric.unit()),
            "calls",
            "PCR",
            "normalized PCR",
        ]);
        for b in &curve.bins {
            row(&[
                format!("{:.1}", b.x_center),
                b.count.to_string(),
                format!("{:.3}", b.y_mean),
                format!("{:.2}", b.y_mean / max_pcr),
            ]);
        }
        println!();
        curves.push(curve);
    }

    let path = write_json("fig01", &Fig01 { curves });
    println!("Wrote {}", path.display());
}
