//! Extension (§7 "Hybrid reactive decentralized approaches"): racing the
//! top-k pruned options at call setup.
//!
//! The paper proposes letting clients "try a list of relay options … in
//! parallel, and pick the best option", using prediction-guided pruning to
//! keep the list short. This experiment sweeps the race width k and reports
//! the PNR gain over plain VIA and the probe overhead the race costs.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, pnr_masked, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};

#[derive(Serialize)]
struct Point {
    k: usize,
    pnr_any: f64,
    race_probes_per_call: f64,
}

#[derive(Serialize)]
struct ExtHybrid {
    via_pnr: f64,
    oracle_pnr: f64,
    points: Vec<Point>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);
    let objective = Metric::Rtt;

    let via_pnr = pnr_masked(&env.run(StrategyKind::Via, objective), &mask, &thresholds).any;
    let oracle_pnr = pnr_masked(
        &env.run(StrategyKind::Oracle, objective),
        &mask,
        &thresholds,
    )
    .any;

    println!("# §7 extension: hybrid racing over the pruned top-k\n");
    println!("plain VIA PNR = {via_pnr:.3}; oracle = {oracle_pnr:.3}\n");
    header(&["race width k", "PNR (any)", "setup probes per call"]);

    let mut points = Vec::new();
    for k in [1usize, 2, 3, 5] {
        let out = env.run(StrategyKind::HybridRacing { k }, objective);
        let pnr = pnr_masked(&out, &mask, &thresholds).any;
        let per_call = out.race_probes as f64 / out.calls.len().max(1) as f64;
        row(&[k.to_string(), format!("{pnr:.3}"), format!("{per_call:.1}")]);
        points.push(Point {
            k,
            pnr_any: pnr,
            race_probes_per_call: per_call,
        });
    }

    println!(
        "\nRacing closes part of the VIA→oracle gap at k× setup cost; k beyond \
         3 pays almost nothing (the pruned set rarely holds more than a few \
         genuinely competitive options)."
    );
    let path = write_json(
        "ext_hybrid",
        &ExtHybrid {
            via_pnr,
            oracle_pnr,
            points,
        },
    );
    println!("Wrote {}", path.display());
}
