//! Figure 18: the real-world controlled deployment (§5.5).
//!
//! Spins up the loopback testbed — controller (TCP), relay forwarders (UDP),
//! instrumented clients exchanging RTP probe streams through emulated WAN
//! impairments — runs back-to-back sweeps over every relay option, then
//! evaluates VIA's selection heuristic against per-round ground truth.
//!
//! Paper: VIA is within 20 % of the oracle for ~70 % of calls despite
//! picking the single best relay for no more than 30 % of them.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_experiments::{header, pct, row, write_json, Args, Scale};
use via_model::metrics::Metric;
use via_model::stats::Cdf;
use via_testbed::{evaluate_via_selection, run_testbed, TestbedConfig};

#[derive(Serialize)]
struct Fig18 {
    reports: usize,
    decisions: usize,
    best_pick_fraction: f64,
    within_20pct: f64,
    suboptimality_cdf: Vec<(f64, f64)>,
    relay_forwarded: u64,
    relay_dropped: u64,
}

fn main() {
    let args = Args::parse();
    let mut cfg = match args.scale {
        Scale::Tiny => TestbedConfig::fast(),
        Scale::Small => TestbedConfig {
            n_clients: 8,
            n_relays: 5,
            n_pairs: 10,
            rounds: 4,
            probes: 20,
            gap_ms: 3,
            ..TestbedConfig::fast()
        },
        Scale::Paper => TestbedConfig::paper_shaped(),
    };
    cfg.seed = args.seed;

    eprintln!(
        "starting testbed: {} clients, {} relays, {} pairs, {} rounds…",
        cfg.n_clients, cfg.n_relays, cfg.n_pairs, cfg.rounds
    );
    let result = run_testbed(&cfg).expect("testbed run failed");
    eprintln!(
        "collected {} reports ({} packets forwarded, {} dropped by impairment)",
        result.reports.len(),
        result.forwarded,
        result.dropped
    );

    let eval = evaluate_via_selection(&result.reports, Metric::Rtt);
    assert!(eval.decisions > 0, "no decisions evaluated");

    let cdf = Cdf::from_samples(eval.suboptimality.iter().copied()).expect("non-empty");
    println!("# Figure 18: CDF of VIA's sub-optimality on the testbed\n");
    header(&["sub-optimality", "CDF of calls"]);
    let mut points = Vec::new();
    for s in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0, 2.0] {
        let f = cdf.fraction_at_or_below(s);
        row(&[format!("{:.0}%", 100.0 * s), pct(f)]);
        points.push((s, f));
    }

    let within20 = cdf.fraction_at_or_below(0.2);
    println!(
        "\nWithin 20% of the oracle: {} of calls (paper: ~70%); \
         picked the single best relay for {} (paper: <=30%).",
        pct(within20),
        pct(eval.best_pick_fraction)
    );

    let path = write_json(
        "fig18",
        &Fig18 {
            reports: result.reports.len(),
            decisions: eval.decisions,
            best_pick_fraction: eval.best_pick_fraction,
            within_20pct: within20,
            suboptimality_cdf: points,
            relay_forwarded: result.forwarded,
            relay_dropped: result.dropped,
        },
    );
    println!("Wrote {}", path.display());
}
