//! Extension (§7 "Cost of centralized control"): client-side caching of
//! relaying decisions.
//!
//! The paper notes the per-call controller exchange "can be further reduced
//! if the clients cache the best relaying options". This experiment sweeps
//! the cache TTL and reports the trade: controller round-trips saved vs the
//! PNR cost of acting on stale decisions.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_core::strategy::StrategyKind;
use via_experiments::{build_env, header, pnr_masked, row, write_json, Args};
use via_model::metrics::{Metric, Thresholds};

#[derive(Serialize)]
struct Point {
    ttl_hours: u64,
    controller_contacts: u64,
    contacts_saved_pct: f64,
    pnr_any: f64,
}

#[derive(Serialize)]
struct ExtCache {
    via_contacts: u64,
    via_pnr: f64,
    points: Vec<Point>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let mask = env.eligible(args.scale);
    let objective = Metric::Rtt;

    let via = env.run(StrategyKind::Via, objective);
    let via_pnr = pnr_masked(&via, &mask, &thresholds).any;
    println!("# §7 extension: client-side decision caching\n");
    println!(
        "plain VIA: {} controller contacts (one per call), PNR {via_pnr:.3}\n",
        via.controller_contacts
    );
    header(&["cache TTL", "controller contacts", "saved", "PNR (any)"]);

    let mut points = Vec::new();
    for ttl_hours in [1u64, 3, 6, 12, 24, 72] {
        let out = env.run(StrategyKind::ViaCached { ttl_hours }, objective);
        let pnr = pnr_masked(&out, &mask, &thresholds).any;
        let saved = 1.0 - out.controller_contacts as f64 / via.controller_contacts as f64;
        row(&[
            format!("{ttl_hours}h"),
            out.controller_contacts.to_string(),
            format!("{:.0}%", 100.0 * saved),
            format!("{pnr:.3}"),
        ]);
        points.push(Point {
            ttl_hours,
            controller_contacts: out.controller_contacts,
            contacts_saved_pct: 100.0 * saved,
            pnr_any: pnr,
        });
    }

    println!(
        "\nShort TTLs keep nearly all of VIA's benefit while eliminating most \
         controller round-trips — the split-control direction the paper sketches."
    );
    let path = write_json(
        "ext_cache",
        &ExtCache {
            via_contacts: via.controller_contacts,
            via_pnr,
            points,
        },
    );
    println!("Wrote {}", path.display());
}
