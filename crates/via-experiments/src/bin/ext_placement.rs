//! Extension (Figure 17c's follow-up): where should new relays go?
//!
//! Figure 17c shows relay benefit is highly skewed — half the fleet carries
//! almost all of the improvement. This experiment plans a fleet from scratch
//! with the submodular greedy of `via_core::placement`, using the trace's
//! demand matrix (pair weights × default-path cost) and bounce-path costs
//! from the world model, and compares the greedy gain curve against naive
//! catalog-order deployment.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::collections::HashMap;
use via_core::placement::{plan_placement, Demand};
use via_experiments::{build_env, header, row, write_json, Args};
use via_model::ids::AsPair;
use via_model::options::RelayOption;
use via_model::time::{SimTime, SECS_PER_DAY};

#[derive(Serialize)]
struct ExtPlacement {
    greedy_sites: Vec<String>,
    greedy_gain: Vec<f64>,
    naive_gain: Vec<f64>,
    half_fleet_share: f64,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let t_eval = SimTime(env.trace.days / 2 * SECS_PER_DAY + SECS_PER_DAY / 2);
    let candidates: Vec<via_model::RelayId> = env.world.relays.iter().map(|r| r.id).collect();

    // Demand matrix: per AS pair, call count and RTT costs.
    let mut weights: HashMap<AsPair, f64> = HashMap::new();
    for r in &env.trace.records {
        if r.src_as != r.dst_as {
            *weights.entry(r.as_pair()).or_default() += 1.0;
        }
    }
    let mut pairs: Vec<_> = weights.into_iter().collect();
    // Tie-break equal weights by pair key: the map iteration order would
    // otherwise pick which tied pairs survive `truncate` and in what order
    // their gains are summed, making the output vary run to run.
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs.truncate(400); // the heavy head carries the demand

    let demands: Vec<Demand> = pairs
        .iter()
        .map(|&(pair, weight)| {
            let default_cost = env
                .world
                .perf()
                .option_mean(pair.lo, pair.hi, RelayOption::Direct, t_eval)
                .rtt_ms;
            let site_cost = candidates
                .iter()
                .map(|&r| {
                    env.world
                        .perf()
                        .option_mean(pair.lo, pair.hi, RelayOption::Bounce(r), t_eval)
                        .rtt_ms
                })
                .collect();
            Demand {
                weight,
                default_cost,
                site_cost,
            }
        })
        .collect();

    let k = candidates.len();
    let greedy = plan_placement(&candidates, &demands, k);

    // Naive baseline: deploy sites in catalog order, measure the same
    // objective cumulatively.
    let mut naive_gain = Vec::new();
    let mut best: Vec<f64> = demands.iter().map(|d| d.default_cost).collect();
    for (s, _) in candidates.iter().enumerate() {
        for (cur, d) in best.iter_mut().zip(&demands) {
            *cur = cur.min(d.site_cost[s]);
        }
        naive_gain.push(
            demands
                .iter()
                .zip(&best)
                .map(|(d, &c)| d.weight * (d.default_cost - c).max(0.0))
                .sum(),
        );
    }

    println!("# Extension: greedy relay placement vs catalog-order deployment\n");
    header(&[
        "fleet size",
        "greedy gain",
        "naive gain",
        "greedy site added",
    ]);
    for (i, site) in greedy.sites.iter().take(12).enumerate() {
        row(&[
            (i + 1).to_string(),
            format!("{:.0}", greedy.gain_curve[i]),
            format!("{:.0}", naive_gain[i]),
            env.world.relays[site.index()].name.clone(),
        ]);
    }

    let total = *greedy.gain_curve.last().expect("non-empty");
    let half_idx = greedy.sites.len() / 2;
    let half_share = greedy.gain_curve[half_idx.saturating_sub(1)] / total.max(1e-9);
    println!(
        "\nHalf the greedy fleet captures {:.0}% of the total gain (Figure 17c's skew, planned for).",
        100.0 * half_share
    );

    let path = write_json(
        "ext_placement",
        &ExtPlacement {
            greedy_sites: greedy
                .sites
                .iter()
                .map(|r| env.world.relays[r.index()].name.clone())
                .collect(),
            greedy_gain: greedy.gain_curve,
            naive_gain,
            half_fleet_share: half_share,
        },
    );
    println!("Wrote {}", path.display());
}
