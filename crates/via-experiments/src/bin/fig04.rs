//! Figure 4: international vs domestic calls, and per-country PNR.
//!
//! The paper finds international calls 2–3× more likely to cross the poor
//! thresholds than domestic ones (4a), with a heavily skewed per-country
//! distribution — the worst countries reach ~70 % PNR on individual metrics
//! (4b). The inter-AS vs intra-AS split (§2.3) shows the same 2–3× pattern.

// Experiment driver: aborting with the underlying error is the right
// response to a broken fixture or output path — no caller to recover.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use via_experiments::{build_env, header, pct, row, write_json, Args, Scale};
use via_model::metrics::Thresholds;
use via_quality::PnrReport;
use via_trace::analysis::{pnr_by_country, pnr_by_scope};

#[derive(Serialize)]
struct Fig04 {
    international: PnrReport,
    domestic: PnrReport,
    inter_as: PnrReport,
    intra_as: PnrReport,
    by_country: Vec<(String, PnrReport)>,
}

fn main() {
    let args = Args::parse();
    let env = build_env(args);
    let thresholds = Thresholds::default();
    let scope = pnr_by_scope(&env.trace, &thresholds);

    println!("# Figure 4a: PNR by scope\n");
    header(&[
        "scope",
        "calls",
        "PNR RTT",
        "PNR loss",
        "PNR jitter",
        "PNR any",
    ]);
    for (name, r) in [
        ("international", &scope.international),
        ("domestic", &scope.domestic),
        ("inter-AS", &scope.inter_as),
        ("intra-AS", &scope.intra_as),
    ] {
        row(&[
            name.into(),
            r.calls.to_string(),
            pct(r.rtt),
            pct(r.loss),
            pct(r.jitter),
            pct(r.any),
        ]);
    }
    let ratio = scope.international.any / scope.domestic.any.max(1e-9);
    println!("\nInternational/domestic PNR(any) ratio: {ratio:.1}x (paper: 2-3x)\n");

    let min_calls = match args.scale {
        Scale::Tiny => 30,
        Scale::Small => 200,
        Scale::Paper => 1000,
    };
    let ranked = pnr_by_country(&env.trace, &thresholds, min_calls);

    println!("# Figure 4b: international-call PNR by country (worst first)\n");
    header(&[
        "country",
        "calls",
        "PNR RTT",
        "PNR loss",
        "PNR jitter",
        "PNR any",
    ]);
    let mut by_country = Vec::new();
    for (cid, r) in ranked.iter().take(15) {
        let name = env.world.countries[cid.index()].name.clone();
        row(&[
            name.clone(),
            r.calls.to_string(),
            pct(r.rtt),
            pct(r.loss),
            pct(r.jitter),
            pct(r.any),
        ]);
        by_country.push((name, *r));
    }

    let result = Fig04 {
        international: scope.international,
        domestic: scope.domestic,
        inter_as: scope.inter_as,
        intra_as: scope.intra_as,
        by_country,
    };
    let path = write_json("fig04", &result);
    println!("\nWrote {}", path.display());
}
