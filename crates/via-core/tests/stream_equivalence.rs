//! Byte-identity of the replay engine across record sources and worker
//! counts.
//!
//! The streamed and materialized engines share one window state machine
//! (`engine_start` / `engine_window` / `engine_finish`), so every mode —
//! materialized trace, in-memory record stream, JSONL file, binary `.vbt`
//! file, generate-on-the-fly — must serialize to the *same bytes* at every
//! worker count. This test pins that contract: a regression in sharding,
//! window framing, file decoding, or the streamed prefetch driver shows up
//! as a JSON diff here before it shows up as a wrong paper figure.

// Test code: panicking on a broken fixture or a failed serialization is the
// right behavior.
#![allow(clippy::expect_used)]

use std::path::PathBuf;
use via_core::replay::{ReplayConfig, ReplaySim};
use via_core::strategy::{MultipathMode, StrategyKind};
use via_core::Outcome;
use via_netsim::{World, WorldConfig};
use via_trace::stream::{FileSource, TraceRecords};
use via_trace::{save_trace, Trace, TraceConfig, TraceGenerator};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn env(seed: u64) -> (World, Trace) {
    let world = World::generate(&WorldConfig::tiny(), seed);
    let trace = TraceGenerator::new(&world, TraceConfig::tiny(), seed).generate();
    (world, trace)
}

fn cfg(workers: usize, metrics: bool) -> ReplayConfig {
    ReplayConfig {
        workers,
        metrics,
        ..ReplayConfig::default()
    }
}

/// Serialized deterministic core of an outcome (`stats` and `obs` are
/// serde-skipped, so this is exactly the result surface that must not vary).
fn outcome_json(outcome: &Outcome) -> String {
    serde_json::to_string(outcome).expect("serialize outcome")
}

/// Scratch dir for the file-backed sources, unique per test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("via-stream-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

#[test]
fn all_sources_and_worker_counts_are_byte_identical() {
    let seed = 11;
    let (world, trace) = env(seed);
    let jsonl = scratch("eq.jsonl");
    let vbt = scratch("eq.vbt");
    save_trace(&trace, &jsonl).expect("write jsonl");
    save_trace(&trace, &vbt).expect("write vbt");

    let baseline =
        outcome_json(&ReplaySim::new(&world, &trace, cfg(1, false)).run(StrategyKind::Via));
    assert!(baseline.len() > 2, "baseline outcome must not be empty");

    for workers in WORKER_COUNTS {
        let materialized =
            ReplaySim::new(&world, &trace, cfg(workers, false)).run(StrategyKind::Via);
        assert_eq!(
            outcome_json(&materialized),
            baseline,
            "materialized run diverged at workers={workers}"
        );

        let sim = ReplaySim::streaming(&world, cfg(workers, false));
        let in_memory = sim
            .run_stream(TraceRecords::new(&trace), StrategyKind::Via)
            .expect("in-memory stream");
        assert_eq!(
            outcome_json(&in_memory),
            baseline,
            "in-memory stream diverged at workers={workers}"
        );

        let from_jsonl = sim
            .run_stream(
                FileSource::open(&jsonl).expect("open jsonl"),
                StrategyKind::Via,
            )
            .expect("jsonl stream");
        assert_eq!(
            outcome_json(&from_jsonl),
            baseline,
            "JSONL stream diverged at workers={workers}"
        );
        assert!(
            from_jsonl.stats.bytes_decoded > 0,
            "file-backed stream must report decode volume"
        );

        let from_vbt = sim
            .run_stream(FileSource::open(&vbt).expect("open vbt"), StrategyKind::Via)
            .expect("binary stream");
        assert_eq!(
            outcome_json(&from_vbt),
            baseline,
            "binary stream diverged at workers={workers}"
        );
        assert!(
            from_vbt.stats.bytes_decoded > 0,
            "binary stream must report decode volume"
        );

        let generator = TraceGenerator::new(&world, TraceConfig::tiny(), seed);
        let generated = sim
            .run_stream(generator.stream(), StrategyKind::Via)
            .expect("generated stream");
        assert_eq!(
            outcome_json(&generated),
            baseline,
            "generate-on-the-fly diverged at workers={workers}"
        );
    }

    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_file(&vbt);
}

#[test]
fn metrics_snapshots_match_across_modes_and_worker_counts() {
    let (world, trace) = env(12);
    let baseline = ReplaySim::new(&world, &trace, cfg(1, true))
        .run(StrategyKind::Via)
        .obs
        .expect("metrics=true records a snapshot");
    let baseline = serde_json::to_string(&baseline).expect("serialize snapshot");

    for workers in WORKER_COUNTS {
        let materialized = ReplaySim::new(&world, &trace, cfg(workers, true))
            .run(StrategyKind::Via)
            .obs
            .expect("materialized snapshot");
        assert_eq!(
            serde_json::to_string(&materialized).expect("serialize snapshot"),
            baseline,
            "materialized snapshot diverged at workers={workers}"
        );

        let streamed = ReplaySim::streaming(&world, cfg(workers, true))
            .run_stream(TraceRecords::new(&trace), StrategyKind::Via)
            .expect("streamed run")
            .obs
            .expect("streamed snapshot");
        assert_eq!(
            serde_json::to_string(&streamed).expect("serialize snapshot"),
            baseline,
            "streamed snapshot diverged at workers={workers}"
        );
    }
}

/// Rewrites the strategy display name so outcomes from strategies that must
/// behave identically (but print differently) can be compared byte-for-byte
/// on everything else.
fn neutralize_strategy(json: &str, name: &str) -> String {
    json.replacen(
        &format!("\"strategy\":\"{name}\""),
        "\"strategy\":\"<normalized>\"",
        1,
    )
}

#[test]
fn multipath_k1_equals_via_across_modes_and_worker_counts() {
    // The degenerate set: `Multipath { k: 1, Duplicate, budget: 1.0 }` makes
    // the same per-call decisions as Via from the same RNG draws, skips the
    // merge stage for singleton sets, and carries no budget gate — so every
    // engine mode at every worker count must produce byte-identical outcomes
    // and metrics snapshots, save for the strategy display name.
    let (world, trace) = env(14);
    let mp = StrategyKind::Multipath {
        k: 1,
        mode: MultipathMode::Duplicate,
        budget: 1.0,
    };

    let via_run = ReplaySim::new(&world, &trace, cfg(1, true)).run(StrategyKind::Via);
    let baseline = neutralize_strategy(&outcome_json(&via_run), "via");
    let baseline_snap =
        serde_json::to_string(&via_run.obs.expect("metrics snapshot")).expect("serialize snapshot");

    for workers in WORKER_COUNTS {
        let materialized = ReplaySim::new(&world, &trace, cfg(workers, true)).run(mp);
        assert_eq!(
            neutralize_strategy(&outcome_json(&materialized), "multipath-dup-1"),
            baseline,
            "materialized multipath k=1 diverged from via at workers={workers}"
        );
        // Metrics snapshots need no normalization: the shared schema
        // registers the multipath counters for every strategy, and they stay
        // zero for both runs.
        assert_eq!(
            serde_json::to_string(&materialized.obs.expect("materialized snapshot"))
                .expect("serialize snapshot"),
            baseline_snap,
            "materialized multipath k=1 snapshot diverged at workers={workers}"
        );

        let streamed = ReplaySim::streaming(&world, cfg(workers, true))
            .run_stream(TraceRecords::new(&trace), mp)
            .expect("streamed multipath run");
        assert_eq!(
            neutralize_strategy(&outcome_json(&streamed), "multipath-dup-1"),
            baseline,
            "streamed multipath k=1 diverged from via at workers={workers}"
        );
        assert_eq!(
            serde_json::to_string(&streamed.obs.expect("streamed snapshot"))
                .expect("serialize snapshot"),
            baseline_snap,
            "streamed multipath k=1 snapshot diverged at workers={workers}"
        );
    }
}

#[test]
fn multipath_k2_is_byte_identical_across_modes_and_worker_counts() {
    // The real multipath path (merge stage, semi-bandit updates, k-weighted
    // budget gate) must hold the same determinism contract as every other
    // strategy: one byte string across worker counts and engine drivers.
    for mp in [
        StrategyKind::Multipath {
            k: 2,
            mode: MultipathMode::Duplicate,
            budget: 1.0,
        },
        StrategyKind::Multipath {
            k: 2,
            mode: MultipathMode::Stripe,
            budget: 0.25,
        },
    ] {
        let (world, trace) = env(15);
        let baseline = outcome_json(&ReplaySim::new(&world, &trace, cfg(1, false)).run(mp));
        for workers in WORKER_COUNTS {
            assert_eq!(
                outcome_json(&ReplaySim::new(&world, &trace, cfg(workers, false)).run(mp)),
                baseline,
                "materialized {mp:?} diverged at workers={workers}"
            );
            let streamed = ReplaySim::streaming(&world, cfg(workers, false))
                .run_stream(TraceRecords::new(&trace), mp)
                .expect("streamed multipath run");
            assert_eq!(
                outcome_json(&streamed),
                baseline,
                "streamed {mp:?} diverged at workers={workers}"
            );
        }
    }
}

#[test]
fn uncollected_calls_leave_aggregate_identical() {
    let (world, trace) = env(13);
    let full = ReplaySim::new(&world, &trace, cfg(2, false)).run(StrategyKind::Via);
    let lean_cfg = ReplayConfig {
        collect_calls: false,
        ..cfg(2, false)
    };
    let lean = ReplaySim::streaming(&world, lean_cfg)
        .run_stream(TraceRecords::new(&trace), StrategyKind::Via)
        .expect("streamed run");
    assert!(
        lean.calls.is_empty(),
        "collect_calls=false must not materialize"
    );
    assert_eq!(full.aggregate, lean.aggregate);
    assert_eq!(full.controller_contacts, lean.controller_contacts);
    assert_eq!(full.race_probes, lean.race_probes);
}
