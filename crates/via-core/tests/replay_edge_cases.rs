//! Edge-case and robustness tests for the replay simulator.

use via_core::replay::{ReplayConfig, ReplaySim, SpatialGranularity};
use via_core::strategy::StrategyKind;
use via_model::metrics::{Metric, Thresholds};
use via_model::time::WindowLen;
use via_netsim::{World, WorldConfig};
use via_trace::{Trace, TraceConfig, TraceGenerator};

fn world() -> World {
    World::generate(&WorldConfig::tiny(), 99)
}

#[test]
fn empty_trace_produces_empty_outcome() {
    let w = world();
    let trace = Trace::new(0, 0, vec![]);
    for kind in [
        StrategyKind::Default,
        StrategyKind::Via,
        StrategyKind::Oracle,
    ] {
        let out = ReplaySim::new(&w, &trace, ReplayConfig::default()).run(kind);
        assert!(out.calls.is_empty());
        assert_eq!(out.pnr(&Thresholds::default()).calls, 0);
        assert_eq!(out.relayed_fraction(), 0.0);
    }
}

#[test]
fn single_call_trace_works() {
    let w = world();
    let mut cfg = TraceConfig::tiny();
    cfg.calls_per_day = 1;
    cfg.days = 1;
    let trace = TraceGenerator::new(&w, cfg, 1).generate();
    assert_eq!(trace.len(), 1);
    let out = ReplaySim::new(&w, &trace, ReplayConfig::default()).run(StrategyKind::Via);
    assert_eq!(out.calls.len(), 1);
    assert!(out.calls[0].metrics.is_finite());
}

#[test]
fn six_hour_windows_still_converge() {
    let w = world();
    let trace = TraceGenerator::new(&w, TraceConfig::tiny(), 5).generate();
    let cfg = ReplayConfig {
        window: WindowLen::hours(6),
        ..ReplayConfig::default()
    };
    let t = Thresholds::default();
    let via = ReplaySim::new(&w, &trace, cfg.clone()).run(StrategyKind::Via);
    let default = ReplaySim::new(&w, &trace, cfg).run(StrategyKind::Default);
    assert!(via.pnr(&t).rtt <= default.pnr(&t).rtt);
}

#[test]
fn extreme_epsilon_values_are_safe() {
    let w = world();
    let trace = TraceGenerator::new(&w, TraceConfig::tiny(), 6).generate();
    for epsilon in [0.0, 1.0] {
        let cfg = ReplayConfig {
            epsilon,
            ..ReplayConfig::default()
        };
        let out = ReplaySim::new(&w, &trace, cfg).run(StrategyKind::Via);
        assert_eq!(out.calls.len(), trace.len());
        if epsilon == 1.0 {
            // Pure random over candidates: a healthy share must be relayed.
            assert!(out.relayed_fraction() > 0.5);
        }
    }
}

#[test]
fn single_relay_world_works() {
    let w = world();
    let trace = TraceGenerator::new(&w, TraceConfig::tiny(), 7).generate();
    let cfg = ReplayConfig {
        allowed_relays: Some(vec![via_model::RelayId(0)]),
        ..ReplayConfig::default()
    };
    let out = ReplaySim::new(&w, &trace, cfg).run(StrategyKind::Via);
    for c in &out.calls {
        for r in c.option.relays() {
            assert_eq!(r, via_model::RelayId(0));
        }
    }
}

#[test]
fn all_objectives_run_all_strategies() {
    let w = world();
    let mut tc = TraceConfig::tiny();
    tc.calls_per_day = 200; // keep the 3×4 sweep quick
    let trace = TraceGenerator::new(&w, tc, 8).generate();
    for objective in Metric::ALL {
        for kind in [
            StrategyKind::PredictionOnly,
            StrategyKind::ExplorationOnly,
            StrategyKind::Via,
            StrategyKind::HybridRacing { k: 2 },
        ] {
            let cfg = ReplayConfig {
                objective,
                ..ReplayConfig::default()
            };
            let out = ReplaySim::new(&w, &trace, cfg).run(kind);
            assert_eq!(out.calls.len(), trace.len(), "{kind} on {objective}");
        }
    }
}

#[test]
fn country_granularity_shares_state_across_as_pairs() {
    // With country granularity on the tiny world, the run must still produce
    // valid outcomes even though multiple AS pairs share bandit state.
    let w = world();
    let trace = TraceGenerator::new(&w, TraceConfig::tiny(), 9).generate();
    let cfg = ReplayConfig {
        granularity: SpatialGranularity::Country,
        ..ReplayConfig::default()
    };
    let out = ReplaySim::new(&w, &trace, cfg).run(StrategyKind::Via);
    assert_eq!(out.calls.len(), trace.len());
    assert!(out.calls.iter().all(|c| c.metrics.is_finite()));
}

#[test]
fn budget_one_behaves_like_unbudgeted() {
    let w = world();
    let trace = TraceGenerator::new(&w, TraceConfig::tiny(), 10).generate();
    let t = Thresholds::default();
    let budgeted = ReplaySim::new(&w, &trace, ReplayConfig::default())
        .run(StrategyKind::ViaBudgeted { budget: 1.0 });
    let plain = ReplaySim::new(&w, &trace, ReplayConfig::default()).run(StrategyKind::Via);
    // With budget = 1.0 only the benefit>0 precondition differs; PNR should
    // be close.
    let b = budgeted.pnr(&t).rtt;
    let p = plain.pnr(&t).rtt;
    assert!((b - p).abs() < 0.05, "budget=1 {b} vs plain {p}");
}
