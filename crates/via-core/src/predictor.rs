//! The `Pred` module of Algorithm 1: per-(pair, option) performance
//! prediction with 95 % confidence bounds.
//!
//! For every queried (source key, destination key, relaying option) the
//! predictor returns a [`Prediction`] carrying, per metric, a mean and a
//! standard error in *linearized* space (see [`crate::tomography`]), from
//! which the `Pred_lower` / `Pred_upper` bounds of §4.4 are derived as
//! `mean ± 1.96·SEM`. Sources, in order of preference:
//!
//! 1. **Empirical** — the cell was observed in the training window with
//!    enough samples; mean and SEM come straight from the data.
//! 2. **Tomography** — the cell is a *hole*, but both client-side segments
//!    were solved from other pairs' calls; the path is stitched (Figure 11).
//! 3. **Prior** — nothing relevant was observed. The controller still knows
//!    client and relay geography (GeoIP), so the prior predicts
//!    inflation-scaled fiber latency and global typical loss/jitter, with a
//!    deliberately wide SEM so priors lose to any data-backed estimate in
//!    the top-k pruning.

use via_model::ids::RelayId;
use via_model::metrics::{Metric, PathMetrics};
use via_model::options::RelayOption;
use via_model::time::Window;
use via_netsim::GeoPoint;

use crate::history::{CallHistory, KeyPair, MetricStats};
use crate::tomography::{delinearize, linearize, linearize_sem, Tomography, TomographyConfig};

/// Where a prediction came from (diagnostics and the Figure 11 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionSource {
    /// Directly observed with this many samples.
    Empirical(u64),
    /// Stitched from tomography segments.
    Tomography,
    /// Geography-based prior.
    Prior,
}

/// A prediction with confidence bounds, per metric.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    lin_mean: [f64; 3],
    lin_sem: [f64; 3],
    /// Provenance of the estimate.
    pub source: PredictionSource,
}

impl Prediction {
    /// Builds a prediction from linearized means and SEMs.
    pub fn from_linear(lin_mean: [f64; 3], lin_sem: [f64; 3], source: PredictionSource) -> Self {
        Self {
            lin_mean,
            lin_sem,
            source,
        }
    }

    /// Predicted mean of a metric, in metric units.
    pub fn mean(&self, m: Metric) -> f64 {
        delinearize(m, self.lin_mean[idx(m)])
    }

    /// `Pred_lower`: lower 95 % confidence bound, metric units.
    pub fn lower(&self, m: Metric) -> f64 {
        delinearize(m, self.lin_mean[idx(m)] - 1.96 * self.lin_sem[idx(m)])
    }

    /// `Pred_upper`: upper 95 % confidence bound, metric units.
    pub fn upper(&self, m: Metric) -> f64 {
        delinearize(m, self.lin_mean[idx(m)] + 1.96 * self.lin_sem[idx(m)])
    }

    /// All three predicted means as a [`PathMetrics`].
    pub fn mean_metrics(&self) -> PathMetrics {
        PathMetrics::new(
            self.mean(Metric::Rtt),
            self.mean(Metric::Loss),
            self.mean(Metric::Jitter),
        )
    }
}

fn idx(m: Metric) -> usize {
    match m {
        Metric::Rtt => 0,
        Metric::Loss => 1,
        Metric::Jitter => 2,
    }
}

/// The single-cell empirical fit applied to every observed cell.
///
/// Shared by the whole-window [`Predictor::fit`] and the per-report
/// incremental path ([`crate::online::OnlineRefit`], and the live
/// controller's sharded variant in `via-server`): all feed a cell's Welford
/// sufficient statistics through this exact function, which is what makes
/// batch and incremental refits produce bit-identical predictions from
/// identical statistics.
pub fn fit_cell(stats: &MetricStats, cfg: &PredictorConfig) -> Option<Prediction> {
    let n = stats.count();
    if n == 0 {
        return None;
    }
    let mut lin_mean = [0.0; 3];
    let mut lin_sem = [0.0; 3];
    for &metric in Metric::ALL.iter() {
        let s = stats.metric(metric);
        let mean = s.mean().unwrap_or(0.0);
        let sem = s
            .sem()
            .unwrap_or_else(|| mean.abs() * cfg.sparse_rel_sem)
            .max(1e-9);
        lin_mean[idx(metric)] = linearize(metric, mean);
        // Floor the SEM for sparse cells (a relative uncertainty
        // decaying as 1/n) so one lucky sample cannot look
        // authoritative, without chaining every interval together
        // once a handful of samples exist.
        lin_sem[idx(metric)] = linearize_sem(metric, mean, sem)
            .max(cfg.sparse_rel_sem / n as f64 * linearize(metric, mean).max(1e-6));
    }
    Some(Prediction::from_linear(
        lin_mean,
        lin_sem,
        PredictionSource::Empirical(n),
    ))
}

/// Predictor configuration.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// Minimum samples for an empirical cell to be trusted over tomography.
    pub min_empirical_samples: u64,
    /// Relative SEM substitute when a cell has a mean but too few samples
    /// for a variance estimate.
    pub sparse_rel_sem: f64,
    /// Relative SEM of the geographic prior (wide on purpose).
    pub prior_rel_sem: f64,
    /// Prior inflation over fiber RTT for unknown paths.
    pub prior_inflation: f64,
    /// Prior loss (percent) for unknown paths.
    pub prior_loss_pct: f64,
    /// Prior jitter (ms) for unknown paths.
    pub prior_jitter_ms: f64,
    /// Worker threads for the per-cell empirical fit (`0` = one per core,
    /// `1` = sequential). The fit is embarrassingly parallel across cells
    /// and its result is identical for any value.
    pub workers: usize,
    /// Tomography solver settings.
    pub tomography: TomographyConfig,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            min_empirical_samples: 3,
            sparse_rel_sem: 0.5,
            prior_rel_sem: 0.6,
            prior_inflation: 1.9,
            prior_loss_pct: 0.6,
            prior_jitter_ms: 5.0,
            workers: 1,
            tomography: TomographyConfig::default(),
        }
    }
}

/// Geography the controller knows: one representative position per spatial
/// key and per relay. Built once per world by the replay engine / testbed.
#[derive(Debug, Clone)]
pub struct GeoPrior {
    key_pos: Vec<GeoPoint>,
    relay_pos: Vec<GeoPoint>,
}

impl GeoPrior {
    /// Builds a prior from per-key and per-relay positions (indexable by key
    /// value / relay id).
    pub fn new(key_pos: Vec<GeoPoint>, relay_pos: Vec<GeoPoint>) -> Self {
        Self { key_pos, relay_pos }
    }

    fn pos_of_key(&self, key: u32) -> Option<&GeoPoint> {
        self.key_pos.get(key as usize)
    }

    /// Prior fiber-bound RTT of an option, ms.
    fn path_rtt_floor(&self, a: u32, b: u32, option: RelayOption) -> Option<f64> {
        let pa = self.pos_of_key(a)?;
        let pb = self.pos_of_key(b)?;
        Some(match option.canonical() {
            RelayOption::Direct => pa.min_rtt_ms(pb),
            RelayOption::Bounce(r) => {
                let pr = self.relay_pos.get(r.index())?;
                pa.min_rtt_ms(pr) + pr.min_rtt_ms(pb)
            }
            RelayOption::Transit(r1, r2) => {
                let p1 = self.relay_pos.get(r1.index())?;
                let p2 = self.relay_pos.get(r2.index())?;
                // Orient for the shorter on-ramps, like the managed network.
                let fwd = pa.min_rtt_ms(p1) + p2.min_rtt_ms(pb);
                let rev = pa.min_rtt_ms(p2) + p1.min_rtt_ms(pb);
                fwd.min(rev) + p1.min_rtt_ms(p2)
            }
        })
    }
}

/// The fitted predictor for one control window.
pub struct Predictor {
    cfg: PredictorConfig,
    window: Window,
    empirical: std::collections::HashMap<(KeyPair, RelayOption), Prediction>,
    tomography: Tomography,
    prior: GeoPrior,
    backbone: Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync>,
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("window", &self.window)
            .field("empirical_cells", &self.empirical.len())
            .field("tomography_segments", &self.tomography.len())
            .finish()
    }
}

impl Predictor {
    /// Fits a predictor on the history of `training_window` (stage 1 + 2 of
    /// Algorithm 1). `backbone` supplies known inter-relay metrics.
    pub fn fit(
        history: &CallHistory,
        training_window: Window,
        prior: GeoPrior,
        backbone: Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync>,
        cfg: PredictorConfig,
    ) -> Predictor {
        // Per-cell fits are independent; sort cells (hash-map order must not
        // pick the chunking) and fan out across the worker pool. Small
        // windows stay sequential — thread startup would dominate.
        let mut cells: Vec<_> = history.window_cells(training_window).collect();
        cells.sort_by_key(|(k, _)| **k);
        let workers = if cells.len() < 256 {
            1
        } else {
            crate::par::resolve_workers(cfg.workers)
        };
        let fitted = crate::par::par_map(workers, &cells, |_, &(&(pair, option), stats)| {
            fit_cell(stats, &cfg).map(|pred| ((pair, option), pred))
        });
        let mut empirical = std::collections::HashMap::with_capacity(cells.len());
        for (key, pred) in fitted.into_iter().flatten() {
            empirical.insert(key, pred);
        }
        let tomography =
            Tomography::fit(history, training_window, backbone.as_ref(), &cfg.tomography);
        Predictor {
            cfg,
            window: training_window,
            empirical,
            tomography,
            prior,
            backbone,
        }
    }

    /// Assembles a predictor from an externally maintained empirical cell
    /// map plus a fitted tomography model — the publish step of the
    /// incremental-refit path ([`crate::online::OnlineRefit`] and the
    /// sharded live controller in `via-server`). `fit` is exactly
    /// `from_parts` applied to the cells it computes itself; callers must
    /// pass cells produced by [`fit_cell`] over the same history for the
    /// bit-identity guarantee to hold.
    pub fn from_parts(
        cfg: PredictorConfig,
        window: Window,
        empirical: std::collections::HashMap<(KeyPair, RelayOption), Prediction>,
        tomography: Tomography,
        prior: GeoPrior,
        backbone: Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync>,
    ) -> Predictor {
        Predictor {
            cfg,
            window,
            empirical,
            tomography,
            prior,
            backbone,
        }
    }

    /// A predictor with no history at all (cold start): prior-only.
    pub fn cold(
        prior: GeoPrior,
        backbone: Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync>,
        cfg: PredictorConfig,
    ) -> Predictor {
        Predictor {
            cfg,
            window: Window {
                index: 0,
                len: via_model::time::WindowLen::DAY,
            },
            empirical: std::collections::HashMap::new(),
            tomography: Tomography::default(),
            prior,
            backbone,
        }
    }

    /// Number of empirical cells in the model.
    pub fn empirical_cells(&self) -> usize {
        self.empirical.len()
    }

    /// Number of tomography-solved segments.
    pub fn tomography_segments(&self) -> usize {
        self.tomography.len()
    }

    /// Predicts performance of `option` between spatial keys `a` and `b`.
    /// Always succeeds: falls back to the geographic prior.
    pub fn predict(&self, a: u32, b: u32, option: RelayOption) -> Prediction {
        let option = option.canonical();
        let pair = KeyPair::new(a, b);
        if let Some(p) = self.empirical.get(&(pair, option)) {
            if let PredictionSource::Empirical(n) = p.source {
                if n >= self.cfg.min_empirical_samples {
                    return *p;
                }
            }
        }
        if let Some((lin_mean, lin_sem)) =
            self.tomography.stitch(a, b, option, self.backbone.as_ref())
        {
            return Prediction::from_linear(lin_mean, lin_sem, PredictionSource::Tomography);
        }
        // Sparse empirical beats pure prior.
        if let Some(p) = self.empirical.get(&(pair, option)) {
            return *p;
        }
        self.prior_prediction(a, b, option)
    }

    fn prior_prediction(&self, a: u32, b: u32, option: RelayOption) -> Prediction {
        let cfg = &self.cfg;
        let rtt = self
            .prior
            .path_rtt_floor(a, b, option)
            .map(|floor| floor * cfg.prior_inflation + 20.0)
            .unwrap_or(250.0);
        let mut lin_mean = [0.0; 3];
        let mut lin_sem = [0.0; 3];
        let means = [rtt, cfg.prior_loss_pct, cfg.prior_jitter_ms];
        for (i, &metric) in Metric::ALL.iter().enumerate() {
            lin_mean[i] = linearize(metric, means[i]);
            lin_sem[i] = (cfg.prior_rel_sem * lin_mean[i]).max(1e-6);
        }
        Prediction::from_linear(lin_mean, lin_sem, PredictionSource::Prior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_model::time::{SimTime, WindowLen};

    fn window() -> Window {
        WindowLen::DAY.window_of(SimTime::ZERO)
    }

    fn prior() -> GeoPrior {
        GeoPrior::new(
            vec![
                GeoPoint::new(40.7, -74.0), // key 0: NYC
                GeoPoint::new(51.5, -0.1),  // key 1: London
                GeoPoint::new(35.7, 139.7), // key 2: Tokyo
            ],
            vec![
                GeoPoint::new(38.9, -77.5), // R0: Virginia
                GeoPoint::new(50.1, 8.7),   // R1: Frankfurt
            ],
        )
    }

    fn bb() -> Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync> {
        Box::new(|_, _| PathMetrics::new(80.0, 0.01, 0.4))
    }

    #[test]
    fn empirical_preferred_when_dense() {
        let mut h = CallHistory::new();
        let pair = KeyPair::new(0, 1);
        for i in 0..10 {
            h.record(
                window(),
                pair,
                RelayOption::Direct,
                &PathMetrics::new(100.0 + i as f64, 1.0, 5.0),
            );
        }
        let p = Predictor::fit(&h, window(), prior(), bb(), PredictorConfig::default());
        let pred = p.predict(0, 1, RelayOption::Direct);
        assert!(matches!(pred.source, PredictionSource::Empirical(10)));
        assert!((pred.mean(Metric::Rtt) - 104.5).abs() < 0.5);
        assert!(pred.lower(Metric::Rtt) < pred.mean(Metric::Rtt));
        assert!(pred.upper(Metric::Rtt) > pred.mean(Metric::Rtt));
    }

    #[test]
    fn tomography_fills_holes() {
        let mut h = CallHistory::new();
        let r = RelayId(0);
        // Observe 0↔1 and 1↔2 bounces; 0↔2 is a hole.
        for _ in 0..10 {
            h.record(
                window(),
                KeyPair::new(0, 1),
                RelayOption::Bounce(r),
                &PathMetrics::new(100.0, 0.5, 4.0),
            );
            h.record(
                window(),
                KeyPair::new(1, 2),
                RelayOption::Bounce(r),
                &PathMetrics::new(140.0, 0.7, 5.0),
            );
        }
        let p = Predictor::fit(&h, window(), prior(), bb(), PredictorConfig::default());
        let pred = p.predict(0, 2, RelayOption::Bounce(r));
        assert_eq!(pred.source, PredictionSource::Tomography);
        let rtt = pred.mean(Metric::Rtt);
        // Under-determined with two equations and three unknowns, but the
        // stitched value must land in a plausible range around 120.
        assert!((60.0..200.0).contains(&rtt), "stitched RTT {rtt}");
    }

    #[test]
    fn prior_used_when_nothing_known() {
        let h = CallHistory::new();
        let p = Predictor::fit(&h, window(), prior(), bb(), PredictorConfig::default());
        let pred = p.predict(0, 2, RelayOption::Direct);
        assert_eq!(pred.source, PredictionSource::Prior);
        // NYC–Tokyo fiber bound ≈ 108 ms; prior applies inflation.
        let rtt = pred.mean(Metric::Rtt);
        assert!(rtt > 150.0 && rtt < 400.0, "prior RTT {rtt}");
        // Prior must be wide.
        assert!(pred.upper(Metric::Rtt) / pred.lower(Metric::Rtt).max(1.0) > 1.5);
    }

    #[test]
    fn prior_ranks_nearby_relay_better() {
        let h = CallHistory::new();
        let p = Predictor::fit(&h, window(), prior(), bb(), PredictorConfig::default());
        // NYC↔London via Virginia (on the way) vs via... a bounce through
        // Frankfurt (detour past the destination).
        let via_virginia = p.predict(0, 1, RelayOption::Bounce(RelayId(0)));
        let via_frankfurt = p.predict(0, 1, RelayOption::Bounce(RelayId(1)));
        assert!(
            via_virginia.mean(Metric::Rtt) < via_frankfurt.mean(Metric::Rtt) + 30.0,
            "prior should not wildly prefer the detour"
        );
    }

    #[test]
    fn cold_predictor_always_answers() {
        let p = Predictor::cold(prior(), bb(), PredictorConfig::default());
        for option in [
            RelayOption::Direct,
            RelayOption::Bounce(RelayId(1)),
            RelayOption::Transit(RelayId(0), RelayId(1)),
        ] {
            let pred = p.predict(0, 2, option);
            assert_eq!(pred.source, PredictionSource::Prior);
            assert!(pred.mean(Metric::Rtt).is_finite());
            assert!(pred.mean(Metric::Loss) >= 0.0);
        }
    }

    #[test]
    fn bounds_bracket_mean_for_all_sources() {
        let mut h = CallHistory::new();
        h.record(
            window(),
            KeyPair::new(0, 1),
            RelayOption::Direct,
            &PathMetrics::new(90.0, 0.2, 2.0),
        );
        let p = Predictor::fit(&h, window(), prior(), bb(), PredictorConfig::default());
        for (a, b, opt) in [
            (0, 1, RelayOption::Direct),
            (0, 2, RelayOption::Direct),
            (1, 2, RelayOption::Bounce(RelayId(0))),
        ] {
            let pred = p.predict(a, b, opt);
            for m in Metric::ALL {
                assert!(pred.lower(m) <= pred.mean(m) + 1e-9);
                assert!(pred.upper(m) + 1e-9 >= pred.mean(m));
            }
        }
    }

    #[test]
    fn sparse_empirical_beats_prior_but_not_tomography() {
        let mut h = CallHistory::new();
        // One single sample — below min_empirical_samples.
        h.record(
            window(),
            KeyPair::new(0, 1),
            RelayOption::Direct,
            &PathMetrics::new(90.0, 0.2, 2.0),
        );
        let p = Predictor::fit(&h, window(), prior(), bb(), PredictorConfig::default());
        let pred = p.predict(0, 1, RelayOption::Direct);
        // Direct has no tomography; sparse empirical should win over prior.
        assert!(matches!(pred.source, PredictionSource::Empirical(1)));
    }
}
