//! Deterministic fork–join helpers for the window-parallel replay engine.
//!
//! Everything here preserves a hard invariant: **results are a pure function
//! of the inputs, never of the worker count or thread scheduling**. Work is
//! split into contiguous chunks, each chunk is processed independently, and
//! the per-chunk results are concatenated back in input order. No shared
//! mutable state, no atomics, no channels — determinism by construction.
//!
//! With `workers <= 1` (or trivially small inputs) every helper degrades to a
//! plain sequential loop with zero threading overhead, so the sequential
//! replay path and the sharded path share one implementation.

use crossbeam::thread as cb_thread;

/// Resolves a configured worker count: `0` means "one worker per available
/// core", anything else is taken literally.
pub fn resolve_workers(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Splits `n` items into at most `workers` contiguous chunk ranges of
/// near-equal size. Ranges are returned in order and cover `0..n` exactly.
fn chunk_ranges(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let workers = workers.max(1).min(n.max(1));
    let base = n / workers;
    let extra = n % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning the
/// results **in input order**. `f` receives the item's index and a reference
/// to the item; it must be a pure function of those for the output to be
/// worker-count invariant (the helper guarantees ordering, the closure
/// guarantees purity).
pub fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1);
    if workers == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let ranges = chunk_ranges(items.len(), workers);
    let chunks: Vec<Vec<R>> = cb_thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|range| {
                let f = &f;
                s.spawn(move |_| {
                    items[range.clone()]
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(range.start + off, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
    .unwrap_or_default();
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Consumes `tasks` and runs each on the worker pool, returning results in
/// task order. Unlike [`par_map`] the tasks are owned (each shard of the
/// replay engine owns its pair states and local history), and each worker
/// processes exactly one task — callers shard work into at most `workers`
/// tasks themselves.
pub fn par_run<T, R, F>(workers: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1);
    if workers == 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(f).collect();
    }
    cb_thread::scope(|s| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let f = &f;
                s.spawn(move |_| f(task))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
    .unwrap_or_default()
}

/// Like [`par_run`], but each task additionally borrows a mutable slot from
/// `slots` (task `i` gets `slots[i]`). The slots let callers keep expensive
/// per-worker state — scratch buffers, preallocated metric sinks — alive
/// across fork–join rounds instead of reallocating it inside every task.
/// Results come back in task order; `slots` must be at least as long as
/// `tasks`.
pub fn par_run_with<T, S, R, F>(workers: usize, tasks: Vec<T>, slots: &mut [S], f: F) -> Vec<R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(T, &mut S) -> R + Sync,
{
    let workers = workers.max(1);
    assert!(
        slots.len() >= tasks.len(),
        "par_run_with: {} tasks but only {} slots",
        tasks.len(),
        slots.len()
    );
    if workers == 1 || tasks.len() <= 1 {
        return tasks
            .into_iter()
            .zip(slots.iter_mut())
            .map(|(t, slot)| f(t, slot))
            .collect();
    }
    cb_thread::scope(|s| {
        let handles: Vec<_> = tasks
            .into_iter()
            .zip(slots.iter_mut())
            .map(|(task, slot)| {
                let f = &f;
                s.spawn(move |_| f(task, slot))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 2, 7, 100] {
            for w in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(n, w);
                let mut covered = 0;
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start);
                    covered += r.len();
                    expect_start = r.end;
                }
                assert_eq!(covered, n, "n={n} w={w}");
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let seq = par_map(1, &items, |i, &x| x * 3 + i as u64);
        for w in [2, 3, 8, 64] {
            assert_eq!(par_map(w, &items, |i, &x| x * 3 + i as u64), seq);
        }
    }

    #[test]
    fn par_run_preserves_task_order() {
        let tasks: Vec<usize> = (0..17).collect();
        assert_eq!(
            par_run(4, tasks.clone(), |t| t * 2),
            par_run(1, tasks, |t| t * 2)
        );
    }

    #[test]
    fn par_run_with_reuses_slots_in_task_order() {
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); 4];
        let out = par_run_with(4, (0..4).collect(), &mut slots, |t: usize, slot| {
            slot.push(t);
            t * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        // A second round sees the state the first round left in each slot.
        let out = par_run_with(4, (0..3).collect(), &mut slots, |t: usize, slot| {
            slot.push(t + 100);
            slot.len()
        });
        assert_eq!(out, vec![2, 2, 2]);
        assert_eq!(slots[0], vec![0, 100]);
        assert_eq!(slots[3], vec![3], "unused slot untouched in round two");
        // Sequential fallback matches the threaded path.
        let mut seq_slots: Vec<Vec<usize>> = vec![Vec::new(); 4];
        let seq = par_run_with(1, (0..4).collect(), &mut seq_slots, |t: usize, slot| {
            slot.push(t);
            t * 10
        });
        assert_eq!(seq, vec![0, 10, 20, 30]);
    }

    #[test]
    fn resolve_workers_passthrough() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }
}
