//! Active measurement planning — the paper's §7 future-work item,
//! implemented: "Active measurements can be intelligently orchestrated to
//! fill 'holes' in the passively obtained measurements, thereby making our
//! prediction-guided exploration (both its aspects — tomography as well as
//! bandit solution) more effective."
//!
//! Given the demand (which pairs are expected to call), the candidate
//! options per pair, and the current predictor, the planner finds the
//! *holes* — candidate options whose prediction still falls back to the
//! geographic prior — and greedily selects a probe set under a budget,
//! preferring probes whose client-side segments appear in many holes
//! (one probe of `bounce(a, r)` helps every pair touching segment `(a, r)`
//! through tomography).

use std::collections::{HashMap, HashSet};
use via_model::ids::RelayId;
use via_model::options::RelayOption;

use crate::predictor::{PredictionSource, Predictor};

/// One planned probe: make a mock call between the two keys over the option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Source spatial key.
    pub a: u32,
    /// Destination spatial key.
    pub b: u32,
    /// Option to exercise.
    pub option: RelayOption,
}

/// The client-side tomography segments a probe of `option` between keys
/// `(a, b)` would measure.
fn segments_of(a: u32, b: u32, option: RelayOption) -> Vec<(u32, RelayId)> {
    match option.canonical() {
        RelayOption::Direct => vec![],
        RelayOption::Bounce(r) => vec![(a, r), (b, r)],
        RelayOption::Transit(r1, r2) => vec![(a, r1), (b, r2), (a, r2), (b, r1)],
    }
}

/// Plans up to `budget` probes for the given demand set.
///
/// `demands` lists (source key, destination key, candidate options) for the
/// pairs expected to carry calls. A candidate is a *hole* when the
/// predictor's answer is prior-sourced. The planner scores each hole probe
/// by how many distinct holes share its segments (set-cover greedy) and
/// returns the best `budget` probes.
pub fn plan_probes(
    demands: &[(u32, u32, Vec<RelayOption>)],
    predictor: &Predictor,
    budget: usize,
) -> Vec<Probe> {
    if budget == 0 {
        return Vec::new();
    }

    // Collect holes and segment demand frequencies.
    let mut holes: Vec<Probe> = Vec::new();
    let mut seg_demand: HashMap<(u32, RelayId), u32> = HashMap::new();
    for (a, b, options) in demands {
        for &option in options {
            if !option.is_relayed() {
                continue; // direct paths cannot be stitched (tomography is relay-based)
            }
            let pred = predictor.predict(*a, *b, option);
            if pred.source == PredictionSource::Prior {
                holes.push(Probe {
                    a: *a,
                    b: *b,
                    option,
                });
                for seg in segments_of(*a, *b, option) {
                    *seg_demand.entry(seg).or_default() += 1;
                }
            }
        }
    }
    if holes.is_empty() {
        return Vec::new();
    }

    // Greedy: repeatedly take the probe covering the most not-yet-covered
    // segment demand.
    let mut covered: HashSet<(u32, RelayId)> = HashSet::new();
    let mut plan = Vec::with_capacity(budget.min(holes.len()));
    let mut remaining: Vec<Probe> = holes;
    while plan.len() < budget && !remaining.is_empty() {
        let Some((best_idx, best_score)) = remaining
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let score: u32 = segments_of(p.a, p.b, p.option)
                    .into_iter()
                    .filter(|seg| !covered.contains(seg))
                    .map(|seg| seg_demand.get(&seg).copied().unwrap_or(0))
                    .sum();
                (i, score)
            })
            .max_by_key(|&(_, s)| s)
        else {
            break; // unreachable: the loop condition keeps `remaining` non-empty
        };
        if best_score == 0 {
            break; // every remaining probe only re-measures covered segments
        }
        let probe = remaining.swap_remove(best_idx);
        for seg in segments_of(probe.a, probe.b, probe.option) {
            covered.insert(seg);
        }
        plan.push(probe);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::CallHistory;
    use crate::predictor::{GeoPrior, PredictorConfig};
    use via_model::metrics::PathMetrics;
    use via_model::time::{SimTime, WindowLen};
    use via_netsim::GeoPoint;

    fn cold_predictor(n_keys: usize, n_relays: usize) -> Predictor {
        let prior = GeoPrior::new(
            (0..n_keys)
                .map(|i| GeoPoint::new(10.0 + i as f64, 10.0 + i as f64))
                .collect(),
            (0..n_relays)
                .map(|i| GeoPoint::new(-10.0 - i as f64, 20.0))
                .collect(),
        );
        Predictor::cold(
            prior,
            Box::new(|_, _| PathMetrics::new(50.0, 0.01, 0.4)),
            PredictorConfig::default(),
        )
    }

    fn demands(n_pairs: u32, relays: u32) -> Vec<(u32, u32, Vec<RelayOption>)> {
        (0..n_pairs)
            .map(|i| {
                let options = (0..relays)
                    .map(|r| RelayOption::Bounce(RelayId(r)))
                    .collect();
                (i, i + 1, options)
            })
            .collect()
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let p = cold_predictor(5, 3);
        assert!(plan_probes(&demands(3, 2), &p, 0).is_empty());
    }

    #[test]
    fn cold_predictor_means_everything_is_a_hole() {
        let p = cold_predictor(5, 3);
        let plan = plan_probes(&demands(3, 2), &p, 100);
        // 3 pairs × 2 options = 6 holes, but greedy stops once segments are
        // covered; every planned probe must be a demanded one.
        assert!(!plan.is_empty());
        assert!(plan.len() <= 6);
        for probe in &plan {
            assert!(probe.option.is_relayed());
        }
    }

    #[test]
    fn budget_is_respected() {
        let p = cold_predictor(10, 4);
        let plan = plan_probes(&demands(8, 4), &p, 3);
        assert!(plan.len() <= 3);
    }

    #[test]
    fn shared_segments_are_prioritized() {
        // Pairs (0,1), (0,2), (0,3) all share key 0; probing a bounce for
        // key 0 covers the hot segment. The first chosen probe must involve
        // key 0.
        let p = cold_predictor(5, 1);
        let d = vec![
            (0, 1, vec![RelayOption::Bounce(RelayId(0))]),
            (0, 2, vec![RelayOption::Bounce(RelayId(0))]),
            (0, 3, vec![RelayOption::Bounce(RelayId(0))]),
            (4, 3, vec![RelayOption::Bounce(RelayId(0))]),
        ];
        let plan = plan_probes(&d, &p, 1);
        assert_eq!(plan.len(), 1);
        assert!(plan[0].a == 0 || plan[0].b == 0, "should probe the hot key");
    }

    #[test]
    fn no_holes_when_history_is_dense() {
        // Train a predictor that has empirical data for every demanded cell.
        let window = WindowLen::DAY.window_of(SimTime::ZERO);
        let mut h = CallHistory::new();
        let d = demands(3, 2);
        for (a, b, options) in &d {
            for &o in options {
                for _ in 0..5 {
                    h.record(
                        window,
                        crate::history::KeyPair::new(*a, *b),
                        o,
                        &PathMetrics::new(120.0, 0.3, 4.0),
                    );
                }
            }
        }
        let prior = GeoPrior::new(
            (0..5).map(|i| GeoPoint::new(i as f64, i as f64)).collect(),
            (0..2).map(|i| GeoPoint::new(-(i as f64), 5.0)).collect(),
        );
        let p = Predictor::fit(
            &h,
            window,
            prior,
            Box::new(|_, _| PathMetrics::ZERO),
            PredictorConfig::default(),
        );
        assert!(plan_probes(&d, &p, 10).is_empty());
    }

    #[test]
    fn direct_options_are_never_probed() {
        let p = cold_predictor(3, 1);
        let d = vec![(0, 1, vec![RelayOption::Direct])];
        assert!(plan_probes(&d, &p, 5).is_empty());
    }
}
