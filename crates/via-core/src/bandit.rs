//! The modified UCB1 exploration–exploitation step (Algorithm 3).
//!
//! Within one control window and one source–destination pair, the pruned
//! top-k options are the arms of a multi-armed bandit. VIA adapts UCB1
//! ([Auer et al. 2002]) in two ways (§4.5):
//!
//! 1. **Outlier-robust normalization** — rewards are not normalized by the
//!    full value range (heavy tails would crush common-case differences) but
//!    by `w`, the mean of the top-k candidates' `Pred_upper` bounds.
//! 2. **Minimization form** — network metrics are costs, so the selection
//!    minimizes `mean_normalized_cost − √(0.1·ln T / n_r)` (exploration bonus
//!    subtracted rather than added).
//!
//! A separate ε-fraction of calls bypasses the bandit entirely and samples a
//! uniformly random option from the *full* candidate set — the "general
//! exploration" that keeps the next window's pruning honest when reward
//! distributions drift (the paper's second modification).

use via_model::options::RelayOption;

/// Per-arm statistics.
#[derive(Debug, Clone)]
struct Arm {
    option: RelayOption,
    /// Calls assigned to this arm so far (|C_r|).
    n: u64,
    /// Sum of observed raw costs Q(c, r).
    cost_sum: f64,
}

/// Bandit state for one (pair, window): the `Explore` function of
/// Algorithm 3, kept incrementally instead of recomputed per call.
#[derive(Debug, Clone)]
pub struct UcbBandit {
    arms: Vec<Arm>,
    /// Total assignments made through this bandit (T − 1).
    total: u64,
    /// Normalizer w = mean of top-k Pred_upper values.
    w: f64,
    /// Exploration coefficient (paper: 0.1 under the square root).
    pub exploration_coef: f64,
    /// If false, raw costs are used without normalization (the "original
    /// UCB1" ablation of Figure 15).
    pub normalize: bool,
}

impl UcbBandit {
    /// Creates a bandit over the pruned top-k options. `w` is the
    /// normalizer: the mean of the options' upper confidence bounds on the
    /// objective metric (Algorithm 3 line 3).
    pub fn new(options: impl IntoIterator<Item = RelayOption>, w: f64) -> UcbBandit {
        UcbBandit {
            arms: options
                .into_iter()
                .map(|option| Arm {
                    option,
                    n: 0,
                    cost_sum: 0.0,
                })
                .collect(),
            total: 0,
            w: if w > 0.0 { w } else { 1.0 },
            exploration_coef: 0.1,
            normalize: true,
        }
    }

    /// Creates a bandit whose arms are warm-started with `virtual_n`
    /// pseudo-observations at their *predicted* cost.
    ///
    /// Plain UCB1 plays every arm once before comparing; with only tens of
    /// calls per (pair, window), that initial sweep dominates. VIA already
    /// holds a prediction for every pruned candidate, so arms start from the
    /// predicted cost and the UCB bonus arbitrates between prediction and
    /// observation — this is the "prediction-guided" half of
    /// prediction-guided exploration applied inside the bandit.
    pub fn with_priors(
        options: impl IntoIterator<Item = (RelayOption, f64)>,
        w: f64,
        virtual_n: u64,
    ) -> UcbBandit {
        let mut bandit = UcbBandit {
            arms: options
                .into_iter()
                .map(|(option, predicted_cost)| Arm {
                    option,
                    n: virtual_n,
                    cost_sum: predicted_cost.max(0.0) * virtual_n as f64,
                })
                .collect(),
            total: 0,
            w: if w > 0.0 { w } else { 1.0 },
            exploration_coef: 0.1,
            normalize: true,
        };
        bandit.total = bandit.arms.len() as u64 * virtual_n;
        bandit
    }

    /// Number of arms.
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// True if the bandit has no arms.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The arm options.
    pub fn options(&self) -> impl Iterator<Item = RelayOption> + '_ {
        self.arms.iter().map(|a| a.option)
    }

    /// Picks the arm with the minimal lower-confidence cost index. Unplayed
    /// arms take priority (UCB1 plays every arm once before comparing).
    /// Returns `None` only when the bandit has no arms.
    pub fn choose(&self) -> Option<RelayOption> {
        if self.arms.is_empty() {
            return None;
        }
        if let Some(unplayed) = self.arms.iter().find(|a| a.n == 0) {
            return Some(unplayed.option);
        }
        let t = (self.total + 1) as f64;
        let mut best: Option<(f64, RelayOption)> = None;
        for arm in &self.arms {
            let norm = if self.normalize { self.w } else { 1.0 };
            let mean_cost = arm.cost_sum / (norm * arm.n as f64);
            let bonus = (self.exploration_coef * t.ln() / arm.n as f64).sqrt();
            let index = mean_cost - bonus;
            if best.is_none_or(|(b, _)| index < b) {
                best = Some((index, arm.option));
            }
        }
        best.map(|(_, o)| o)
    }

    /// Combinatorial (CUCB-style) extension of [`UcbBandit::choose`]: fills
    /// `out` with up to `k` distinct arms, best lower-confidence index
    /// first. Under a cardinality-only constraint the optimal super-arm is
    /// exactly the k best per-arm indices, so the set shares the same
    /// per-path confidence intervals as the single-path bandit — no
    /// per-subset statistics are kept, and semi-bandit feedback (one
    /// `update` per played path) keeps the arms honest.
    ///
    /// Selection order is deterministic: each pass prefers the first
    /// still-unplayed arm (UCB1's play-every-arm-once sweep), then the
    /// strict-minimum index with first-wins tie-breaking — so `k = 1`
    /// reproduces `choose()` exactly, and `out[0]` is always what
    /// `choose()` would have returned.
    pub fn choose_set(&self, k: usize, out: &mut Vec<RelayOption>) {
        out.clear();
        let want = k.min(self.arms.len());
        let t = (self.total + 1) as f64;
        let norm = if self.normalize { self.w } else { 1.0 };
        while out.len() < want {
            let mut best: Option<(f64, RelayOption)> = None;
            let mut picked_unplayed = false;
            for arm in &self.arms {
                if out.contains(&arm.option) {
                    continue;
                }
                if arm.n == 0 {
                    out.push(arm.option);
                    picked_unplayed = true;
                    break;
                }
                let mean_cost = arm.cost_sum / (norm * arm.n as f64);
                let bonus = (self.exploration_coef * t.ln() / arm.n as f64).sqrt();
                let index = mean_cost - bonus;
                if best.is_none_or(|(b, _)| index < b) {
                    best = Some((index, arm.option));
                }
            }
            if picked_unplayed {
                continue;
            }
            match best {
                Some((_, o)) => out.push(o),
                None => break,
            }
        }
    }

    /// Records the realized cost of a call assigned to `option`. Costs for
    /// options outside the arm set (e.g. ε general-exploration picks) are
    /// ignored here — they feed the history/predictor instead.
    ///
    /// # Contract
    /// `cost` must be finite and non-negative: every caller feeds a measured
    /// path metric (RTT ms, loss %, jitter ms), all of which are ≥ 0 by
    /// construction. A negative or non-finite cost indicates a bug upstream
    /// (e.g. an uninitialized metric), so debug builds assert instead of
    /// silently clamping it — a clamp would quietly bias the arm's mean
    /// toward optimism. Release builds still clamp as a last-resort
    /// containment so one bad sample cannot poison `choose()` forever.
    pub fn update(&mut self, option: RelayOption, cost: f64) {
        debug_assert!(
            cost.is_finite() && cost >= 0.0,
            "bandit cost must be a finite non-negative metric, got {cost}"
        );
        let option = option.canonical();
        if let Some(arm) = self.arms.iter_mut().find(|a| a.option == option) {
            arm.n += 1;
            arm.cost_sum += cost.max(0.0);
            self.total += 1;
        }
    }

    /// Assignments recorded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Debug-build invariants: per-arm counts sum to the bandit total
    /// (virtual prior observations included), the normalizer is positive,
    /// and no arm has accumulated a negative or non-finite cost sum. Free in
    /// release builds.
    pub fn validate(&self) {
        debug_assert!(
            self.arms.iter().map(|a| a.n).sum::<u64>() == self.total,
            "bandit arm counts {:?} do not sum to total {}",
            self.arms.iter().map(|a| a.n).collect::<Vec<_>>(),
            self.total
        );
        debug_assert!(
            self.w > 0.0,
            "bandit normalizer w = {} must be positive",
            self.w
        );
        debug_assert!(
            self.arms
                .iter()
                .all(|a| a.cost_sum.is_finite() && a.cost_sum >= 0.0),
            "bandit has a negative or non-finite cost sum"
        );
    }

    /// Mean observed cost of one arm, if it was played.
    pub fn arm_mean(&self, option: RelayOption) -> Option<f64> {
        let option = option.canonical();
        self.arms
            .iter()
            .find(|a| a.option == option && a.n > 0)
            .map(|a| a.cost_sum / a.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use via_model::ids::RelayId;

    fn opts(n: u32) -> Vec<RelayOption> {
        (0..n).map(|i| RelayOption::Bounce(RelayId(i))).collect()
    }

    #[test]
    fn empty_bandit_chooses_nothing() {
        let b = UcbBandit::new([], 1.0);
        assert!(b.is_empty());
        assert_eq!(b.choose(), None);
    }

    #[test]
    fn plays_every_arm_once_first() {
        let mut b = UcbBandit::new(opts(3), 100.0);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let o = b.choose().unwrap();
            seen.push(o);
            b.update(o, 50.0);
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 3, "each arm must be tried once");
    }

    #[test]
    fn converges_to_best_arm() {
        // Arm costs: R0 = 100, R1 = 60 (best), R2 = 90, with noise.
        let mut b = UcbBandit::new(opts(3), 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let cost_of = |o: RelayOption, rng: &mut StdRng| {
            let base = match o {
                RelayOption::Bounce(RelayId(0)) => 100.0,
                RelayOption::Bounce(RelayId(1)) => 60.0,
                _ => 90.0,
            };
            base + rng.random_range(-10.0..10.0)
        };
        let mut picks = [0u32; 3];
        for _ in 0..500 {
            let o = b.choose().unwrap();
            if let RelayOption::Bounce(r) = o {
                picks[r.index()] += 1;
            }
            let c = cost_of(o, &mut rng);
            b.update(o, c);
        }
        assert!(
            picks[1] > 350,
            "best arm picked only {}/500 times ({picks:?})",
            picks[1]
        );
        assert!(b.arm_mean(RelayOption::Bounce(RelayId(1))).unwrap() < 70.0);
    }

    #[test]
    fn keeps_exploring_under_ties() {
        let mut b = UcbBandit::new(opts(2), 10.0);
        for _ in 0..200 {
            let o = b.choose().unwrap();
            b.update(o, 10.0); // identical costs
        }
        // Both arms should keep being sampled when indistinguishable.
        let n0 = b.arm_mean(RelayOption::Bounce(RelayId(0)));
        let n1 = b.arm_mean(RelayOption::Bounce(RelayId(1)));
        assert!(n0.is_some() && n1.is_some());
        assert_eq!(b.total(), 200);
    }

    #[test]
    fn updates_for_unknown_options_are_ignored() {
        let mut b = UcbBandit::new(opts(2), 10.0);
        b.update(RelayOption::Bounce(RelayId(99)), 5.0);
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn normalization_makes_choices_scale_invariant() {
        // The point of dividing by w (Algorithm 3 line 3): the exploration
        // bonus is an absolute quantity, so without normalization its weight
        // depends on the metric's unit. With normalization, scaling every
        // cost and w by the same factor must leave the choice sequence
        // byte-identical.
        let run = |scale: f64, normalize: bool| {
            let mut b = UcbBandit::new(opts(2), 1000.0 * scale);
            b.normalize = normalize;
            let mut rng = StdRng::seed_from_u64(7);
            let mut choices = Vec::new();
            for _ in 0..300 {
                let o = b.choose().unwrap();
                choices.push(o);
                let base = if o == RelayOption::Bounce(RelayId(1)) {
                    800.0
                } else {
                    900.0
                };
                b.update(o, (base + rng.random_range(-200.0..200.0)) * scale);
            }
            choices
        };
        // Scales chosen so one side puts raw costs near the bonus's O(1)
        // magnitude (0.001 → costs ≈ 0.8) and the other far above it
        // (1.0 → costs ≈ 800).
        assert_eq!(
            run(0.001, true),
            run(1.0, true),
            "normalized choices must not depend on the metric's scale"
        );
        let diverged = run(0.001, false) != run(1.0, false);
        assert!(
            diverged,
            "without normalization the bonus-to-cost ratio (and hence the \
             choice sequence) should shift with the metric's scale"
        );
    }

    #[test]
    fn normalization_tames_outliers() {
        // Heavy-tailed costs: 2% of calls spike to 5000 against a base of
        // 800/900. Normalizing by w (not the observed range) keeps the
        // 100-unit common-case gap visible, so the bandit still converges to
        // the better arm despite outliers dominating the sample variance.
        const ROUNDS: u32 = 2_000;
        const SEEDS: u64 = 10;
        let run = |seed: u64| {
            let mut b = UcbBandit::new(opts(2), 1000.0);
            let mut rng = StdRng::seed_from_u64(seed);
            // True means: arm0 = 900, arm1 = 800 (better), heavy noise.
            let mut picks1 = 0;
            for _ in 0..ROUNDS {
                let o = b.choose().unwrap();
                let base = if o == RelayOption::Bounce(RelayId(1)) {
                    picks1 += 1;
                    800.0
                } else {
                    900.0
                };
                let spike = if rng.random::<f64>() < 0.02 {
                    5000.0
                } else {
                    0.0
                };
                b.update(o, base + rng.random_range(-200.0..200.0) + spike);
            }
            picks1
        };
        let picks: u32 = (0..SEEDS).map(run).sum();
        let total = SEEDS as u32 * ROUNDS;
        assert!(
            picks > total * 3 / 5,
            "better arm picked only {picks}/{total} times under outliers"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "do not sum to total")]
    fn validate_catches_count_drift() {
        let mut b = UcbBandit::new(opts(2), 10.0);
        b.total = 5; // corrupt the count invariant directly
        b.validate();
    }

    proptest::proptest! {
        /// Under any interleaving of known-arm updates, unknown-option
        /// updates, and prior warm-starts, per-arm counts keep summing to
        /// the bandit total.
        #[test]
        fn counts_and_total_stay_consistent(
            updates in proptest::collection::vec((0u32..5, 0f64..100.0), 0..80),
            virtual_n in 0u64..4,
        ) {
            let priors = opts(3).into_iter().map(|o| (o, 50.0));
            let mut b = UcbBandit::with_priors(priors, 100.0, virtual_n);
            b.validate();
            for (arm, cost) in updates {
                // Arms 0–2 exist; ids 3–4 exercise the ignored-update path.
                b.update(RelayOption::Bounce(RelayId(arm)), cost);
                b.validate();
            }
        }
    }

    #[test]
    fn choose_set_of_one_matches_choose() {
        let mut b = UcbBandit::with_priors(opts(4).into_iter().map(|o| (o, 80.0)), 100.0, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut set = Vec::new();
        for _ in 0..200 {
            b.choose_set(1, &mut set);
            assert_eq!(set.as_slice(), &[b.choose().unwrap()]);
            let o = set[0];
            b.update(o, rng.random_range(40.0..120.0));
        }
    }

    #[test]
    fn choose_set_prefers_unplayed_arms_and_dedups() {
        let mut b = UcbBandit::new(opts(4), 100.0);
        // Play arms 0 and 2; arms 1 and 3 stay unplayed.
        b.update(RelayOption::Bounce(RelayId(0)), 10.0);
        b.update(RelayOption::Bounce(RelayId(2)), 10.0);
        let mut set = Vec::new();
        b.choose_set(3, &mut set);
        assert_eq!(set.len(), 3);
        // Unplayed arms come first, in arm order.
        assert_eq!(set[0], RelayOption::Bounce(RelayId(1)));
        assert_eq!(set[1], RelayOption::Bounce(RelayId(3)));
        let mut dedup = set.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), set.len(), "set members must be distinct");
    }

    #[test]
    fn choose_set_is_capped_by_arm_count_and_deterministic() {
        let mut b = UcbBandit::with_priors(opts(3).into_iter().map(|o| (o, 50.0)), 100.0, 3);
        b.update(RelayOption::Bounce(RelayId(1)), 5.0);
        let mut a = Vec::new();
        let mut c = Vec::new();
        b.choose_set(10, &mut a);
        b.choose_set(10, &mut c);
        assert_eq!(a.len(), 3, "set is capped at the arm count");
        assert_eq!(a, c, "same state must give the same set");
        // Best observed arm leads once every arm has plays.
        assert_eq!(a[0], RelayOption::Bounce(RelayId(1)));
    }

    #[test]
    fn canonicalizes_arm_updates() {
        let t = RelayOption::Transit(RelayId(1), RelayId(0));
        let mut b = UcbBandit::new([t.canonical()], 10.0);
        b.update(t, 5.0);
        assert_eq!(b.total(), 1);
        assert_eq!(b.arm_mean(t), Some(5.0));
    }
}
