//! Call-history storage: the controller's measurement database.
//!
//! §3.1 of the paper: clients push the network metrics of completed calls to
//! the controller, which aggregates them per (source, destination, relaying
//! option) and time window. This store keeps one [`MetricStats`] (a Welford
//! accumulator per metric) per `(pair, option, window)` cell and can iterate
//! a whole window's cells — the training set for the tomography predictor.
//!
//! Pairs are keyed by a *spatial key* rather than raw AS ids so the same
//! machinery supports the granularity sweep of Figure 17a (country-level,
//! AS-level, or finer-than-AS decisions).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use via_model::metrics::{Metric, PathMetrics};
use via_model::options::RelayOption;
use via_model::stats::OnlineStats;
use via_model::time::Window;

/// Canonical (order-independent) pair of spatial keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeyPair {
    /// Smaller key.
    pub lo: u32,
    /// Larger key.
    pub hi: u32,
}

impl KeyPair {
    /// Builds the canonical pair.
    pub fn new(a: u32, b: u32) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }
}

/// Per-metric Welford accumulators for one (pair, option, window) cell.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricStats {
    stats: [OnlineStats; 3],
}

impl MetricStats {
    /// Folds one call's metrics in.
    pub fn push(&mut self, m: &PathMetrics) {
        for (i, &metric) in Metric::ALL.iter().enumerate() {
            self.stats[i].push(m[metric]);
        }
    }

    /// Accumulator for one metric axis.
    pub fn metric(&self, m: Metric) -> &OnlineStats {
        match m {
            Metric::Rtt => &self.stats[0],
            Metric::Loss => &self.stats[1],
            Metric::Jitter => &self.stats[2],
        }
    }

    /// Number of calls aggregated (same for every axis).
    pub fn count(&self) -> u64 {
        self.stats[0].count()
    }

    /// Merges another cell's accumulators into this one (per-axis Welford
    /// merge); used when combining histories from independent collectors.
    pub fn merge(&mut self, other: &MetricStats) {
        for (dst, src) in self.stats.iter_mut().zip(&other.stats) {
            dst.merge(src);
        }
    }
}

/// One time window's worth of measurements.
///
/// The call total is kept as a running counter instead of being recomputed
/// by folding over the cell map: the fold's result was order-independent
/// (u64 sum), but iterating a hash map into *any* reduction is the exact
/// shape the `map-iteration-order` lint denies, and a stored counter is
/// O(1) where the fold was O(cells).
#[derive(Debug, Default)]
struct WindowSlot {
    /// (pair, option) → stats.
    cells: HashMap<(KeyPair, RelayOption), MetricStats>,
    /// Total calls recorded into this window, maintained on every record
    /// and merge.
    calls: u64,
}

/// The controller's measurement store.
#[derive(Debug, Default)]
pub struct CallHistory {
    /// window index → that window's cells and call total.
    windows: HashMap<u64, WindowSlot>,
}

impl CallHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed call's measurements.
    pub fn record(&mut self, window: Window, pair: KeyPair, option: RelayOption, m: &PathMetrics) {
        let slot = self.windows.entry(window.index).or_default();
        slot.calls += 1;
        slot.cells
            .entry((pair, option.canonical()))
            .or_default()
            .push(m);
    }

    /// Installs a whole cell's accumulated statistics (snapshot restore).
    ///
    /// The window's call counter absorbs the cell's sample count; a cell
    /// that already exists is combined with the Chan et al. merge, exactly
    /// like [`Self::merge`].
    pub fn insert_cell(
        &mut self,
        window: Window,
        pair: KeyPair,
        option: RelayOption,
        stats: MetricStats,
    ) {
        let slot = self.windows.entry(window.index).or_default();
        slot.calls += stats.count();
        match slot.cells.entry((pair, option.canonical())) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(stats);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().merge(&stats);
            }
        }
    }

    /// Stats of one cell, if any calls were observed.
    pub fn cell(&self, window: Window, pair: KeyPair, option: RelayOption) -> Option<&MetricStats> {
        self.windows
            .get(&window.index)?
            .cells
            .get(&(pair, option.canonical()))
    }

    /// Iterates all cells of a window.
    pub fn window_cells(
        &self,
        window: Window,
    ) -> impl Iterator<Item = (&(KeyPair, RelayOption), &MetricStats)> {
        self.windows
            .get(&window.index)
            .into_iter()
            .flat_map(|slot| slot.cells.iter())
    }

    /// Number of distinct cells in a window.
    pub fn window_len(&self, window: Window) -> usize {
        self.windows.get(&window.index).map_or(0, |s| s.cells.len())
    }

    /// Total calls recorded in a window. O(1): the slot maintains the
    /// counter, so no iteration over the cell map is needed.
    pub fn window_calls(&self, window: Window) -> u64 {
        self.windows.get(&window.index).map_or(0, |s| s.calls)
    }

    /// Discards windows older than `keep_from` (controller memory bound; the
    /// predictor only ever trains on the previous window).
    pub fn prune_before(&mut self, keep_from: u64) {
        self.windows.retain(|&w, _| w >= keep_from);
    }

    /// Folds another history into this one, merging per-cell Welford
    /// accumulators where both sides observed the same cell.
    ///
    /// The window-parallel replay engine shards calls by [`KeyPair`], so each
    /// (pair, option, window) cell is written by exactly one shard and the
    /// merge is a disjoint insert — the per-cell push sequences (and hence
    /// the floating-point results) are bit-identical to a sequential run.
    /// Overlapping cells are still handled correctly (Chan et al. merge) for
    /// callers that combine histories from genuinely concurrent collectors.
    pub fn merge(&mut self, other: CallHistory) {
        // Iteration order cannot leak into results here: inserting the same
        // set of cells in any order yields the same map content, per-cell
        // merges are independent, and the call counter is a u64 sum
        // (commutative, no rounding). via-audit: allow(map-iteration-order)
        for (w, slot) in other.windows {
            let dst = self.windows.entry(w).or_default();
            dst.calls += slot.calls;
            for (key, stats) in slot.cells {
                match dst.cells.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(stats);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().merge(&stats);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_model::ids::RelayId;
    use via_model::time::{SimTime, WindowLen};

    fn w(i: u64) -> Window {
        WindowLen::DAY.window_of(SimTime::from_days(i))
    }

    #[test]
    fn key_pair_is_canonical() {
        assert_eq!(KeyPair::new(5, 2), KeyPair::new(2, 5));
        assert_eq!(KeyPair::new(2, 5).lo, 2);
    }

    #[test]
    fn record_and_read_back() {
        let mut h = CallHistory::new();
        let pair = KeyPair::new(1, 2);
        let opt = RelayOption::Bounce(RelayId(3));
        h.record(w(0), pair, opt, &PathMetrics::new(100.0, 1.0, 5.0));
        h.record(w(0), pair, opt, &PathMetrics::new(200.0, 2.0, 7.0));
        let cell = h.cell(w(0), pair, opt).unwrap();
        assert_eq!(cell.count(), 2);
        assert_eq!(cell.metric(Metric::Rtt).mean(), Some(150.0));
        assert_eq!(cell.metric(Metric::Loss).mean(), Some(1.5));
        assert!(h.cell(w(1), pair, opt).is_none());
    }

    #[test]
    fn options_are_canonicalized_on_both_paths() {
        let mut h = CallHistory::new();
        let pair = KeyPair::new(0, 1);
        h.record(
            w(0),
            pair,
            RelayOption::Transit(RelayId(9), RelayId(4)),
            &PathMetrics::new(80.0, 0.5, 3.0),
        );
        let cell = h
            .cell(w(0), pair, RelayOption::Transit(RelayId(4), RelayId(9)))
            .unwrap();
        assert_eq!(cell.count(), 1);
    }

    #[test]
    fn window_iteration_and_counts() {
        let mut h = CallHistory::new();
        for i in 0..5 {
            h.record(
                w(1),
                KeyPair::new(i, i + 1),
                RelayOption::Direct,
                &PathMetrics::new(50.0, 0.1, 1.0),
            );
        }
        assert_eq!(h.window_len(w(1)), 5);
        assert_eq!(h.window_calls(w(1)), 5);
        assert_eq!(h.window_cells(w(1)).count(), 5);
        assert_eq!(h.window_len(w(0)), 0);
    }

    #[test]
    fn merge_combines_disjoint_and_overlapping_cells() {
        let mut a = CallHistory::new();
        let mut b = CallHistory::new();
        let p1 = KeyPair::new(1, 2);
        let p2 = KeyPair::new(3, 4);
        a.record(
            w(0),
            p1,
            RelayOption::Direct,
            &PathMetrics::new(100.0, 1.0, 5.0),
        );
        b.record(
            w(0),
            p2,
            RelayOption::Direct,
            &PathMetrics::new(50.0, 0.5, 2.0),
        );
        // Overlapping cell: both sides observed (p1, Direct, w0).
        b.record(
            w(0),
            p1,
            RelayOption::Direct,
            &PathMetrics::new(200.0, 3.0, 7.0),
        );
        a.merge(b);
        assert_eq!(a.window_len(w(0)), 2);
        let c1 = a.cell(w(0), p1, RelayOption::Direct).unwrap();
        assert_eq!(c1.count(), 2);
        assert_eq!(c1.metric(Metric::Rtt).mean(), Some(150.0));
        assert_eq!(a.cell(w(0), p2, RelayOption::Direct).unwrap().count(), 1);
    }

    #[test]
    fn sharded_merge_is_bit_identical_for_disjoint_pairs() {
        // The engine's invariant: when pairs are disjoint across shards, each
        // cell's push sequence is identical to the sequential run, so stats
        // must be bit-for-bit equal (not just approximately).
        let calls: Vec<(KeyPair, f64)> = (0..50)
            .map(|i| (KeyPair::new(i % 5, 100), 10.0 + f64::from(i) * 1.7))
            .collect();
        let mut seq = CallHistory::new();
        for (p, v) in &calls {
            seq.record(
                w(0),
                *p,
                RelayOption::Direct,
                &PathMetrics::new(*v, 0.0, 0.0),
            );
        }
        let mut merged = CallHistory::new();
        for shard in 0..5u32 {
            let mut local = CallHistory::new();
            for (p, v) in calls.iter().filter(|(p, _)| p.lo % 5 == shard) {
                local.record(
                    w(0),
                    *p,
                    RelayOption::Direct,
                    &PathMetrics::new(*v, 0.0, 0.0),
                );
            }
            merged.merge(local);
        }
        for i in 0..5 {
            let p = KeyPair::new(i, 100);
            let (a, b) = (
                seq.cell(w(0), p, RelayOption::Direct).unwrap(),
                merged.cell(w(0), p, RelayOption::Direct).unwrap(),
            );
            assert_eq!(a.metric(Metric::Rtt).mean(), b.metric(Metric::Rtt).mean());
            assert_eq!(a.metric(Metric::Rtt).sem(), b.metric(Metric::Rtt).sem());
        }
    }

    #[test]
    fn window_calls_is_order_invariant_and_pinned() {
        // Regression for the audit's map-iteration-order finding: the call
        // total used to be recomputed by folding `.values().map(count).sum()`
        // over the cell map — structurally order-sensitive even though a u64
        // sum happens to commute. The stored counter must agree with the old
        // fold's value and be identical for any insertion or merge order.
        let calls: Vec<(KeyPair, RelayOption)> = (0..40)
            .map(|i| {
                (
                    KeyPair::new(i % 7, 100 + i % 3),
                    if i % 2 == 0 {
                        RelayOption::Direct
                    } else {
                        RelayOption::Bounce(RelayId(i))
                    },
                )
            })
            .collect();

        let mut forward = CallHistory::new();
        for (p, o) in &calls {
            forward.record(w(2), *p, *o, &PathMetrics::new(10.0, 0.1, 1.0));
        }
        let mut reverse = CallHistory::new();
        for (p, o) in calls.iter().rev() {
            reverse.record(w(2), *p, *o, &PathMetrics::new(10.0, 0.1, 1.0));
        }
        assert_eq!(forward.window_calls(w(2)), 40);
        assert_eq!(reverse.window_calls(w(2)), 40);

        // Merge order must not matter either, and the counter must equal the
        // old fold recomputed from the cells.
        for shard_order in [[0u32, 1, 2], [2, 0, 1]] {
            let mut merged = CallHistory::new();
            for shard in shard_order {
                let mut local = CallHistory::new();
                for (p, o) in calls.iter().filter(|(p, _)| p.lo % 3 == shard) {
                    local.record(w(2), *p, *o, &PathMetrics::new(10.0, 0.1, 1.0));
                }
                merged.merge(local);
            }
            assert_eq!(merged.window_calls(w(2)), 40);
            let refold: u64 = {
                let mut counts: Vec<u64> =
                    merged.window_cells(w(2)).map(|(_, s)| s.count()).collect();
                counts.sort_unstable();
                counts.iter().sum()
            };
            assert_eq!(merged.window_calls(w(2)), refold);
        }
    }

    #[test]
    fn prune_drops_old_windows() {
        let mut h = CallHistory::new();
        let pair = KeyPair::new(1, 2);
        h.record(w(0), pair, RelayOption::Direct, &PathMetrics::ZERO);
        h.record(w(5), pair, RelayOption::Direct, &PathMetrics::ZERO);
        h.prune_before(3);
        assert!(h.cell(w(0), pair, RelayOption::Direct).is_none());
        assert!(h.cell(w(5), pair, RelayOption::Direct).is_some());
    }
}
