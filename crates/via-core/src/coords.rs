//! Vivaldi network coordinates (Dabek et al., SIGCOMM 2004) — the classic
//! alternative to tomography for latency prediction, cited by the paper's
//! related work (§6, "Internet performance prediction", reference 18).
//!
//! Each node (spatial key or relay) carries a Euclidean coordinate plus a
//! non-negative *height* modeling its access link. The predicted RTT between
//! nodes is `‖x_i − x_j‖ + h_i + h_j`. Observations adjust coordinates by a
//! spring-relaxation step weighted by relative confidence, per the original
//! algorithm.
//!
//! VIA chose tomography over coordinates because passive measurements cover
//! path *segments* with known structure; the `ext_vivaldi` experiment
//! quantifies that choice by comparing the two predictors' accuracy on the
//! same training data.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Dimensionality of the coordinate space (2-D + height is the standard
/// effective configuration).
pub const VIVALDI_DIM: usize = 2;

/// One node's coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    /// Euclidean components.
    pub x: [f64; VIVALDI_DIM],
    /// Height (access-link latency), always ≥ 0.
    pub height: f64,
    /// Relative error estimate in [0, 1]; 1 = no confidence.
    pub error: f64,
}

impl Coord {
    /// A fresh node at the origin with no confidence.
    pub fn origin() -> Coord {
        Coord {
            x: [0.0; VIVALDI_DIM],
            height: 1.0,
            error: 1.0,
        }
    }

    /// Predicted RTT to another coordinate, ms.
    pub fn distance(&self, other: &Coord) -> f64 {
        let mut sq = 0.0;
        for d in 0..VIVALDI_DIM {
            let diff = self.x[d] - other.x[d];
            sq += diff * diff;
        }
        sq.sqrt() + self.height + other.height
    }
}

/// Tuning constants of the update rule.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VivaldiConfig {
    /// Error-averaging constant `c_e` (paper value 0.25).
    pub ce: f64,
    /// Coordinate step constant `c_c` (paper value 0.25).
    pub cc: f64,
    /// Minimum height, ms (keeps heights physical).
    pub min_height: f64,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        Self {
            ce: 0.25,
            cc: 0.25,
            min_height: 0.1,
        }
    }
}

/// A Vivaldi coordinate system over a fixed set of nodes.
#[derive(Debug)]
pub struct Vivaldi {
    cfg: VivaldiConfig,
    nodes: Vec<Coord>,
    rng: StdRng,
    samples: u64,
}

impl Vivaldi {
    /// Creates a system with `n` nodes at the origin. `seed` drives the
    /// random initial kick that breaks symmetry.
    pub fn new(n: usize, cfg: VivaldiConfig, seed: u64) -> Vivaldi {
        Vivaldi {
            cfg,
            nodes: vec![Coord::origin(); n],
            rng: StdRng::seed_from_u64(seed),
            samples: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Observations folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current coordinate of a node.
    pub fn coord(&self, i: usize) -> &Coord {
        &self.nodes[i]
    }

    /// Predicted RTT between two nodes, ms.
    pub fn predict(&self, i: usize, j: usize) -> f64 {
        self.nodes[i].distance(&self.nodes[j])
    }

    /// Mean relative error estimate across nodes (diagnostic).
    pub fn mean_error(&self) -> f64 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        self.nodes.iter().map(|n| n.error).sum::<f64>() / self.nodes.len() as f64
    }

    /// Folds in one measured RTT between nodes `i` and `j`, updating *both*
    /// endpoints (centralized variant: the controller holds all
    /// measurements, so both ends of an observation can move).
    pub fn observe(&mut self, i: usize, j: usize, rtt_ms: f64) {
        if i == j || !rtt_ms.is_finite() || rtt_ms <= 0.0 {
            return;
        }
        self.samples += 1;
        self.update_one(i, j, rtt_ms);
        self.update_one(j, i, rtt_ms);
    }

    fn update_one(&mut self, i: usize, j: usize, rtt: f64) {
        let (xi, xj) = (self.nodes[i], self.nodes[j]);
        let dist = xi.distance(&xj);

        // Confidence weighting.
        let w = if xi.error + xj.error > 0.0 {
            xi.error / (xi.error + xj.error)
        } else {
            0.5
        };
        let es = (dist - rtt).abs() / rtt;
        let node = &mut self.nodes[i];
        node.error = (es * self.cfg.ce * w + node.error * (1.0 - self.cfg.ce * w)).clamp(0.0, 1.0);

        // Unit vector from j toward i; random direction if coincident.
        let mut u = [0.0; VIVALDI_DIM];
        let mut norm = 0.0;
        for (d, item) in u.iter_mut().enumerate() {
            *item = xi.x[d] - xj.x[d];
            norm += *item * *item;
        }
        norm = norm.sqrt();
        if norm < 1e-9 {
            for item in u.iter_mut() {
                *item = self.rng.random_range(-1.0..1.0);
            }
            norm = u.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-9);
        }
        for item in u.iter_mut() {
            *item /= norm;
        }

        // Spring force: positive when the measured RTT exceeds the estimate
        // (nodes should move apart).
        let delta = self.cfg.cc * w;
        let force = delta * (rtt - dist);
        let node = &mut self.nodes[i];
        for (x, &dir) in node.x.iter_mut().zip(&u) {
            *x += force * dir;
        }
        // Height absorbs a share of the residual, never going below min.
        node.height = (node.height + force * 0.1).max(self.cfg.min_height);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic ground truth: nodes on a line, RTT = |i − j| × 20 ms + 4 ms
    /// of per-node height.
    fn truth(i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs() * 20.0 + 8.0
    }

    fn train(n: usize, rounds: usize, seed: u64) -> Vivaldi {
        let mut v = Vivaldi::new(n, VivaldiConfig::default(), seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
        for _ in 0..rounds {
            let i = rng.random_range(0..n);
            let j = rng.random_range(0..n);
            if i != j {
                v.observe(i, j, truth(i, j));
            }
        }
        v
    }

    #[test]
    fn converges_on_line_topology() {
        let n = 8;
        let v = train(n, 20_000, 3);
        let mut rel_err = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let pred = v.predict(i, j);
                rel_err.push((pred - truth(i, j)).abs() / truth(i, j));
            }
        }
        let mean: f64 = rel_err.iter().sum::<f64>() / rel_err.len() as f64;
        assert!(mean < 0.15, "mean relative error {mean}");
        assert!(v.mean_error() < 0.3, "confidence did not improve");
    }

    #[test]
    fn prediction_is_symmetric() {
        let v = train(6, 5_000, 9);
        for i in 0..6 {
            for j in 0..6 {
                assert!((v.predict(i, j) - v.predict(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_in_coordinate_space() {
        // Euclidean + heights ⇒ predicted distances satisfy a relaxed
        // triangle inequality (heights add, so the bound includes them).
        let v = train(6, 5_000, 4);
        for a in 0..6 {
            for b in 0..6 {
                for c in 0..6 {
                    let direct = v.predict(a, c);
                    let detour = v.predict(a, b) + v.predict(b, c);
                    assert!(direct <= detour + 1e-6, "{a}->{c} {direct} vs {detour}");
                }
            }
        }
    }

    #[test]
    fn ignores_degenerate_observations() {
        let mut v = Vivaldi::new(3, VivaldiConfig::default(), 1);
        v.observe(0, 0, 50.0);
        v.observe(0, 1, f64::NAN);
        v.observe(0, 1, -5.0);
        assert_eq!(v.samples(), 0);
    }

    #[test]
    fn heights_stay_positive() {
        let v = train(5, 10_000, 6);
        for i in 0..5 {
            assert!(v.coord(i).height >= VivaldiConfig::default().min_height);
        }
    }

    #[test]
    fn error_estimates_shrink_with_data() {
        let fresh = Vivaldi::new(6, VivaldiConfig::default(), 2);
        let trained = train(6, 10_000, 2);
        assert!(trained.mean_error() < fresh.mean_error() * 0.6);
    }
}
