//! Budget-aware relaying (§4.6 of the paper).
//!
//! Operators cap the fraction of calls the managed network carries. With a
//! budget `B`, a call should be relayed only when its *predicted benefit*
//! (predicted cost of the direct path minus predicted cost of the best relay
//! option) lies in the top `B` percentile of benefits seen recently. VIA
//! tracks that percentile with a streaming P² estimator — O(1) state, no
//! benefit history retained — plus a hard running-fraction guard so the cap
//! holds even while the estimator warms up or the benefit distribution
//! drifts.

use serde::{Deserialize, Serialize};
use via_model::stats::P2Quantile;

/// Streaming budget gate. Serializable so a live controller can carry the
/// gate's estimator and counters across a graceful restart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetGate {
    /// Budget: maximum fraction of calls relayed, in (0, 1].
    budget: f64,
    /// Tracks the (1−B) quantile of predicted benefits.
    quantile: Option<P2Quantile>,
    relayed: u64,
    total: u64,
}

impl BudgetGate {
    /// Creates a gate with the given budget fraction. Panics unless
    /// `0 < budget ≤ 1`. A budget of 1.0 disables gating (always allows).
    pub fn new(budget: f64) -> BudgetGate {
        assert!(
            budget > 0.0 && budget <= 1.0,
            "budget must be a fraction in (0, 1]"
        );
        let quantile = (budget < 1.0).then(|| P2Quantile::new(1.0 - budget));
        BudgetGate {
            budget,
            quantile,
            relayed: 0,
            total: 0,
        }
    }

    /// The configured budget fraction.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Decides whether a call with the given predicted benefit may be
    /// relayed, and records the decision. `benefit` is in objective-metric
    /// units (e.g. predicted RTT saved); non-positive benefits never relay.
    pub fn admit(&mut self, benefit: f64) -> bool {
        self.admit_cost(benefit, 1)
    }

    /// Weighted-cost form of [`BudgetGate::admit`]: an admitted call charges
    /// `cost` traffic units against the budget instead of one. Multipath
    /// duplication uses `cost = k` (every packet rides `k` relay paths), so
    /// the relayed-traffic fraction — not merely the relayed-*call*
    /// fraction — stays within the cap at every prefix of the stream.
    /// `admit(b)` is exactly `admit_cost(b, 1)`.
    pub fn admit_cost(&mut self, benefit: f64, cost: u64) -> bool {
        debug_assert!(cost >= 1, "an admitted call costs at least one unit");
        self.total += 1;
        let decision = self.decide(benefit, cost.max(1));
        if let Some(q) = &mut self.quantile {
            // Only positive benefits inform the (1−B)-quantile. Non-positive
            // benefits never relay regardless of the threshold, so folding
            // them in (even clamped to 0) would drag the estimated quantile
            // toward 0 and admit relays that are *not* in the top B fraction
            // of genuinely beneficial calls.
            if benefit > 0.0 {
                q.push(benefit);
            }
        }
        if decision {
            self.relayed += cost.max(1);
        }
        decision
    }

    fn decide(&self, benefit: f64, cost: u64) -> bool {
        if benefit <= 0.0 {
            return false;
        }
        // Hard guard, engaged from the very first call: admitting must keep
        // the running relayed-traffic fraction within the cap at every
        // prefix of the stream. (`total` already counts the current call.)
        // Without this, a stream's opening burst of positive benefits would
        // all be admitted during estimator warm-up and blow past the budget.
        // At budget = 1.0 with unit costs the guard is vacuous (relayed ≤
        // total − 1 before every call), so the historical "budget 1.0 admits
        // any positive benefit" behavior is unchanged; a k× duplicate charge
        // is still denied when it would push traffic past the cap.
        let projected = (self.relayed + cost) as f64 / (self.total.max(1)) as f64;
        if projected > self.budget {
            return false;
        }
        let Some(q) = &self.quantile else {
            return true; // budget = 1.0
        };
        match q.estimate() {
            // Warm-up: admit while under the cap.
            None => true,
            Some(threshold) => benefit >= threshold,
        }
    }

    /// Fraction of traffic relayed so far: relayed cost units over calls
    /// seen. With unit costs this is the relayed-call fraction.
    pub fn relayed_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.relayed as f64 / self.total as f64
        }
    }

    /// Calls seen so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Debug-build invariants: the relayed cost never exceeds the calls
    /// seen (so `relayed_fraction` stays in `[0, 1]` — the always-on
    /// projected-cost guard enforces `relayed ≤ budget·total ≤ total` even
    /// under weighted costs) and the budget is a valid fraction. Free in
    /// release builds.
    pub fn validate(&self) {
        debug_assert!(
            self.relayed <= self.total,
            "budget gate relayed {} exceeds total {}",
            self.relayed,
            self.total
        );
        let f = self.relayed_fraction();
        debug_assert!(
            (0.0..=1.0).contains(&f),
            "relayed fraction {f} outside [0, 1]"
        );
        debug_assert!(
            self.budget > 0.0 && self.budget <= 1.0,
            "budget {} outside (0, 1]",
            self.budget
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    #[should_panic(expected = "budget must be a fraction")]
    fn rejects_zero_budget() {
        BudgetGate::new(0.0);
    }

    #[test]
    fn full_budget_admits_any_positive_benefit() {
        let mut g = BudgetGate::new(1.0);
        assert!(g.admit(0.001));
        assert!(!g.admit(0.0));
        assert!(!g.admit(-5.0));
    }

    #[test]
    fn negative_benefit_never_relays() {
        let mut g = BudgetGate::new(0.5);
        for _ in 0..100 {
            assert!(!g.admit(-1.0));
        }
        assert_eq!(g.relayed_fraction(), 0.0);
    }

    #[test]
    fn respects_budget_fraction_on_uniform_benefits() {
        let mut g = BudgetGate::new(0.3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20_000 {
            g.admit(rng.random::<f64>() * 100.0);
        }
        let f = g.relayed_fraction();
        assert!(
            f <= 0.32 && f > 0.15,
            "relayed fraction {f} should track the 0.3 budget"
        );
    }

    #[test]
    fn admits_the_largest_benefits() {
        let mut g = BudgetGate::new(0.2);
        let mut rng = StdRng::seed_from_u64(9);
        // Warm the estimator.
        for _ in 0..5_000 {
            g.admit(rng.random::<f64>() * 10.0);
        }
        // Now huge benefits must be admitted, tiny ones rejected.
        assert!(g.admit(1_000.0));
        assert!(!g.admit(0.01));
    }

    #[test]
    fn hard_guard_caps_fraction_under_drift() {
        // Adversarial: benefits grow over time, so the quantile estimator
        // lags and would over-admit without the hard guard.
        let mut g = BudgetGate::new(0.25);
        for i in 0..10_000u64 {
            g.admit(i as f64);
        }
        assert!(
            g.relayed_fraction() <= 0.27,
            "fraction {} exceeded cap under drift",
            g.relayed_fraction()
        );
    }

    #[test]
    fn counts_are_tracked() {
        let mut g = BudgetGate::new(0.5);
        g.admit(1.0);
        g.admit(-1.0);
        assert_eq!(g.total(), 2);
        assert_eq!(g.budget(), 0.5);
    }

    #[test]
    fn opening_burst_cannot_exceed_cap() {
        // Regression: warm-up used to admit every positive benefit until the
        // fraction guard engaged at total > 20, so a stream opening with 20
        // strong benefits relayed 100% of its prefix under a 10% budget.
        let mut g = BudgetGate::new(0.1);
        for i in 0..20u64 {
            g.admit(100.0 + i as f64);
            let f = g.relayed_fraction();
            assert!(
                f <= 0.1 + 1.0 / g.total() as f64,
                "prefix fraction {f} exceeds cap at call {}",
                g.total()
            );
        }
    }

    #[test]
    fn non_positive_benefits_do_not_lower_the_threshold() {
        // Feed a stream that is 80% useless (benefit ≤ 0) and 20% strongly
        // beneficial under a 50% budget. The quantile must be estimated over
        // the *positive* benefits only, so roughly the top half of positive
        // benefits — ~10% of all calls — relay, not every positive call.
        let mut g = BudgetGate::new(0.5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut positives = 0u64;
        for _ in 0..20_000 {
            let benefit = if rng.random::<f64>() < 0.8 {
                -1.0
            } else {
                positives += 1;
                10.0 + rng.random::<f64>() * 10.0
            };
            g.admit(benefit);
        }
        let relayed = g.relayed_fraction() * g.total() as f64;
        let of_positive = relayed / positives as f64;
        assert!(
            of_positive < 0.75,
            "relayed {of_positive:.2} of positive-benefit calls; the \
             threshold collapsed as if zeros were in the distribution"
        );
        assert!(of_positive > 0.3, "threshold overshot: {of_positive:.2}");
    }

    #[test]
    fn warm_up_none_arm_respects_the_cap() {
        // Too few positive samples for the P² estimator to produce an
        // estimate, so every decision goes through the warm-up `None` arm.
        // The hard guard alone must keep the fraction at or under budget.
        let mut g = BudgetGate::new(0.3);
        for b in [5.0, 7.0, 9.0, 11.0] {
            g.admit(b);
            assert!(
                g.relayed_fraction() <= g.budget() + 1e-12,
                "warm-up fraction {} above budget at call {}",
                g.relayed_fraction(),
                g.total()
            );
        }
    }

    #[test]
    fn admit_is_unit_cost_admit_cost() {
        let mut a = BudgetGate::new(0.3);
        let mut b = BudgetGate::new(0.3);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..2_000 {
            let benefit = rng.random::<f64>() * 120.0 - 20.0;
            assert_eq!(a.admit(benefit), b.admit_cost(benefit, 1));
        }
        assert_eq!(a.relayed_fraction(), b.relayed_fraction());
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn duplicate_cost_charges_k_times() {
        // A 2× duplicate call counts double against the cap, so under a 0.5
        // budget at most every fourth call can be a 2-path relay.
        let mut g = BudgetGate::new(0.5);
        for _ in 0..1_000u64 {
            g.admit_cost(100.0, 2);
            assert!(
                g.relayed_fraction() <= 0.5 + 1e-12,
                "k× charge blew the cap: {}",
                g.relayed_fraction()
            );
        }
    }

    proptest::proptest! {
        /// The budget is a *strict* prefix invariant, not asymptotic: after
        /// every single `admit` — warm-up `None` arm included — the running
        /// relayed fraction is at or under the budget. This holds by
        /// construction (the guard projects `(relayed + 1) / total` before
        /// admitting); the test pins it against regressions that weaken the
        /// guard, e.g. re-engaging it only after N calls.
        #[test]
        fn relayed_fraction_never_exceeds_budget_at_any_prefix(
            benefits in proptest::collection::vec(-50f64..150.0, 1..400),
            budget_pct in 1u32..=100,
        ) {
            let budget = f64::from(budget_pct) / 100.0;
            let mut g = BudgetGate::new(budget);
            for b in benefits {
                g.admit(b);
                g.validate();
                proptest::prop_assert!(
                    g.relayed_fraction() <= budget + 1e-12,
                    "fraction {} of {} calls exceeds budget {budget}",
                    g.relayed_fraction(),
                    g.total()
                );
            }
        }

        /// Weighted-cost prefix invariant: even when every admitted call
        /// charges an arbitrary k ∈ [1, 4] (multipath duplication), the
        /// relayed-traffic fraction is at or under the budget after every
        /// single `admit_cost` — the k× charge can never exceed the gate's
        /// budget fraction at any prefix.
        #[test]
        fn weighted_cost_fraction_never_exceeds_budget_at_any_prefix(
            calls in proptest::collection::vec((-50f64..150.0, 1u64..=4), 1..400),
            budget_pct in 1u32..=100,
        ) {
            let budget = f64::from(budget_pct) / 100.0;
            let mut g = BudgetGate::new(budget);
            for (benefit, cost) in calls {
                g.admit_cost(benefit, cost);
                g.validate();
                proptest::prop_assert!(
                    g.relayed_fraction() <= budget + 1e-12,
                    "traffic fraction {} of {} calls exceeds budget {budget} \
                     under weighted costs",
                    g.relayed_fraction(),
                    g.total()
                );
            }
        }
    }
}
