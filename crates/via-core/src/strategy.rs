//! Relay-selection strategies: VIA, its ablations, the oracle, and the
//! strawman baselines of §4.2 / §5.2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which selection policy a replay run uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Always take the BGP-derived direct path (the paper's "default
    /// strategy" baseline).
    Default,
    /// §3.2's oracle: per (AS pair, window) pick the option with the best
    /// ground-truth mean — foresight no real system has.
    Oracle,
    /// Strawman I: pure prediction. Pick the single option with the best
    /// predicted mean (k = 1), never explore.
    PredictionOnly,
    /// Strawman II: pure exploration. ε-greedy over *all* candidate options
    /// with no prediction-based pruning and no reward normalization.
    ExplorationOnly,
    /// Full VIA: prediction-guided exploration (Algorithm 1) — dynamic top-k
    /// pruning + modified UCB1 + ε general exploration.
    Via,
    /// VIA under a relaying budget (§4.6): relay only calls whose predicted
    /// benefit is in the top `budget` percentile, with a hard cap.
    ViaBudgeted {
        /// Maximum fraction of calls relayed.
        budget: f64,
    },
    /// Budget-*unaware* VIA under a hard cap: relays any call with positive
    /// predicted benefit until the cap is hit (first-come-first-served) —
    /// the strawman of Figure 16.
    ViaBudgetUnaware {
        /// Maximum fraction of calls relayed.
        budget: f64,
    },
    /// Ablation (Figure 15): fixed top-k instead of the confidence-interval
    /// closure.
    ViaFixedTopK {
        /// Number of candidates kept.
        k: usize,
    },
    /// Ablation (Figure 15): original UCB1 normalization (raw rewards)
    /// instead of dividing by the mean top-k upper bound.
    ViaRawReward,
    /// §7 "cost of centralized control": clients cache the controller's
    /// decision per pair and reuse it for `ttl_hours` before asking again.
    /// Cuts controller load at the cost of staleness.
    ViaCached {
        /// How long a cached decision stays valid, hours.
        ttl_hours: u64,
    },
    /// §7 "hybrid reactive decentralized approaches": at call setup the
    /// client races the top-`k` pruned options in parallel and keeps the
    /// best — prediction-guided pruning makes the race affordable.
    HybridRacing {
        /// Options raced per call.
        k: usize,
    },
    /// Multipath VIA: per call the combinatorial bandit commits to a *set*
    /// of up to `k` paths (shared per-path confidence intervals, top-k
    /// lower-bound subset). The receiver-side merge model in `via-media`
    /// turns the per-path draws into one played-out stream.
    Multipath {
        /// Maximum paths per call (k = 1 degenerates to `Via` exactly).
        k: usize,
        /// How the media stream uses the set.
        mode: MultipathMode,
        /// Maximum fraction of traffic relayed (1.0 = unbudgeted). Under
        /// `Duplicate` a relayed call charges `k×` against this budget.
        budget: f64,
    },
}

/// How a multipath call spreads its media over the selected path set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MultipathMode {
    /// Every packet is sent on every path; the receiver dedups. Loss
    /// requires *all* copies lost, at `k×` traffic cost.
    Duplicate,
    /// Packets round-robin across the set; per-packet cost stays 1× but a
    /// single dead path loses its share of the stream until failover.
    Stripe,
}

impl StrategyKind {
    /// Stable display name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            StrategyKind::Default => "default".into(),
            StrategyKind::Oracle => "oracle".into(),
            StrategyKind::PredictionOnly => "strawman-prediction".into(),
            StrategyKind::ExplorationOnly => "strawman-exploration".into(),
            StrategyKind::Via => "via".into(),
            StrategyKind::ViaBudgeted { budget } => format!("via-budget-{budget:.2}"),
            StrategyKind::ViaBudgetUnaware { budget } => {
                format!("via-budget-unaware-{budget:.2}")
            }
            StrategyKind::ViaFixedTopK { k } => format!("via-top{k}"),
            StrategyKind::ViaRawReward => "via-raw-reward".into(),
            StrategyKind::ViaCached { ttl_hours } => format!("via-cached-{ttl_hours}h"),
            StrategyKind::HybridRacing { k } => format!("hybrid-race-{k}"),
            StrategyKind::Multipath { k, mode, budget } => {
                let mode = match mode {
                    MultipathMode::Duplicate => "dup",
                    MultipathMode::Stripe => "stripe",
                };
                if *budget < 1.0 {
                    format!("multipath-{mode}-{k}-budget-{budget:.2}")
                } else {
                    format!("multipath-{mode}-{k}")
                }
            }
        }
    }

    /// True for the strategies that learn from observed calls (and therefore
    /// feed the history store).
    pub fn uses_history(&self) -> bool {
        !matches!(self, StrategyKind::Default | StrategyKind::Oracle)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let kinds = [
            StrategyKind::Default,
            StrategyKind::Oracle,
            StrategyKind::PredictionOnly,
            StrategyKind::ExplorationOnly,
            StrategyKind::Via,
            StrategyKind::ViaBudgeted { budget: 0.3 },
            StrategyKind::ViaBudgetUnaware { budget: 0.3 },
            StrategyKind::ViaFixedTopK { k: 2 },
            StrategyKind::ViaRawReward,
            StrategyKind::ViaCached { ttl_hours: 6 },
            StrategyKind::HybridRacing { k: 3 },
            StrategyKind::Multipath {
                k: 2,
                mode: MultipathMode::Duplicate,
                budget: 1.0,
            },
            StrategyKind::Multipath {
                k: 2,
                mode: MultipathMode::Stripe,
                budget: 1.0,
            },
            StrategyKind::Multipath {
                k: 2,
                mode: MultipathMode::Duplicate,
                budget: 0.3,
            },
        ];
        let mut names: Vec<String> = kinds.iter().map(StrategyKind::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn history_usage_classification() {
        assert!(!StrategyKind::Default.uses_history());
        assert!(!StrategyKind::Oracle.uses_history());
        assert!(StrategyKind::Via.uses_history());
        assert!(StrategyKind::ExplorationOnly.uses_history());
        assert!(StrategyKind::Multipath {
            k: 2,
            mode: MultipathMode::Duplicate,
            budget: 1.0,
        }
        .uses_history());
    }

    #[test]
    fn multipath_names_encode_mode_and_budget() {
        let dup = StrategyKind::Multipath {
            k: 2,
            mode: MultipathMode::Duplicate,
            budget: 1.0,
        };
        assert_eq!(dup.name(), "multipath-dup-2");
        let budgeted = StrategyKind::Multipath {
            k: 3,
            mode: MultipathMode::Stripe,
            budget: 0.25,
        };
        assert_eq!(budgeted.name(), "multipath-stripe-3-budget-0.25");
    }
}
