//! Incremental predictor refit: the live controller's training loop.
//!
//! The batch replay engine refits at the window barrier — it stops, walks
//! every cell of the previous window, and fits a fresh [`Predictor`]. A
//! long-running controller cannot stall its select path behind that
//! whole-window pass, so this module keeps the per-cell Welford sufficient
//! statistics *live*: every call report updates exactly one cell's
//! accumulator and re-derives that one cell's [`Prediction`] — O(1) work per
//! report. At window rollover the already-finished cell map is published
//! together with a fresh tomography solve (the only remaining whole-window
//! computation, which runs off the select path while the previous predictor
//! keeps serving).
//!
//! **Byte-identity with the batch path.** Both paths feed each cell's final
//! Welford statistics through the same `fit_cell` function, and Welford
//! accumulation depends only on the per-cell push sequence — which is the
//! report sequence either way. Tomography is fitted from the identical
//! [`CallHistory`] by the identical deterministic solve. A predictor rolled
//! out of [`OnlineRefit`] therefore returns bit-for-bit the same
//! [`Prediction`]s as [`Predictor::fit`] over the same recorded window — the
//! regression tests in this module pin that down to `f64::to_bits`.

use std::collections::HashMap;
use std::sync::Arc;

use via_model::ids::RelayId;
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::time::Window;

use crate::history::{CallHistory, KeyPair, MetricStats};
use crate::predictor::{fit_cell, GeoPrior, Prediction, Predictor, PredictorConfig};
use crate::tomography::Tomography;

/// Shared inter-relay backbone metrics closure. `Arc` so every published
/// predictor holds a handle to the same table instead of cloning it.
pub type BackboneFn = Arc<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync>;

/// Online, per-report predictor training state.
///
/// Owns the accumulating window's history and a cell map of predictions that
/// is kept current on every [`OnlineRefit::record`]. [`OnlineRefit::roll`]
/// publishes a [`Predictor`] trained on the window that just closed —
/// exactly what the batch engine fits at its barrier, minus the O(cells)
/// refit pass.
pub struct OnlineRefit {
    cfg: PredictorConfig,
    prior: GeoPrior,
    backbone: BackboneFn,
    /// Window whose reports are currently accumulating.
    current: Window,
    /// Full per-cell statistics (tomography's training set).
    history: CallHistory,
    /// Live per-cell empirical predictions over `current`'s statistics,
    /// re-derived per touch so rollover publishes without a window scan.
    cells: HashMap<(KeyPair, RelayOption), Prediction>,
    /// Reports folded in since the last [`OnlineRefit::roll`].
    pending: u64,
}

impl std::fmt::Debug for OnlineRefit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineRefit")
            .field("current", &self.current)
            .field("cells", &self.cells.len())
            .field("pending", &self.pending)
            .finish()
    }
}

impl OnlineRefit {
    /// Starts the training loop at `start` with an empty history.
    pub fn new(start: Window, prior: GeoPrior, backbone: BackboneFn, cfg: PredictorConfig) -> Self {
        Self {
            cfg,
            prior,
            backbone,
            current: start,
            history: CallHistory::new(),
            cells: HashMap::new(),
            pending: 0,
        }
    }

    /// Window currently accumulating reports.
    pub fn window(&self) -> Window {
        self.current
    }

    /// Reports folded in since the last rollover (the "refit lag" a batch
    /// controller would still owe at its next barrier).
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Number of live empirical cells in the accumulating window.
    pub fn cells_len(&self) -> usize {
        self.cells.len()
    }

    /// Folds one call report into the accumulating window: one Welford push
    /// plus one single-cell fit — O(1), no window scan.
    pub fn record(&mut self, pair: KeyPair, option: RelayOption, m: &PathMetrics) {
        let option = option.canonical();
        self.history.record(self.current, pair, option, m);
        self.pending += 1;
        if let Some(stats) = self.history.cell(self.current, pair, option) {
            if let Some(pred) = fit_cell(stats, &self.cfg) {
                self.cells.insert((pair, option), pred);
            }
        }
    }

    /// Closes the accumulating window and advances to `next`, publishing the
    /// predictor the batch engine would fit at the same barrier: trained on
    /// `next.prev()` (prior-only cold predictor when there is none). The
    /// cell map ships as-is; only tomography — inherently a whole-window
    /// solve — is computed here.
    ///
    /// `next.index` must be greater than the current window's; reports for
    /// `next` must arrive after the roll.
    pub fn roll(&mut self, next: Window) -> Predictor {
        assert!(
            next.index > self.current.index,
            "window rollover must move forward: {} -> {}",
            self.current.index,
            next.index
        );
        let training = next
            .prev()
            .unwrap_or_else(|| unreachable!("next.index > current.index >= 0 implies a prev"));
        let published = if training == self.current {
            // The common case: the closing window is the training window and
            // its cell map is already fitted.
            let tomography = Tomography::fit(
                &self.history,
                training,
                self.backbone_box().as_ref(),
                &self.cfg.tomography,
            );
            Predictor::from_parts(
                self.cfg,
                training,
                self.cells.clone(),
                tomography,
                self.prior.clone(),
                self.backbone_box(),
            )
        } else {
            // Idle gap: the window preceding `next` saw no traffic (or the
            // clock jumped). Fit on whatever the history holds for it —
            // normally nothing, yielding the same empty-window predictor the
            // batch engine produces.
            Predictor::fit(
                &self.history,
                training,
                self.prior.clone(),
                self.backbone_box(),
                self.cfg,
            )
        };
        self.current = next;
        self.cells.clear();
        self.pending = 0;
        // Same memory bound as the batch engine: only the training window
        // (and newer) stays resident.
        self.history.prune_before(next.index.saturating_sub(1));
        published
    }

    /// The prior-only predictor served before the first rollover — the
    /// batch engine's cold-start behaviour.
    pub fn cold_predictor(&self) -> Predictor {
        Predictor::cold(self.prior.clone(), self.backbone_box(), self.cfg)
    }

    /// Serializable image of the accumulating state (graceful restart).
    pub fn snapshot(&self) -> RefitSnapshot {
        let mut cells: Vec<CellSnapshot> = self
            .history
            .window_cells(self.current)
            .map(|(&(pair, option), stats)| CellSnapshot {
                pair,
                option,
                stats: stats.clone(),
            })
            .collect();
        // Hash-map iteration order must not leak into the snapshot bytes
        // (restores and byte-compares depend on a canonical order).
        cells.sort_by_key(|c| (c.pair, c.option));
        RefitSnapshot {
            window: self.current,
            pending: self.pending,
            cells,
        }
    }

    /// Rebuilds the training loop from a [`RefitSnapshot`]: every cell's
    /// statistics are reinstalled and refitted, so the restored state
    /// publishes the same predictions the snapshotting instance would have.
    pub fn restore(
        snap: RefitSnapshot,
        prior: GeoPrior,
        backbone: BackboneFn,
        cfg: PredictorConfig,
    ) -> Self {
        let mut refit = Self::new(snap.window, prior, backbone, cfg);
        refit.pending = snap.pending;
        for cell in snap.cells {
            let option = cell.option.canonical();
            if let Some(pred) = fit_cell(&cell.stats, &refit.cfg) {
                refit.cells.insert((cell.pair, option), pred);
            }
            refit
                .history
                .insert_cell(snap.window, cell.pair, option, cell.stats);
        }
        refit
    }

    fn backbone_box(&self) -> Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync> {
        let bb = Arc::clone(&self.backbone);
        Box::new(move |a, b| bb(a, b))
    }
}

/// One history cell in a [`RefitSnapshot`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CellSnapshot {
    /// Canonical spatial pair.
    pub pair: KeyPair,
    /// Canonical relaying option.
    pub option: RelayOption,
    /// The cell's Welford accumulators.
    pub stats: MetricStats,
}

/// Serializable image of an [`OnlineRefit`]'s accumulating window, in
/// canonical cell order.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RefitSnapshot {
    /// Window that was accumulating when the snapshot was taken.
    pub window: Window,
    /// Reports folded in since the last rollover.
    pub pending: u64,
    /// Every cell of the accumulating window, sorted by (pair, option).
    pub cells: Vec<CellSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use via_model::metrics::Metric;
    use via_model::time::{SimTime, WindowLen};

    fn w(i: u64) -> Window {
        WindowLen::DAY.window_of(SimTime::from_days(i))
    }

    fn prior() -> GeoPrior {
        let keys = vec![
            via_netsim::GeoPoint::new(37.0, -122.0),
            via_netsim::GeoPoint::new(52.0, 13.0),
            via_netsim::GeoPoint::new(1.0, 103.0),
        ];
        let relays = vec![
            via_netsim::GeoPoint::new(40.0, -74.0),
            via_netsim::GeoPoint::new(48.0, 2.0),
        ];
        GeoPrior::new(keys, relays)
    }

    fn backbone() -> BackboneFn {
        Arc::new(|a: RelayId, b: RelayId| {
            let d = (a.0 as f64 - b.0 as f64).abs();
            PathMetrics::new(20.0 + 10.0 * d, 0.05, 1.0)
        })
    }

    fn backbone_box() -> Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync> {
        let bb = backbone();
        Box::new(move |a, b| bb(a, b))
    }

    /// A deterministic synthetic report stream over a handful of pairs and
    /// options, including repeated touches of the same cell.
    fn reports(seed: u64, n: usize) -> Vec<(KeyPair, RelayOption, PathMetrics)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a = rng.random_range(0..3u32);
                let b = rng.random_range(0..3u32);
                let option = match rng.random_range(0..4u32) {
                    0 => RelayOption::Direct,
                    1 => RelayOption::Bounce(RelayId(rng.random_range(0..2))),
                    2 => RelayOption::Transit(RelayId(0), RelayId(1)),
                    _ => RelayOption::Transit(RelayId(1), RelayId(0)),
                };
                let m = PathMetrics::new(
                    40.0 + rng.random::<f64>() * 200.0,
                    rng.random::<f64>() * 3.0,
                    rng.random::<f64>() * 12.0,
                );
                (KeyPair::new(a, b), option, m)
            })
            .collect()
    }

    fn assert_bit_identical(a: &Predictor, b: &Predictor) {
        for ka in 0..3u32 {
            for kb in 0..3u32 {
                for option in [
                    RelayOption::Direct,
                    RelayOption::Bounce(RelayId(0)),
                    RelayOption::Bounce(RelayId(1)),
                    RelayOption::Transit(RelayId(0), RelayId(1)),
                ] {
                    let pa = a.predict(ka, kb, option);
                    let pb = b.predict(ka, kb, option);
                    assert_eq!(pa.source, pb.source, "source for ({ka},{kb},{option:?})");
                    for &m in Metric::ALL.iter() {
                        assert_eq!(
                            pa.mean(m).to_bits(),
                            pb.mean(m).to_bits(),
                            "mean[{m:?}] for ({ka},{kb},{option:?})"
                        );
                        assert_eq!(
                            pa.lower(m).to_bits(),
                            pb.lower(m).to_bits(),
                            "lower[{m:?}] for ({ka},{kb},{option:?})"
                        );
                        assert_eq!(
                            pa.upper(m).to_bits(),
                            pb.upper(m).to_bits(),
                            "upper[{m:?}] for ({ka},{kb},{option:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_roll_matches_batch_fit_bit_for_bit() {
        let cfg = PredictorConfig::default();
        let stream = reports(0xA11CE, 400);

        // Batch: record everything into window 0, fit at the barrier.
        let mut history = CallHistory::new();
        for (pair, option, m) in &stream {
            history.record(w(0), *pair, *option, m);
        }
        let batch = Predictor::fit(&history, w(0), prior(), backbone_box(), cfg);

        // Incremental: one record() per report, publish at the rollover.
        let mut online = OnlineRefit::new(w(0), prior(), backbone(), cfg);
        for (pair, option, m) in &stream {
            online.record(*pair, *option, m);
        }
        assert_eq!(online.pending(), 400);
        let rolled = online.roll(w(1));
        assert_eq!(online.pending(), 0);
        assert_eq!(batch.empirical_cells(), rolled.empirical_cells());
        assert_eq!(batch.tomography_segments(), rolled.tomography_segments());
        assert_bit_identical(&batch, &rolled);
    }

    #[test]
    fn rolling_over_an_idle_gap_matches_an_empty_batch_window() {
        let cfg = PredictorConfig::default();
        let mut online = OnlineRefit::new(w(0), prior(), backbone(), cfg);
        for (pair, option, m) in reports(7, 50) {
            online.record(pair, option, &m);
        }
        // Jump from window 0 straight to window 3: training window 2 is
        // empty, exactly like a batch fit over a quiet window.
        let rolled = online.roll(w(3));
        let batch = Predictor::fit(&CallHistory::new(), w(2), prior(), backbone_box(), cfg);
        assert_eq!(rolled.empirical_cells(), 0);
        assert_bit_identical(&batch, &rolled);
    }

    #[test]
    fn snapshot_restore_round_trips_the_accumulating_window() {
        let cfg = PredictorConfig::default();
        let stream = reports(99, 250);
        let mut online = OnlineRefit::new(w(4), prior(), backbone(), cfg);
        for (pair, option, m) in &stream {
            online.record(*pair, *option, m);
        }

        let snap = online.snapshot();
        let bytes = serde_json::to_vec(&snap).unwrap();
        let decoded: RefitSnapshot = serde_json::from_slice(&bytes).unwrap();
        let mut restored = OnlineRefit::restore(decoded, prior(), backbone(), cfg);
        assert_eq!(restored.window(), w(4));
        assert_eq!(restored.pending(), online.pending());
        assert_eq!(restored.cells_len(), online.cells_len());

        // Snapshot bytes are canonical: re-snapshotting the restored state
        // reproduces them exactly.
        assert_eq!(serde_json::to_vec(&restored.snapshot()).unwrap(), bytes);

        let a = online.roll(w(5));
        let b = restored.roll(w(5));
        assert_bit_identical(&a, &b);
    }

    #[test]
    fn record_canonicalizes_options_like_the_history() {
        let cfg = PredictorConfig::default();
        let mut online = OnlineRefit::new(w(0), prior(), backbone(), cfg);
        let pair = KeyPair::new(0, 1);
        let m = PathMetrics::new(80.0, 0.5, 3.0);
        online.record(pair, RelayOption::Transit(RelayId(1), RelayId(0)), &m);
        online.record(pair, RelayOption::Transit(RelayId(0), RelayId(1)), &m);
        assert_eq!(online.cells_len(), 1);
        let snap = online.snapshot();
        assert_eq!(snap.cells.len(), 1);
        assert_eq!(snap.cells[0].stats.count(), 2);
    }
}
