//! Path-set decisions for multipath relaying.
//!
//! Single-path VIA commits every call to one [`RelayOption`]; the multipath
//! strategy commits to a small ordered *set* of them. [`PathSet`] is that
//! decision type: the primary path first (what singlepath VIA would have
//! picked — it feeds the per-call outcome record so the serialized shape is
//! unchanged), then the redundant paths in selection order. Members are
//! canonical and distinct by construction, so the set is a well-defined
//! super-arm for the combinatorial bandit and a stable dedup key for the
//! receiver-side merge model in `via-media`.

use via_model::options::RelayOption;

use crate::strategy::MultipathMode;

/// An ordered set of distinct relay paths selected for one call.
///
/// Order is meaningful: `paths()[0]` is the primary (best lower-confidence
/// index at selection time), the rest are redundancy in decreasing
/// preference. Pushes canonicalize and drop duplicates, so two sets built
/// from the same decisions compare equal regardless of how transit pairs
/// were oriented.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathSet {
    paths: Vec<RelayOption>,
}

impl PathSet {
    /// Empty set.
    pub fn new() -> PathSet {
        PathSet::default()
    }

    /// Canonicalizes `option` and appends it unless already present.
    /// Returns true when the set grew.
    pub fn push(&mut self, option: RelayOption) -> bool {
        let option = option.canonical();
        if self.paths.contains(&option) {
            return false;
        }
        self.paths.push(option);
        true
    }

    /// The primary path, if any — what the singlepath bandit would report.
    pub fn primary(&self) -> Option<RelayOption> {
        self.paths.first().copied()
    }

    /// All paths, primary first.
    pub fn paths(&self) -> &[RelayOption] {
        &self.paths
    }

    /// Number of paths in the set.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no path has been selected.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Clears the set for reuse.
    pub fn clear(&mut self) {
        self.paths.clear();
    }

    /// Budget-gate traffic charge for relaying this set (§4.6 extended):
    /// duplication sends every packet down every path, so it costs the set
    /// size; striping splits one stream across the set at unit cost. A set
    /// whose only member is the direct path costs nothing.
    pub fn relay_cost(&self, mode: MultipathMode) -> u64 {
        let relayed = self
            .paths
            .iter()
            .filter(|o| !matches!(o, RelayOption::Direct))
            .count() as u64;
        match mode {
            MultipathMode::Duplicate => relayed,
            MultipathMode::Stripe => u64::from(relayed > 0),
        }
    }
}

impl FromIterator<RelayOption> for PathSet {
    fn from_iter<I: IntoIterator<Item = RelayOption>>(iter: I) -> PathSet {
        let mut set = PathSet::new();
        for o in iter {
            set.push(o);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_model::ids::RelayId;

    #[test]
    fn push_canonicalizes_and_dedups() {
        let mut set = PathSet::new();
        assert!(set.push(RelayOption::Transit(RelayId(2), RelayId(1))));
        // The same transit pair in the other orientation is the same path.
        assert!(!set.push(RelayOption::Transit(RelayId(1), RelayId(2))));
        assert!(set.push(RelayOption::Bounce(RelayId(0))));
        assert_eq!(set.len(), 2);
        assert_eq!(
            set.primary(),
            Some(RelayOption::Transit(RelayId(2), RelayId(1)).canonical())
        );
    }

    #[test]
    fn relay_cost_by_mode() {
        let set: PathSet = [
            RelayOption::Bounce(RelayId(0)),
            RelayOption::Bounce(RelayId(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.relay_cost(MultipathMode::Duplicate), 2);
        assert_eq!(set.relay_cost(MultipathMode::Stripe), 1);

        let direct_only: PathSet = [RelayOption::Direct].into_iter().collect();
        assert_eq!(direct_only.relay_cost(MultipathMode::Duplicate), 0);
        assert_eq!(direct_only.relay_cost(MultipathMode::Stripe), 0);

        let mixed: PathSet = [RelayOption::Direct, RelayOption::Bounce(RelayId(3))]
            .into_iter()
            .collect();
        assert_eq!(mixed.relay_cost(MultipathMode::Duplicate), 1);
        assert_eq!(mixed.relay_cost(MultipathMode::Stripe), 1);
    }

    #[test]
    fn from_iterator_preserves_order() {
        let set: PathSet = [
            RelayOption::Bounce(RelayId(4)),
            RelayOption::Direct,
            RelayOption::Bounce(RelayId(4)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            set.paths(),
            &[RelayOption::Bounce(RelayId(4)), RelayOption::Direct]
        );
        assert!(!set.is_empty());
    }
}
