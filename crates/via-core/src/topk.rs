//! Dynamic top-k pruning of relaying options (Algorithm 2 of the paper).
//!
//! Rather than a fixed k, VIA selects the *minimal* set of options such that
//! the lower 95 % confidence bound of every option outside the set is higher
//! (worse) than the upper bound of every option inside it — i.e. the system
//! is statistically confident every excluded option is worse than every kept
//! one. Overlapping confidence intervals therefore pull options *into* the
//! set, so uncertain candidates are kept for exploration rather than
//! discarded.

use via_model::metrics::Metric;
use via_model::options::RelayOption;

use crate::predictor::Prediction;

/// An option with its confidence bounds on the objective metric.
#[derive(Debug, Clone, Copy)]
pub struct ScoredOption {
    /// The relaying option.
    pub option: RelayOption,
    /// Predicted mean on the objective metric.
    pub mean: f64,
    /// `Pred_lower` on the objective metric.
    pub lower: f64,
    /// `Pred_upper` on the objective metric.
    pub upper: f64,
}

impl ScoredOption {
    /// Scores an option from a prediction for the given objective metric.
    pub fn from_prediction(option: RelayOption, pred: &Prediction, metric: Metric) -> Self {
        let scored = Self {
            option,
            mean: pred.mean(metric),
            lower: pred.lower(metric),
            upper: pred.upper(metric),
        };
        scored.validate();
        scored
    }

    /// Debug-build invariant: the confidence bounds bracket the mean
    /// (`lower ≤ mean ≤ upper`) and none of them is NaN. Free in release
    /// builds.
    pub fn validate(&self) {
        debug_assert!(
            !self.mean.is_nan() && !self.lower.is_nan() && !self.upper.is_nan(),
            "ScoredOption for {:?} has NaN bounds",
            self.option
        );
        debug_assert!(
            self.lower <= self.mean && self.mean <= self.upper,
            "ScoredOption bounds out of order for {:?}: lower {} mean {} upper {}",
            self.option,
            self.lower,
            self.mean,
            self.upper
        );
    }
}

/// Computes the top-k closure: the minimal set `S` such that
/// `min_{r ∉ S} lower(r) > max_{r ∈ S} upper(r)` — equivalently, the closure
/// of "take the best upper bound, then pull in everything whose lower bound
/// overlaps the set's worst upper bound".
///
/// Returns the selected options ordered by predicted mean (best first).
/// An empty input yields an empty set.
pub fn top_k(scored: &[ScoredOption]) -> Vec<ScoredOption> {
    let mut out = Vec::new();
    top_k_into(scored, &mut Vec::new(), &mut out);
    out
}

/// Allocation-free form of [`top_k`] for the per-call hot path: the sort
/// permutation lives in `order` and the selection is written into `out`
/// (both cleared first, capacity reused across calls). Output is identical
/// to [`top_k`] — the index sort is stable, so even tied bounds select in
/// the same order.
pub fn top_k_into(scored: &[ScoredOption], order: &mut Vec<usize>, out: &mut Vec<ScoredOption>) {
    out.clear();
    if scored.is_empty() {
        return;
    }
    // Sort by lower bound: candidates join the set in this order.
    order.clear();
    order.extend(0..scored.len());
    order.sort_by(|&a, &b| scored[a].lower.total_cmp(&scored[b].lower));
    // Seed with the option with the smallest upper bound: it can never be
    // excluded (its own lower ≤ its upper ≤ anything's upper).
    let seed_upper = scored.iter().map(|s| s.upper).fold(f64::INFINITY, f64::min);

    let mut max_upper = seed_upper;
    // Every option with lower ≤ current max_upper joins; joining may raise
    // max_upper, admitting more. The lower-bound ordering makes one pass a
    // fixpoint.
    for &idx in order.iter() {
        let cand = &scored[idx];
        if cand.lower <= max_upper {
            if cand.upper > max_upper {
                max_upper = cand.upper;
            }
            out.push(*cand);
        } else {
            break;
        }
    }

    // Closure property (the defining invariant): every excluded option's
    // lower bound exceeds every selected option's upper bound. The order is
    // sorted by lower, so checking the first excluded candidate checks all.
    debug_assert!(!out.is_empty(), "non-empty input must select an option");
    debug_assert!(
        order
            .get(out.len())
            .is_none_or(|&c| scored[c].lower > max_upper),
        "top-k closure violated: excluded lower {} ≤ selected max upper {}",
        order.get(out.len()).map_or(f64::NAN, |&c| scored[c].lower),
        max_upper
    );

    out.sort_by(|a, b| a.mean.total_cmp(&b.mean));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use via_model::ids::RelayId;

    fn opt(i: u32) -> RelayOption {
        RelayOption::Bounce(RelayId(i))
    }

    fn so(i: u32, lower: f64, upper: f64) -> ScoredOption {
        ScoredOption {
            option: opt(i),
            mean: (lower + upper) / 2.0,
            lower,
            upper,
        }
    }

    #[test]
    fn empty_input() {
        assert!(top_k(&[]).is_empty());
    }

    #[test]
    fn disjoint_intervals_select_single_best() {
        let scored = [so(0, 10.0, 20.0), so(1, 30.0, 40.0), so(2, 50.0, 60.0)];
        let sel = top_k(&scored);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].option, opt(0));
    }

    #[test]
    fn overlapping_intervals_are_pulled_in() {
        // 0: [10,25], 1: [20,35], 2: [35,50], 3: [60,70]
        // Seed upper = 25. 1 overlaps (20 ≤ 25) → max_upper 35. 2 overlaps
        // (35 ≤ 35) → max_upper 50. 3 does not (60 > 50).
        let scored = [
            so(0, 10.0, 25.0),
            so(1, 20.0, 35.0),
            so(2, 35.0, 50.0),
            so(3, 60.0, 70.0),
        ];
        let sel = top_k(&scored);
        let picked: Vec<RelayOption> = sel.iter().map(|s| s.option).collect();
        assert_eq!(picked.len(), 3);
        assert!(picked.contains(&opt(0)) && picked.contains(&opt(1)) && picked.contains(&opt(2)));
    }

    #[test]
    fn identical_intervals_all_selected() {
        let scored = [so(0, 10.0, 20.0), so(1, 10.0, 20.0), so(2, 10.0, 20.0)];
        assert_eq!(top_k(&scored).len(), 3);
    }

    #[test]
    fn result_sorted_by_mean() {
        let scored = [so(1, 20.0, 35.0), so(0, 10.0, 25.0)];
        let sel = top_k(&scored);
        assert_eq!(sel[0].option, opt(0));
        assert!(sel[0].mean <= sel[1].mean);
    }

    #[test]
    fn wide_uncertainty_keeps_everything() {
        // A single very-uncertain option overlapping all others pulls in the
        // whole chain that overlaps transitively.
        let scored = [so(0, 5.0, 100.0), so(1, 50.0, 60.0), so(2, 90.0, 95.0)];
        assert_eq!(top_k(&scored).len(), 3);
    }

    #[test]
    fn top_k_into_matches_top_k_on_ties() {
        // Tied lower bounds and tied means: the stable index sort must keep
        // the original relative order, same as the reference.
        let scored = [
            so(0, 10.0, 20.0),
            so(1, 10.0, 20.0),
            so(2, 10.0, 30.0),
            so(3, 25.0, 40.0),
        ];
        let (mut order, mut out) = (Vec::new(), Vec::new());
        top_k_into(&scored, &mut order, &mut out);
        let reference = top_k(&scored);
        assert_eq!(out.len(), reference.len());
        for (a, b) in out.iter().zip(&reference) {
            assert_eq!(a.option, b.option);
        }
        // Dirty scratch from a previous call must not leak into the next.
        top_k_into(&scored[..1], &mut order, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].option, opt(0));
    }

    proptest! {
        /// The defining invariant: every excluded option's lower bound must
        /// exceed every included option's upper bound.
        #[test]
        fn exclusion_invariant(bounds in prop::collection::vec((0f64..100.0, 0f64..50.0), 1..20)) {
            let scored: Vec<ScoredOption> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, width))| so(i as u32, lo, lo + width))
                .collect();
            let sel = top_k(&scored);
            prop_assert!(!sel.is_empty());
            let max_upper = sel.iter().map(|s| s.upper).fold(f64::NEG_INFINITY, f64::max);
            let selected_opts: Vec<RelayOption> = sel.iter().map(|s| s.option).collect();
            for s in &scored {
                if !selected_opts.contains(&s.option) {
                    prop_assert!(s.lower > max_upper,
                        "excluded option lower {} ≤ set max upper {}", s.lower, max_upper);
                }
            }
        }

        /// Minimality: dropping the member with the largest upper bound must
        /// break the invariant (unless it is the only member or shares its
        /// lower bound with the boundary).
        #[test]
        fn contains_min_upper_option(bounds in prop::collection::vec((0f64..100.0, 0f64..50.0), 1..20)) {
            let scored: Vec<ScoredOption> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, width))| so(i as u32, lo, lo + width))
                .collect();
            let sel = top_k(&scored);
            // The option with the globally smallest upper bound is always in.
            let min_upper = scored
                .iter()
                .min_by(|a, b| a.upper.total_cmp(&b.upper))
                .unwrap();
            prop_assert!(sel.iter().any(|s| s.option == min_upper.option));
        }
    }
}
