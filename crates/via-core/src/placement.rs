//! Relay-fleet placement planning — the follow-up Figure 17c calls for:
//! "the contribution of benefits from different relay nodes are highly
//! skewed … new relays should be deployed carefully in future."
//!
//! Given candidate sites and a demand matrix (how many calls each AS pair
//! carries, and what the default path costs them), [`plan_placement`]
//! greedily selects the fleet that maximizes predicted total improvement —
//! the classic submodular facility-location greedy, which carries a
//! (1 − 1/e) approximation guarantee for this objective.
//!
//! The objective credits a site set `S` with
//! `Σ_pairs weight × max(0, default_cost − best_cost_via_S)`, where the
//! per-site cost comes from a caller-supplied oracle (in experiments, the
//! world model's ground truth; in deployment, the tomography predictor).

use via_model::ids::RelayId;

/// One demand entry: an AS pair, its traffic weight, and path costs.
#[derive(Debug, Clone)]
pub struct Demand {
    /// Traffic weight (e.g. calls per day).
    pub weight: f64,
    /// Cost of the default path on the objective metric.
    pub default_cost: f64,
    /// Cost via the best option using each candidate site, indexed like the
    /// candidate list passed to [`plan_placement`].
    pub site_cost: Vec<f64>,
}

/// Result of a placement plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Chosen sites, in selection order (first = most valuable).
    pub sites: Vec<RelayId>,
    /// Objective value (weighted cost reduction) after each selection —
    /// monotone non-decreasing, with diminishing increments.
    pub gain_curve: Vec<f64>,
}

/// Greedily selects up to `k` sites from `candidates` maximizing the total
/// weighted improvement over the demand set.
///
/// # Panics
/// Panics if any demand's `site_cost` length differs from the candidate
/// count.
pub fn plan_placement(candidates: &[RelayId], demands: &[Demand], k: usize) -> Placement {
    for d in demands {
        assert_eq!(
            d.site_cost.len(),
            candidates.len(),
            "demand cost vector must match candidate count"
        );
    }
    let mut chosen: Vec<usize> = Vec::new();
    let mut gain_curve = Vec::new();
    // Current best cost per demand under the chosen set.
    let mut current_best: Vec<f64> = demands.iter().map(|d| d.default_cost).collect();

    for _ in 0..k.min(candidates.len()) {
        let mut best: Option<(usize, f64)> = None;
        for (s, _) in candidates.iter().enumerate() {
            if chosen.contains(&s) {
                continue;
            }
            let marginal: f64 = demands
                .iter()
                .zip(&current_best)
                .map(|(d, &cur)| d.weight * (cur - d.site_cost[s].min(cur)))
                .sum();
            if best.is_none_or(|(_, g)| marginal > g) {
                best = Some((s, marginal));
            }
        }
        let Some((s, marginal)) = best else { break };
        if marginal <= 0.0 && !chosen.is_empty() {
            break; // no site adds value: stop early
        }
        chosen.push(s);
        for (cur, d) in current_best.iter_mut().zip(demands) {
            *cur = cur.min(d.site_cost[s]);
        }
        let total: f64 = demands
            .iter()
            .zip(&current_best)
            .map(|(d, &cur)| d.weight * (d.default_cost - cur).max(0.0))
            .sum();
        gain_curve.push(total);
    }

    Placement {
        sites: chosen.into_iter().map(|s| candidates[s]).collect(),
        gain_curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> RelayId {
        RelayId(i)
    }

    /// Three sites; site 1 helps both demands, sites 0/2 help one each.
    fn demands() -> Vec<Demand> {
        vec![
            Demand {
                weight: 10.0,
                default_cost: 100.0,
                site_cost: vec![50.0, 60.0, 100.0],
            },
            Demand {
                weight: 10.0,
                default_cost: 100.0,
                site_cost: vec![100.0, 60.0, 50.0],
            },
        ]
    }

    #[test]
    fn picks_the_shared_site_first() {
        let p = plan_placement(&[rid(0), rid(1), rid(2)], &demands(), 3);
        // Site 1 gives 40×10 + 40×10 = 800; sites 0/2 give 500 each.
        assert_eq!(p.sites[0], rid(1));
        assert_eq!(p.sites.len(), 3);
        assert!((p.gain_curve[0] - 800.0).abs() < 1e-9);
    }

    #[test]
    fn gain_curve_is_monotone_with_diminishing_increments() {
        let p = plan_placement(&[rid(0), rid(1), rid(2)], &demands(), 3);
        for w in p.gain_curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "gain must not decrease");
        }
        if p.gain_curve.len() >= 3 {
            let inc1 = p.gain_curve[1] - p.gain_curve[0];
            let inc2 = p.gain_curve[2] - p.gain_curve[1];
            assert!(inc2 <= inc1 + 1e-9, "submodularity: increments shrink");
        }
    }

    #[test]
    fn stops_when_no_site_helps() {
        let d = vec![Demand {
            weight: 1.0,
            default_cost: 10.0,
            site_cost: vec![20.0, 30.0], // every site is worse than default
        }];
        let p = plan_placement(&[rid(0), rid(1)], &d, 2);
        // The first pick is allowed (zero marginal), but nothing after.
        assert!(p.sites.len() <= 1);
        if let Some(&g) = p.gain_curve.first() {
            assert_eq!(g, 0.0);
        }
    }

    #[test]
    fn k_larger_than_candidates_is_fine() {
        let d = vec![Demand {
            weight: 5.0,
            default_cost: 100.0,
            site_cost: vec![40.0],
        }];
        let p = plan_placement(&[rid(0)], &d, 10);
        assert_eq!(p.sites.len(), 1);
        assert!((p.gain_curve[0] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let p = plan_placement(&[], &[], 3);
        assert!(p.sites.is_empty());
        let p2 = plan_placement(&[rid(0)], &[], 2);
        assert_eq!(p2.sites.len(), 1); // harmless: zero gain
    }

    #[test]
    #[should_panic(expected = "must match candidate count")]
    fn mismatched_cost_vector_panics() {
        let d = vec![Demand {
            weight: 1.0,
            default_cost: 10.0,
            site_cost: vec![5.0],
        }];
        plan_placement(&[rid(0), rid(1)], &d, 1);
    }

    #[test]
    fn weights_steer_the_choice() {
        // Same costs, but demand 0 carries 100× the traffic: its best site
        // must win.
        let d = vec![
            Demand {
                weight: 100.0,
                default_cost: 100.0,
                site_cost: vec![50.0, 90.0],
            },
            Demand {
                weight: 1.0,
                default_cost: 100.0,
                site_cost: vec![90.0, 50.0],
            },
        ];
        let p = plan_placement(&[rid(0), rid(1)], &d, 1);
        assert_eq!(p.sites, vec![rid(0)]);
    }
}
