//! Relay-based network tomography (§4.4 of the paper, Figure 11).
//!
//! Call history only covers (pair, option) cells that actually carried calls.
//! Tomography expands coverage: every relayed path decomposes into a
//! *client-side segment* per (endpoint, relay) plus — for transit — a known
//! backbone segment. By treating each observed relayed call as a linear
//! equation over the unknown segment values,
//!
//! ```text
//! bounce(a,b via r):        u[a,r] + u[b,r]            = y
//! transit(a,b via r1,r2):   u[a,r1] + bb[r1,r2] + u[b,r2] = y
//! ```
//!
//! a weighted least-squares solve recovers `u`, and stitching the estimates
//! predicts paths never observed (the dotted line of Figure 11).
//!
//! RTT composes additively as-is. Loss and jitter are *linearized* first
//! (§4.4: "metrics that compose linearly (e.g., RTT) or can be linearized
//! (e.g., jitter and packet loss rate, under the assumption of independence
//! across network segments)"):
//!
//! * loss `p` (%) → `x = −ln(1 − p/100)`, since survival probabilities
//!   multiply across independent segments;
//! * jitter `j` → `x = j²`, since variances of independent delay-variation
//!   processes add.

use std::collections::HashMap;
use via_model::ids::RelayId;
use via_model::metrics::{Metric, PathMetrics};
use via_model::options::RelayOption;
use via_model::time::Window;

use crate::history::CallHistory;

/// Maps a raw metric value into its additively-composing space.
pub fn linearize(metric: Metric, value: f64) -> f64 {
    match metric {
        Metric::Rtt => value.max(0.0),
        Metric::Loss => {
            let p = (value / 100.0).clamp(0.0, 0.9999);
            -(1.0 - p).ln()
        }
        Metric::Jitter => value.max(0.0).powi(2),
    }
}

/// Inverse of [`linearize`].
pub fn delinearize(metric: Metric, x: f64) -> f64 {
    let x = x.max(0.0);
    match metric {
        Metric::Rtt => x,
        Metric::Loss => 100.0 * (1.0 - (-x).exp()),
        Metric::Jitter => x.sqrt(),
    }
}

/// Delta-method transport of a standard error through [`linearize`].
pub fn linearize_sem(metric: Metric, mean: f64, sem: f64) -> f64 {
    match metric {
        Metric::Rtt => sem,
        Metric::Loss => {
            // dx/dp at p percent: (1/100) / (1 − p/100).
            let p = (mean / 100.0).clamp(0.0, 0.9999);
            sem / 100.0 / (1.0 - p)
        }
        Metric::Jitter => 2.0 * mean.max(0.0) * sem,
    }
}

/// One client-side segment: spatial key (AS, country, or finer — see
/// `replay::SpatialGranularity`) to relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentKey {
    /// Spatial key of the client side.
    pub key: u32,
    /// Relay id.
    pub relay: RelayId,
}

/// Solved estimate for one segment, in linearized space.
#[derive(Debug, Clone, Copy)]
pub struct SegmentEstimate {
    /// Linearized value per metric.
    pub value: [f64; 3],
    /// Standard error per metric (linearized space).
    pub sem: [f64; 3],
    /// Number of observations touching this segment.
    pub n_obs: u32,
}

/// One linear observation: `u[i] + u[j] = y` (per metric), with weight `w`
/// (sample count).
#[derive(Debug, Clone, Copy)]
struct Obs {
    i: usize,
    j: usize,
    y: [f64; 3],
    w: f64,
}

/// Configuration for the tomography solve.
#[derive(Debug, Clone, Copy)]
pub struct TomographyConfig {
    /// Gauss–Seidel sweeps (the system is sparse and well-conditioned;
    /// 25 sweeps is far past convergence for realistic densities).
    pub iterations: usize,
    /// Relative SEM floor applied to solved segments (prevents overconfident
    /// stitching off few observations).
    pub min_rel_sem: f64,
    /// Worker threads for the per-cell linearization pass (`0` = one per
    /// core, `1` = sequential). The Gauss–Seidel sweeps themselves stay
    /// sequential — their result depends on update order, which determinism
    /// pins down.
    pub workers: usize,
}

impl Default for TomographyConfig {
    fn default() -> Self {
        Self {
            iterations: 25,
            min_rel_sem: 0.05,
            workers: 1,
        }
    }
}

/// Fitted tomography model for one training window.
#[derive(Debug, Default)]
pub struct Tomography {
    segments: HashMap<SegmentKey, SegmentEstimate>,
}

impl Tomography {
    /// Fits segment estimates from one history window. `backbone` supplies
    /// the provider's known inter-relay metrics (§3.2).
    pub fn fit(
        history: &CallHistory,
        window: Window,
        backbone: &dyn Fn(RelayId, RelayId) -> PathMetrics,
        cfg: &TomographyConfig,
    ) -> Tomography {
        let mut index: HashMap<SegmentKey, usize> = HashMap::new();
        let mut keys: Vec<SegmentKey> = Vec::new();
        let mut obs: Vec<Obs> = Vec::new();

        let intern = |k: SegmentKey,
                      keys: &mut Vec<SegmentKey>,
                      index: &mut HashMap<SegmentKey, usize>|
         -> usize {
            *index.entry(k).or_insert_with(|| {
                keys.push(k);
                keys.len() - 1
            })
        };

        // Sort cells so the solve is independent of hash-map iteration order
        // (Gauss–Seidel results depend on update order at fixed iteration
        // counts; determinism requires a stable order).
        let mut cells: Vec<_> = history.window_cells(window).collect();
        cells.sort_by_key(|(k, _)| **k);
        // Per-cell linearization is pure math over independent cells: fan it
        // out across the worker pool. Interning and observation assembly
        // stay sequential so unknown indices are stable.
        let lin_workers = if cells.len() < 256 {
            1
        } else {
            crate::par::resolve_workers(cfg.workers)
        };
        let ys: Vec<[f64; 3]> = crate::par::par_map(lin_workers, &cells, |_, (_, stats)| {
            let mut y = [0.0f64; 3];
            for (m_idx, &metric) in Metric::ALL.iter().enumerate() {
                let mean = stats.metric(metric).mean().unwrap_or(0.0);
                y[m_idx] = linearize(metric, mean);
            }
            y
        });
        for (((pair, option), stats), y) in cells.into_iter().map(|(k, s)| (*k, s)).zip(ys) {
            let n = stats.count();
            if n == 0 {
                continue;
            }
            match option.canonical() {
                RelayOption::Direct => {}
                RelayOption::Bounce(r) => {
                    let i = intern(
                        SegmentKey {
                            key: pair.lo,
                            relay: r,
                        },
                        &mut keys,
                        &mut index,
                    );
                    let j = intern(
                        SegmentKey {
                            key: pair.hi,
                            relay: r,
                        },
                        &mut keys,
                        &mut index,
                    );
                    obs.push(Obs {
                        i,
                        j,
                        y,
                        w: n as f64,
                    });
                }
                RelayOption::Transit(r1, r2) => {
                    // Ingress/egress assignment to lo/hi is unknown from the
                    // aggregate; record both orientations at half weight —
                    // with symmetric client legs this is the least-biased
                    // linear attribution.
                    let bbm = backbone(r1, r2);
                    let mut y_adj = y;
                    for (m_idx, &metric) in Metric::ALL.iter().enumerate() {
                        y_adj[m_idx] = (y_adj[m_idx] - linearize(metric, bbm[metric])).max(0.0);
                    }
                    let i1 = intern(
                        SegmentKey {
                            key: pair.lo,
                            relay: r1,
                        },
                        &mut keys,
                        &mut index,
                    );
                    let j1 = intern(
                        SegmentKey {
                            key: pair.hi,
                            relay: r2,
                        },
                        &mut keys,
                        &mut index,
                    );
                    obs.push(Obs {
                        i: i1,
                        j: j1,
                        y: y_adj,
                        w: n as f64 / 2.0,
                    });
                    let i2 = intern(
                        SegmentKey {
                            key: pair.lo,
                            relay: r2,
                        },
                        &mut keys,
                        &mut index,
                    );
                    let j2 = intern(
                        SegmentKey {
                            key: pair.hi,
                            relay: r1,
                        },
                        &mut keys,
                        &mut index,
                    );
                    obs.push(Obs {
                        i: i2,
                        j: j2,
                        y: y_adj,
                        w: n as f64 / 2.0,
                    });
                }
            }
        }

        if keys.is_empty() {
            return Tomography::default();
        }

        // Initialize every unknown to half of the weighted mean of its
        // observations, then Gauss–Seidel.
        let n_unknowns = keys.len();
        let mut u = vec![[0.0f64; 3]; n_unknowns];
        let mut w_sum = vec![0.0f64; n_unknowns];
        for o in &obs {
            for (m, &y) in o.y.iter().enumerate() {
                u[o.i][m] += o.w * y / 2.0;
                u[o.j][m] += o.w * y / 2.0;
            }
            w_sum[o.i] += o.w;
            w_sum[o.j] += o.w;
        }
        for (ui, &w) in u.iter_mut().zip(&w_sum) {
            if w > 0.0 {
                for v in ui.iter_mut() {
                    *v /= w;
                }
            }
        }

        // Adjacency: unknown → observation indices.
        let mut touching: Vec<Vec<usize>> = vec![Vec::new(); n_unknowns];
        for (oi, o) in obs.iter().enumerate() {
            touching[o.i].push(oi);
            if o.j != o.i {
                touching[o.j].push(oi);
            }
        }

        for _ in 0..cfg.iterations {
            for i in 0..n_unknowns {
                let mut num = [0.0f64; 3];
                let mut den = 0.0f64;
                for &oi in &touching[i] {
                    let o = &obs[oi];
                    let partner = if o.i == i { o.j } else { o.i };
                    for m in 0..3 {
                        let partner_val = if partner == i { u[i][m] } else { u[partner][m] };
                        num[m] += o.w * (o.y[m] - partner_val);
                    }
                    den += o.w;
                }
                if den > 0.0 {
                    for m in 0..3 {
                        u[i][m] = (num[m] / den).max(0.0);
                    }
                }
            }
        }

        // Residual-based SEM per unknown.
        let mut res_sq = vec![[0.0f64; 3]; n_unknowns];
        let mut n_obs = vec![0u32; n_unknowns];
        for o in &obs {
            for m in 0..3 {
                let r = o.y[m] - u[o.i][m] - u[o.j][m];
                res_sq[o.i][m] += o.w * r * r;
                res_sq[o.j][m] += o.w * r * r;
            }
            n_obs[o.i] += 1;
            if o.j != o.i {
                n_obs[o.j] += 1;
            }
        }

        let mut segments = HashMap::with_capacity(n_unknowns);
        for (idx, key) in keys.into_iter().enumerate() {
            let mut sem = [0.0f64; 3];
            for m in 0..3 {
                let var = if w_sum[idx] > 0.0 {
                    res_sq[idx][m] / w_sum[idx]
                } else {
                    0.0
                };
                let base = (var / (n_obs[idx].max(1) as f64)).sqrt();
                sem[m] = base.max(cfg.min_rel_sem * u[idx][m]);
            }
            segments.insert(
                key,
                SegmentEstimate {
                    value: u[idx],
                    sem,
                    n_obs: n_obs[idx],
                },
            );
        }
        Tomography { segments }
    }

    /// Number of solved segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if the model solved no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Solved estimate for one segment.
    pub fn segment(&self, key: u32, relay: RelayId) -> Option<&SegmentEstimate> {
        self.segments.get(&SegmentKey { key, relay })
    }

    /// Stitched prediction for a relayed option between spatial keys `a` and
    /// `b`, in linearized space: `(mean, sem)` per metric. Returns `None` for
    /// the direct option (tomography is relay-based) or when a needed
    /// segment is unsolved.
    pub fn stitch(
        &self,
        a: u32,
        b: u32,
        option: RelayOption,
        backbone: &dyn Fn(RelayId, RelayId) -> PathMetrics,
    ) -> Option<([f64; 3], [f64; 3])> {
        match option.canonical() {
            RelayOption::Direct => None,
            RelayOption::Bounce(r) => {
                let sa = self.segments.get(&SegmentKey { key: a, relay: r })?;
                let sb = self.segments.get(&SegmentKey { key: b, relay: r })?;
                let mut mean = [0.0; 3];
                let mut sem = [0.0; 3];
                for m in 0..3 {
                    mean[m] = sa.value[m] + sb.value[m];
                    sem[m] = (sa.sem[m].powi(2) + sb.sem[m].powi(2)).sqrt();
                }
                Some((mean, sem))
            }
            RelayOption::Transit(r1, r2) => {
                // Try both orientations; use the better-covered one.
                let fwd = self
                    .segments
                    .get(&SegmentKey { key: a, relay: r1 })
                    .zip(self.segments.get(&SegmentKey { key: b, relay: r2 }));
                let rev = self
                    .segments
                    .get(&SegmentKey { key: a, relay: r2 })
                    .zip(self.segments.get(&SegmentKey { key: b, relay: r1 }));
                let (sa, sb) = match (fwd, rev) {
                    (Some(f), Some(r)) => {
                        if f.0.n_obs + f.1.n_obs >= r.0.n_obs + r.1.n_obs {
                            f
                        } else {
                            r
                        }
                    }
                    (Some(f), None) => f,
                    (None, Some(r)) => r,
                    (None, None) => return None,
                };
                let bbm = backbone(r1, r2);
                let mut mean = [0.0; 3];
                let mut sem = [0.0; 3];
                for (m_idx, &metric) in Metric::ALL.iter().enumerate() {
                    mean[m_idx] =
                        sa.value[m_idx] + sb.value[m_idx] + linearize(metric, bbm[metric]);
                    sem[m_idx] = (sa.sem[m_idx].powi(2) + sb.sem[m_idx].powi(2)).sqrt();
                }
                Some((mean, sem))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::KeyPair;
    use proptest::prelude::*;
    use via_model::time::{SimTime, WindowLen};

    #[test]
    fn linearize_roundtrips() {
        for metric in Metric::ALL {
            for v in [0.0, 0.5, 5.0, 50.0] {
                let x = linearize(metric, v);
                let back = delinearize(metric, x);
                assert!((back - v).abs() < 1e-9, "{metric} {v} → {x} → {back}");
            }
        }
    }

    #[test]
    fn loss_linearization_composes_multiplicatively() {
        // Two segments at 2% and 3% loss: end-to-end = 1 − 0.98·0.97.
        let x = linearize(Metric::Loss, 2.0) + linearize(Metric::Loss, 3.0);
        let combined = delinearize(Metric::Loss, x);
        assert!((combined - (100.0 * (1.0 - 0.98 * 0.97))).abs() < 1e-9);
    }

    #[test]
    fn jitter_linearization_adds_in_quadrature() {
        let x = linearize(Metric::Jitter, 3.0) + linearize(Metric::Jitter, 4.0);
        assert!((delinearize(Metric::Jitter, x) - 5.0).abs() < 1e-12);
    }

    /// Builds a synthetic ground truth of segment values, observes a few
    /// bounce paths, and checks that the solver recovers held-out paths.
    #[test]
    fn solver_recovers_figure_11_scenario() {
        // Figure 11: calls AS1↔AS4, AS2↔AS3, AS1↔AS2 through relay RN exist;
        // predict AS3↔AS4.
        let truth = |a: u32| 20.0 + 10.0 * a as f64; // u[a, RN] in ms
        let r = RelayId(0);
        let window = WindowLen::DAY.window_of(SimTime::ZERO);
        let mut h = CallHistory::new();
        let mut push = |a: u32, b: u32| {
            let y = truth(a) + truth(b);
            for _ in 0..10 {
                h.record(
                    window,
                    KeyPair::new(a, b),
                    RelayOption::Bounce(r),
                    &PathMetrics::new(y, 0.0, 0.0),
                );
            }
        };
        push(1, 4);
        push(2, 3);
        push(1, 2);

        let bb = |_: RelayId, _: RelayId| PathMetrics::ZERO;
        let tomo = Tomography::fit(&h, window, &bb, &TomographyConfig::default());
        let (mean, _) = tomo
            .stitch(3, 4, RelayOption::Bounce(r), &bb)
            .expect("stitched");
        let expected = truth(3) + truth(4);
        assert!(
            (mean[0] - expected).abs() < 1.0,
            "predicted {} expected {expected}",
            mean[0]
        );
    }

    #[test]
    fn transit_stitching_subtracts_backbone() {
        let r1 = RelayId(0);
        let r2 = RelayId(1);
        let window = WindowLen::DAY.window_of(SimTime::ZERO);
        let mut h = CallHistory::new();
        // Ground truth: u[1,r1]=30, u[2,r2]=50, backbone=40.
        for _ in 0..10 {
            h.record(
                window,
                KeyPair::new(1, 2),
                RelayOption::Transit(r1, r2),
                &PathMetrics::new(120.0, 0.0, 0.0),
            );
            // Anchor the split with bounce observations on each side.
            h.record(
                window,
                KeyPair::new(1, 1),
                RelayOption::Bounce(r1),
                &PathMetrics::new(60.0, 0.0, 0.0),
            );
            h.record(
                window,
                KeyPair::new(2, 2),
                RelayOption::Bounce(r2),
                &PathMetrics::new(100.0, 0.0, 0.0),
            );
        }
        let bb = |_: RelayId, _: RelayId| PathMetrics::new(40.0, 0.0, 0.0);
        let tomo = Tomography::fit(&h, window, &bb, &TomographyConfig::default());
        let (mean, _) = tomo
            .stitch(1, 2, RelayOption::Transit(r1, r2), &bb)
            .expect("stitched");
        assert!((mean[0] - 120.0).abs() < 3.0, "got {}", mean[0]);
    }

    #[test]
    fn empty_window_yields_empty_model() {
        let h = CallHistory::new();
        let window = WindowLen::DAY.window_of(SimTime::ZERO);
        let bb = |_: RelayId, _: RelayId| PathMetrics::ZERO;
        let tomo = Tomography::fit(&h, window, &bb, &TomographyConfig::default());
        assert!(tomo.is_empty());
        assert!(tomo
            .stitch(0, 1, RelayOption::Bounce(RelayId(0)), &bb)
            .is_none());
    }

    #[test]
    fn direct_paths_are_not_stitched() {
        let tomo = Tomography::default();
        let bb = |_: RelayId, _: RelayId| PathMetrics::ZERO;
        assert!(tomo.stitch(0, 1, RelayOption::Direct, &bb).is_none());
    }

    #[test]
    fn sem_shrinks_with_more_data() {
        let r = RelayId(0);
        let window = WindowLen::DAY.window_of(SimTime::ZERO);
        let bb = |_: RelayId, _: RelayId| PathMetrics::ZERO;

        let fit_with = |n_pairs: u32| {
            let mut h = CallHistory::new();
            for a in 0..n_pairs {
                for b in (a + 1)..n_pairs {
                    // Noisy observations around u=50 per side.
                    for k in 0..5 {
                        let y = 100.0 + (k as f64 - 2.0) * 4.0;
                        h.record(
                            window,
                            KeyPair::new(a, b),
                            RelayOption::Bounce(r),
                            &PathMetrics::new(y, 0.0, 0.0),
                        );
                    }
                }
            }
            let tomo = Tomography::fit(&h, window, &bb, &TomographyConfig::default());
            tomo.segment(0, r).map(|s| s.sem[0])
        };

        let sparse = fit_with(3).unwrap();
        let dense = fit_with(8).unwrap();
        assert!(
            dense <= sparse,
            "denser coverage should not increase SEM ({dense} vs {sparse})"
        );
    }

    proptest! {
        #[test]
        fn linearize_is_monotone(m_idx in 0usize..3, a in 0f64..99.0, b in 0f64..99.0) {
            let metric = Metric::ALL[m_idx];
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(linearize(metric, lo) <= linearize(metric, hi) + 1e-12);
        }

        #[test]
        fn delinearize_roundtrip(m_idx in 0usize..3, v in 0f64..95.0) {
            let metric = Metric::ALL[m_idx];
            let back = delinearize(metric, linearize(metric, v));
            prop_assert!((back - v).abs() < 1e-6);
        }

        #[test]
        fn linearize_sem_nonnegative(m_idx in 0usize..3, mean in 0f64..95.0, sem in 0f64..10.0) {
            let metric = Metric::ALL[m_idx];
            prop_assert!(linearize_sem(metric, mean, sem) >= 0.0);
        }
    }
}
