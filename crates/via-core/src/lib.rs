//! The VIA contribution: prediction-guided exploration for relay selection.
//!
//! This crate implements §4 of the paper end to end, plus the evaluation
//! machinery of §5.1:
//!
//! * [`history`] — the controller's measurement store: per (pair, option,
//!   window) Welford aggregates fed by completed calls.
//! * [`tomography`] — relay-based network tomography (§4.4, Figure 11):
//!   linearizes loss (log-survival) and jitter (variance), solves client-side
//!   segments by weighted least squares, and stitches predictions for paths
//!   never observed.
//! * [`predictor`] — `Pred` of Algorithm 1: empirical → tomography →
//!   geographic prior, each with mean and 95 % confidence bounds.
//! * [`online`] — the live controller's training loop: per-report
//!   incremental refit that publishes predictors bit-identical to the batch
//!   barrier fit, plus snapshot/restore for graceful restarts.
//! * [`topk`] — Algorithm 2: the minimal confidence-interval closure that
//!   provably contains every plausibly-best option.
//! * [`bandit`] — Algorithm 3: UCB1 modified with outlier-robust
//!   normalization, in cost-minimization form.
//! * [`budget`] — §4.6: streaming-percentile budget gate, with weighted
//!   costs so duplicated multipath traffic is charged honestly.
//! * [`multipath`] — `PathSet`: the ordered, canonical set-of-paths
//!   decision type behind `StrategyKind::Multipath`.
//! * [`active`] — §7 future work, implemented: greedy set-cover planning of
//!   active probes that fill tomography holes.
//! * [`placement`] — Figure 17c's follow-up: submodular greedy relay-fleet
//!   placement over a demand matrix.
//! * [`coords`] — Vivaldi network coordinates (the paper's related-work
//!   reference 18), for the
//!   prediction-accuracy comparison in `ext_vivaldi`.
//! * [`strategy`] / [`replay`] — the oracle, strawman baselines, VIA and its
//!   ablations, replayed chronologically with common random numbers.
//!
//! ```
//! use via_core::replay::{ReplayConfig, ReplaySim};
//! use via_core::strategy::StrategyKind;
//! use via_netsim::{World, WorldConfig};
//! use via_trace::{TraceConfig, TraceGenerator};
//!
//! let world = World::generate(&WorldConfig::tiny(), 42);
//! let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 42).generate();
//! let cfg = ReplayConfig::default();
//! let default = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Default);
//! let via = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Via);
//! let t = Default::default();
//! assert!(via.pnr_any(&t) <= default.pnr_any(&t) + 0.05);
//! ```

#![warn(missing_docs)]

pub mod active;
pub mod bandit;
pub mod budget;
pub mod coords;
pub mod history;
pub mod multipath;
pub mod online;
pub mod par;
pub mod placement;
pub mod predictor;
pub mod replay;
pub mod strategy;
pub mod tomography;
pub mod topk;

pub use active::{plan_probes, Probe};
pub use bandit::UcbBandit;
pub use budget::BudgetGate;
pub use coords::{Coord, Vivaldi, VivaldiConfig};
pub use history::{CallHistory, KeyPair, MetricStats};
pub use multipath::PathSet;
pub use online::{BackboneFn, CellSnapshot, OnlineRefit, RefitSnapshot};
pub use placement::{plan_placement, Demand, Placement};
pub use predictor::{fit_cell, GeoPrior, Prediction, PredictionSource, Predictor, PredictorConfig};
pub use replay::{CallOutcome, Outcome, ReplayConfig, ReplaySim, ReplayStats, SpatialGranularity};
pub use strategy::{MultipathMode, StrategyKind};
pub use topk::{top_k, top_k_into, ScoredOption};
