//! Chronological trace replay — the evaluation methodology of §5.1, run on a
//! deterministic window-parallel engine.
//!
//! Calls are replayed in trace order. Each strategy decides a relaying option
//! per call; the realized performance is drawn from the ground-truth model
//! for that (pair, option, instant) — the in-model equivalent of the paper's
//! "randomly sampled call from the same AS pair through the same relay option
//! in the same 24-hour window". Three details matter:
//!
//! * **Common random numbers** — the realization RNG is seeded by
//!   `(replay seed, call id, option)` so every strategy evaluating the same
//!   call over the same option observes the same value. Strategy comparisons
//!   are therefore paired, eliminating sampling noise from the deltas.
//! * **Information hygiene** — learning strategies only ever see realized
//!   samples of calls they actually carried (fed back into
//!   [`CallHistory`]); only the oracle touches `option_mean`.
//! * **Worker-count invariance** — within a control window, calls are
//!   sharded by decision [`KeyPair`] across a worker pool; the predictor
//!   refit at each window boundary is the barrier. All per-call randomness
//!   is derived from the call's trace index (never from a shared stream), a
//!   pair's entire state lives on exactly one shard, and per-shard results
//!   are merged back in trace order — so the outcome is a pure function of
//!   the config, byte-identical for any worker count.
//!
//! The replay also implements the sensitivity axes of Figure 17: spatial
//! decision granularity, control-period length `T`, and relay-fleet
//! restriction.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use via_media::merge::{simulate_set, MergeConfig, MergeMode, MergeScratch, PathSpec};
use via_model::ids::{AsId, RelayId};
use via_model::metrics::{Metric, PathMetrics, Thresholds};
use via_model::options::RelayOption;
use via_model::seed;
use via_model::time::{SimTime, Window, WindowLen};
use via_netsim::World;
use via_obs::{MetricSink, MetricsSnapshot, Stopwatch};
use via_quality::PnrReport;
use via_trace::stream::{RecordSource, StreamError, WindowBatch, WindowStream};
use via_trace::{CallRecord, Trace};

use crate::bandit::UcbBandit;
use crate::budget::BudgetGate;
use crate::history::{CallHistory, KeyPair};
use crate::predictor::{GeoPrior, Predictor, PredictorConfig};
use crate::strategy::{MultipathMode, StrategyKind};
use crate::topk::{top_k_into, ScoredOption};

/// Spatial granularity at which selection decisions are keyed (Figure 17a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpatialGranularity {
    /// One decision key per country.
    Country,
    /// One key per AS — the paper's default sweet spot.
    As,
    /// Finer than AS: each AS splits into `buckets` client buckets,
    /// emulating /20- or /24-prefix granularity (sparser data per key).
    SubAs {
        /// Buckets per AS.
        buckets: u8,
    },
}

impl SpatialGranularity {
    /// Key of one call endpoint under this granularity.
    pub fn key_of(&self, world: &World, as_id: AsId, client: u32) -> u32 {
        match *self {
            SpatialGranularity::Country => world.ases[as_id.index()].country.0,
            SpatialGranularity::As => as_id.0,
            SpatialGranularity::SubAs { buckets } => {
                as_id.0 * u32::from(buckets) + client % u32::from(buckets)
            }
        }
    }

    /// Representative positions per key, for the predictor's geographic
    /// prior.
    pub fn key_positions(&self, world: &World) -> Vec<via_netsim::GeoPoint> {
        match *self {
            SpatialGranularity::Country => world.countries.iter().map(|c| c.pos).collect(),
            SpatialGranularity::As => world.ases.iter().map(|a| a.pos).collect(),
            SpatialGranularity::SubAs { buckets } => world
                .ases
                .iter()
                .flat_map(|a| std::iter::repeat_n(a.pos, usize::from(buckets)))
                .collect(),
        }
    }
}

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Control-period length `T` (stages 2–3 of Algorithm 1 refresh per
    /// window; Figure 17b sweeps this).
    pub window: WindowLen,
    /// The network metric being optimized (the paper optimizes each metric
    /// individually; run one replay per metric).
    pub objective: Metric,
    /// ε for general exploration (fraction of calls sent to a uniformly
    /// random option outside the bandit).
    pub epsilon: f64,
    /// Spatial decision granularity.
    pub granularity: SpatialGranularity,
    /// If set, only these relays exist (Figure 17c relay ablation).
    pub allowed_relays: Option<Vec<RelayId>>,
    /// If false, transit (two-relay) options are excluded — the §5.2
    /// "bouncing only" comparison.
    pub allow_transit: bool,
    /// Active probes issued per control window (§7 "Active Measurements"):
    /// before each window's predictor refresh, the controller makes this
    /// many mock calls targeting tomography holes and folds the results into
    /// the training data. Zero (the paper's deployed system) disables it.
    pub active_probes_per_window: usize,
    /// Predictor settings.
    pub predictor: PredictorConfig,
    /// Worker threads for the window-parallel engine: each window's calls
    /// are sharded by decision [`KeyPair`] across this many threads, and the
    /// per-window predictor refit is parallelized the same way. `0` means
    /// one worker per available core. Results are byte-identical for any
    /// value — the engine guarantees worker-count invariance.
    pub workers: usize,
    /// Eagerly materialize every world segment the trace can touch before
    /// replay starts (parallelized across `workers`). Segment latents are a
    /// pure function of the world seed, so warming never changes results —
    /// it only moves first-touch build cost out of the replay loop, so the
    /// measured window throughput is free of write-lock traffic.
    pub warm: bool,
    /// Record observability metrics (via-obs counters, histograms, and
    /// per-window span events) into [`Outcome::obs`]. Each worker records
    /// into its own [`MetricSink`], merged at the window barrier in
    /// shard-index order, so the snapshot's deterministic core is
    /// byte-identical for any worker count. Off by default: the hot path
    /// then records nothing.
    pub metrics: bool,
    /// Materialize per-call outcomes into [`Outcome::calls`]. On by default.
    /// Paper-scale streamed runs turn this off: hundreds of millions of
    /// [`CallOutcome`]s would defeat bounded-memory replay, and every
    /// population summary is carried by [`Outcome::aggregate`] instead
    /// (computed identically either way).
    pub collect_calls: bool,
    /// Base seed for realization sampling and exploration randomness.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            window: WindowLen::DAY,
            objective: Metric::Rtt,
            epsilon: 0.03,
            granularity: SpatialGranularity::As,
            allowed_relays: None,
            allow_transit: true,
            active_probes_per_window: 0,
            predictor: PredictorConfig::default(),
            workers: 0,
            warm: false,
            metrics: false,
            collect_calls: true,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of one call under some strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallOutcome {
    /// Index of the call in the trace.
    pub call_index: u32,
    /// The option the strategy assigned.
    pub option: RelayOption,
    /// Realized end-to-end metrics (access extras included).
    pub metrics: PathMetrics,
}

/// Running digest + population counters over the replayed calls, updated in
/// the sequential window merge (trace order) — so it is worker-count
/// invariant by construction and byte-identical between the streamed and
/// materialized engines. It is the whole summary when
/// [`ReplayConfig::collect_calls`] is off (the bounded-memory paper-scale
/// mode, where materializing a `Vec<CallOutcome>` would defeat streaming).
///
/// PNR counters use [`Thresholds::default`]; runs needing custom thresholds
/// keep `collect_calls` on and use [`Outcome::pnr`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayAggregate {
    /// Calls replayed.
    pub calls: u64,
    /// Calls sent on the direct path.
    pub direct: u64,
    /// Calls sent through one relay.
    pub bounce: u64,
    /// Calls sent through two relays.
    pub transit: u64,
    /// Calls with poor RTT (default thresholds).
    pub poor_rtt: u64,
    /// Calls with poor loss.
    pub poor_loss: u64,
    /// Calls with poor jitter.
    pub poor_jitter: u64,
    /// Calls with at least one poor metric.
    pub poor_any: u64,
    /// Trace-order sum of realized RTT, ms.
    pub sum_rtt_ms: f64,
    /// Trace-order sum of realized loss, percent.
    pub sum_loss_pct: f64,
    /// Trace-order sum of realized jitter, ms.
    pub sum_jitter_ms: f64,
    /// FNV-1a digest over every call's `(call_index, option, metric bits)`
    /// in trace order — one number that differs if any call's outcome,
    /// option, or position differs.
    pub digest: u64,
}

/// FNV-1a 64-bit offset basis (digest accumulator start).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Merge-model tunables for multipath replay. 16 frames keeps per-call
/// packet synthesis inside the replay-engine bench gate (multipath must stay
/// within 2.5× the singlepath per-call cost) while still exercising dedup,
/// reordering, and head-of-line waits; the small drawn-death probability
/// surfaces mid-call failover at replay scale without dominating quality.
const MULTIPATH_MERGE: MergeConfig = MergeConfig {
    frames: 16,
    burst_len: 6.0,
    delay_rho: 0.5,
    death_prob: 0.01,
};

/// Folds bytes into an FNV-1a 64-bit accumulator.
fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Default for ReplayAggregate {
    fn default() -> Self {
        ReplayAggregate {
            calls: 0,
            direct: 0,
            bounce: 0,
            transit: 0,
            poor_rtt: 0,
            poor_loss: 0,
            poor_jitter: 0,
            poor_any: 0,
            sum_rtt_ms: 0.0,
            sum_loss_pct: 0.0,
            sum_jitter_ms: 0.0,
            digest: FNV_BASIS,
        }
    }
}

impl ReplayAggregate {
    /// Folds one call outcome in. Must be called in trace order — the
    /// digest is order-sensitive on purpose.
    fn update(&mut self, co: &CallOutcome, thresholds: &Thresholds) {
        self.calls += 1;
        if co.option == RelayOption::Direct {
            self.direct += 1;
        } else if co.option.is_bounce() {
            self.bounce += 1;
        } else {
            self.transit += 1;
        }
        let m = &co.metrics;
        let mut any = false;
        if thresholds.is_poor(m, Metric::Rtt) {
            self.poor_rtt += 1;
            any = true;
        }
        if thresholds.is_poor(m, Metric::Loss) {
            self.poor_loss += 1;
            any = true;
        }
        if thresholds.is_poor(m, Metric::Jitter) {
            self.poor_jitter += 1;
            any = true;
        }
        if any {
            self.poor_any += 1;
        }
        self.sum_rtt_ms += m.rtt_ms;
        self.sum_loss_pct += m.loss_pct;
        self.sum_jitter_ms += m.jitter_ms;
        let mut h = self.digest;
        h = fnv1a_fold(h, &co.call_index.to_le_bytes());
        h = fnv1a_fold(h, &co.option.stable_code().to_le_bytes());
        h = fnv1a_fold(h, &m.rtt_ms.to_bits().to_le_bytes());
        h = fnv1a_fold(h, &m.loss_pct.to_bits().to_le_bytes());
        h = fnv1a_fold(h, &m.jitter_ms.to_bits().to_le_bytes());
        self.digest = h;
    }

    /// The default-threshold PNR this aggregate counted.
    pub fn pnr(&self) -> PnrReport {
        let n = self.calls.max(1) as f64;
        PnrReport {
            calls: usize::try_from(self.calls).unwrap_or(usize::MAX),
            rtt: self.poor_rtt as f64 / n,
            loss: self.poor_loss as f64 / n,
            jitter: self.poor_jitter as f64 / n,
            any: self.poor_any as f64 / n,
        }
    }

    /// Mean of one metric across all calls.
    pub fn mean(&self, m: Metric) -> f64 {
        let n = self.calls.max(1) as f64;
        match m {
            Metric::Rtt => self.sum_rtt_ms / n,
            Metric::Loss => self.sum_loss_pct / n,
            Metric::Jitter => self.sum_jitter_ms / n,
        }
    }

    /// Fractions of calls sent direct / bounced / transited.
    pub fn option_mix(&self) -> (f64, f64, f64) {
        let n = self.calls.max(1) as f64;
        (
            self.direct as f64 / n,
            self.bounce as f64 / n,
            self.transit as f64 / n,
        )
    }

    /// Fraction of calls relayed (non-direct).
    pub fn relayed_fraction(&self) -> f64 {
        let n = self.calls.max(1) as f64;
        (self.bounce + self.transit) as f64 / n
    }
}

/// Per-run engine counters: throughput, shard utilization, and predictor-fit
/// latency. Carried on [`Outcome`] but **excluded from serialization** —
/// wall-clock readings and the resolved worker count vary across machines
/// and worker counts while the replay results must not, so summaries stay
/// byte-identical.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplayStats {
    /// Resolved worker count the run used.
    pub workers: usize,
    /// Control windows processed.
    pub windows: u64,
    /// Predictor refits performed at window barriers.
    pub predictor_fits: u64,
    /// Total wall-clock spent in predictor refits, milliseconds.
    pub predictor_fit_ms: f64,
    /// Wall-clock spent in the sequential budget-gate pass (building pair
    /// states and walking the window in trace order), milliseconds.
    pub gate_ms: f64,
    /// Wall-clock spent inside the parallel shard fork–join, milliseconds.
    pub shard_ms: f64,
    /// Wall-clock spent merging shard results back at the window barrier
    /// (outcomes, history cells, metric sinks), milliseconds.
    pub merge_ms: f64,
    /// Total wall-clock of the replay, milliseconds.
    pub wall_ms: f64,
    /// Calls replayed per second of wall-clock.
    pub calls_per_sec: f64,
    /// Unique segments the optional pre-replay warm pass enumerated and
    /// ensured were materialized (zero when [`ReplayConfig::warm`] is off).
    /// This is a pure function of the trace and config — deliberately *not*
    /// the number of segments freshly built, which depends on what earlier
    /// runs against the same world already cached and would make the
    /// counter differ between back-to-back runs on one simulator.
    pub warmed_segments: u64,
    /// Calls processed per worker slot, summed over windows (shard load).
    pub shard_calls: Vec<u64>,
    /// Bytes decoded from the backing trace source during a streamed run
    /// (header, framing, and payload); zero for materialized runs and
    /// non-file sources. With `wall_ms` this yields bytes-decoded/sec.
    pub bytes_decoded: u64,
}

impl ReplayStats {
    /// Shard load balance in `(0, 1]`: mean per-shard calls divided by the
    /// maximum (1.0 = perfectly even, small = one shard did all the work).
    pub fn shard_utilization(&self) -> f64 {
        let max = self.shard_calls.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean =
            self.shard_calls.iter().sum::<u64>() as f64 / self.shard_calls.len().max(1) as f64;
        mean / max as f64
    }

    /// One-line human-readable summary of the run's counters.
    pub fn summary(&self) -> String {
        let warm = if self.warmed_segments > 0 {
            format!(", {} segments pre-warmed", self.warmed_segments)
        } else {
            String::new()
        };
        format!(
            "{} workers, {} windows, {:.0} calls/s, shard utilization {:.2}, \
             {} predictor fits ({:.1} ms total), wall {:.1} ms \
             (gate {:.1} + shard {:.1} + merge {:.1} + refit {:.1}){warm}",
            self.workers,
            self.windows,
            self.calls_per_sec,
            self.shard_utilization(),
            self.predictor_fits,
            self.predictor_fit_ms,
            self.wall_ms,
            self.gate_ms,
            self.shard_ms,
            self.merge_ms,
            self.predictor_fit_ms
        )
    }
}

/// Outcome of a whole replay run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// Strategy display name.
    pub strategy: String,
    /// Objective metric the run optimized.
    pub objective: Metric,
    /// Per-call outcomes, in trace order. Empty when
    /// [`ReplayConfig::collect_calls`] is off — use [`Outcome::aggregate`].
    pub calls: Vec<CallOutcome>,
    /// Sequential-merge aggregate over every replayed call (PNR counters,
    /// option mix, metric sums, order-sensitive digest). Always populated,
    /// and byte-identical across worker counts and across the streamed and
    /// materialized engines.
    pub aggregate: ReplayAggregate,
    /// Controller round-trips (equals the call count unless a client-side
    /// decision cache absorbed some — the §7 scalability lever).
    pub controller_contacts: u64,
    /// Parallel setup probes issued by hybrid racing (zero otherwise).
    pub race_probes: u64,
    /// Engine counters (wall-clock, shard load); not serialized so that
    /// summaries are a pure function of the config.
    #[serde(skip)]
    pub stats: ReplayStats,
    /// Observability snapshot, present when [`ReplayConfig::metrics`] was
    /// set. Excluded from the serialized outcome so result summaries stay
    /// byte-stable; serialize the snapshot itself to persist it (its
    /// deterministic core is worker-count invariant, see
    /// [`MetricsSnapshot`]).
    #[serde(skip)]
    pub obs: Option<MetricsSnapshot>,
}

impl Outcome {
    /// PNR report over all calls.
    pub fn pnr(&self, thresholds: &Thresholds) -> PnrReport {
        PnrReport::from_calls(self.calls.iter().map(|c| &c.metrics), thresholds)
    }

    /// Fraction of calls with at least one poor metric.
    pub fn pnr_any(&self, thresholds: &Thresholds) -> f64 {
        self.pnr(thresholds).any
    }

    /// Values of one metric across calls (for percentile analysis).
    pub fn metric_values(&self, m: Metric) -> Vec<f64> {
        self.calls.iter().map(|c| c.metrics[m]).collect()
    }

    /// Fractions of calls sent direct / bounced / transited (§5.2 reports
    /// 8 % / 54 % / 38 % for VIA).
    pub fn option_mix(&self) -> (f64, f64, f64) {
        let n = self.calls.len().max(1) as f64;
        let direct = self
            .calls
            .iter()
            .filter(|c| c.option == RelayOption::Direct)
            .count();
        let bounce = self.calls.iter().filter(|c| c.option.is_bounce()).count();
        let transit = self.calls.iter().filter(|c| c.option.is_transit()).count();
        (direct as f64 / n, bounce as f64 / n, transit as f64 / n)
    }

    /// Fraction of calls relayed (non-direct); zero for an empty outcome.
    pub fn relayed_fraction(&self) -> f64 {
        if self.calls.is_empty() {
            return 0.0;
        }
        let (direct, _, _) = self.option_mix();
        1.0 - direct
    }

    /// PNR over a subset of calls selected by a predicate on the trace
    /// record (e.g. international-only for Figure 13).
    pub fn pnr_where(
        &self,
        trace: &Trace,
        thresholds: &Thresholds,
        pred: impl Fn(&CallRecord) -> bool,
    ) -> PnrReport {
        PnrReport::from_calls(
            self.calls
                .iter()
                .filter(|c| pred(&trace.records[c.call_index as usize]))
                .map(|c| &c.metrics),
            thresholds,
        )
    }
}

/// Per-(pair, window) VIA state: the pruned candidates and their bandit.
struct PairState {
    bandit: UcbBandit,
    /// Predicted mean of the best option (for budget benefit computation).
    best_mean: f64,
    /// Predicted mean of the direct path.
    direct_mean: f64,
    /// Confidence-interval widths (`upper - lower`) of the selected arms,
    /// recorded once per (pair, window) into the obs layer. Empty when the
    /// state was built without a predictor.
    ci_widths: Vec<f64>,
}

/// One decision key's work within a window: its calls (batch-relative
/// indices, in order) plus the state handed to whichever shard owns the
/// pair.
struct PairGroup {
    pair: KeyPair,
    /// Spatial keys in the orientation of the pair's first call (the state
    /// exemplar, matching the lazily-built state of the sequential engine).
    ka: u32,
    kb: u32,
    /// Batch-relative indices of the pair's calls this window, ascending.
    calls: Vec<usize>,
    /// Pre-built state (budget strategies build eagerly for the gate pass).
    state: Option<PairState>,
    /// Incoming §7 decision-cache entry, if any.
    cached: Option<(RelayOption, SimTime)>,
}

/// What one shard hands back at the window barrier.
struct ShardResult {
    /// (batch-relative index, outcome) for every call the shard carried.
    outcomes: Vec<(usize, CallOutcome)>,
    /// Local history (disjoint cells: a pair lives on exactly one shard).
    history: CallHistory,
    /// Demand exemplars observed (pair → first call's AS endpoints).
    demands: Vec<(KeyPair, (AsId, AsId))>,
    /// §7 decision-cache entries written this window.
    cache_updates: Vec<(KeyPair, (RelayOption, SimTime))>,
    /// Controller round-trips (cache misses) on this shard.
    contacts: u64,
    /// Hybrid-racing setup probes issued on this shard.
    race_probes: u64,
}

/// Worker-local scratch buffers, one per shard: candidate enumeration,
/// option staging, and top-k scoring reuse these across every call the
/// shard carries, so the steady-state decision loop performs no heap
/// allocation.
#[derive(Default)]
struct Scratch {
    /// Candidate options of the call under consideration.
    cand: Vec<RelayOption>,
    /// Ranking buffers for the world's candidate enumeration.
    topo: via_netsim::CandidateScratch,
    /// Staging for option subsets (racing set, exploration draw).
    staged: Vec<RelayOption>,
    /// Scored candidates of the pair state under construction.
    scored: Vec<ScoredOption>,
    /// Sort permutation for `top_k_into`.
    order: Vec<usize>,
    /// Top-k selection output.
    selected: Vec<ScoredOption>,
    /// Multipath decision: the selected path set, primary first.
    set: Vec<RelayOption>,
    /// Per-path CRN realizations of the current multipath set.
    set_specs: Vec<PathSpec>,
    /// Per-path metric triples (parallel to `set`) for semi-bandit feedback.
    set_metrics: Vec<PathMetrics>,
    /// Receiver-side merge buffers, reused across calls.
    merge_buf: MergeScratch,
}

/// Slot indices of the per-call hot-path metrics, registered once per run.
/// Recording through these is a plain indexed `u64` bump (counters) or a
/// LUT-bucketed record (histograms) — no name lookups, no branch on the
/// metrics flag: shards always record into their [`HotSink`] and the window
/// barrier folds it into the run sink only when metrics are enabled.
struct HotIds {
    schema: via_obs::HotSchema,
    calls: usize,
    opt_direct: usize,
    opt_bounce: usize,
    opt_transit: usize,
    oracle_evals: usize,
    explore_epsilon: usize,
    bandit_pulls: usize,
    cache_hits: usize,
    cache_misses: usize,
    race_probes: usize,
    multipath_extra_paths: usize,
    multipath_dedup_drops: usize,
    multipath_failovers: usize,
    rtt: usize,
    mos_delta: usize,
    regret: usize,
    ci_width: usize,
}

impl HotIds {
    fn new() -> HotIds {
        let mut schema = via_obs::HotSchema::new();
        HotIds {
            calls: schema.counter("replay_calls_total"),
            opt_direct: schema.counter("replay_option_direct_total"),
            opt_bounce: schema.counter("replay_option_bounce_total"),
            opt_transit: schema.counter("replay_option_transit_total"),
            oracle_evals: schema.counter("replay_oracle_evals_total"),
            explore_epsilon: schema.counter("replay_explore_epsilon_total"),
            bandit_pulls: schema.counter("replay_bandit_pulls_total"),
            cache_hits: schema.counter("replay_cache_hits_total"),
            cache_misses: schema.counter("replay_cache_misses_total"),
            race_probes: schema.counter("replay_race_probes_total"),
            multipath_extra_paths: schema.counter("replay_multipath_extra_paths_total"),
            multipath_dedup_drops: schema.counter("replay_multipath_dedup_drops_total"),
            multipath_failovers: schema.counter("replay_multipath_failovers_total"),
            rtt: schema.histogram("replay_call_rtt_ms", via_obs::LATENCY_MS),
            mos_delta: schema.histogram("replay_mos_delta", via_obs::MOS_DELTA),
            regret: schema.histogram("replay_bandit_regret", via_obs::REGRET),
            ci_width: schema.histogram("replay_predictor_ci_width", via_obs::CI_WIDTH),
            schema,
        }
    }
}

/// Per-worker state that survives across window barriers: the hot metric
/// sink (folded and cleared at each barrier) and the scoring/sampling
/// scratch buffers. Slot `i` always serves shard `i`, so the fold order at
/// the barrier is the fixed shard-index order.
struct WorkerSlot {
    hot: via_obs::HotSink,
    scratch: Scratch,
    sample: via_netsim::SampleScratch,
}

impl WorkerSlot {
    fn new(ids: &HotIds) -> WorkerSlot {
        WorkerSlot {
            hot: ids.schema.make_sink(),
            scratch: Scratch::default(),
            sample: via_netsim::SampleScratch::new(),
        }
    }
}

/// All mutable engine state that survives across window barriers: built by
/// `engine_start`, advanced by `engine_window` once per control window, and
/// folded into an [`Outcome`] by `engine_finish`. The materialized
/// [`ReplaySim::run`] and the streamed [`ReplaySim::run_stream`] drivers
/// share this state machine verbatim — that shared core is what makes their
/// results byte-identical.
struct EngineState {
    t_run: Stopwatch,
    /// Sequential-side metric sink; workers get their own (merged at the
    /// barrier). None when metrics are off, so the hot path records nothing.
    obs: Option<MetricSink>,
    workers: usize,
    pred_cfg: PredictorConfig,
    history: CallHistory,
    predictor: Option<Predictor>,
    budget_gate: Option<BudgetGate>,
    /// FCFS counters for the budget-unaware variant.
    fcfs_relayed: u64,
    fcfs_total: u64,
    /// §7 client-side decision cache: pair → (option, expiry). Persists
    /// across windows; shards read a snapshot and return their writes.
    decision_cache: HashMap<KeyPair, (RelayOption, SimTime)>,
    controller_contacts: u64,
    /// §7 hybrid racing overhead: parallel setup probes issued.
    race_probes: u64,
    /// Demand observed in the current window: key pair → exemplar AS
    /// endpoints (used by the active-measurement planner at the next window
    /// boundary).
    demands: HashMap<KeyPair, (AsId, AsId)>,
    stats: ReplayStats,
    /// Fixed per-worker slots: hot metric sinks plus scoring/sampling
    /// scratch, allocated once and reused by every window's fork–join (slot
    /// i always serves shard i).
    hot_ids: HotIds,
    worker_slots: Vec<WorkerSlot>,
    /// Per-call outcomes, populated only when `collect_calls` is on.
    outcomes: Vec<CallOutcome>,
    /// Running trace-order aggregate — always populated.
    aggregate: ReplayAggregate,
    thresholds: Thresholds,
    /// Built once per run: the controller's static knowledge (geography and
    /// inter-relay metrics) does not change across windows.
    prior: GeoPrior,
    backbone_table: std::sync::Arc<Vec<PathMetrics>>,
}

/// The replay simulator.
pub struct ReplaySim<'a> {
    world: &'a World,
    /// The materialized trace, present for [`ReplaySim::new`] construction;
    /// `None` for [`ReplaySim::streaming`], where records arrive through a
    /// [`RecordSource`] instead.
    trace: Option<&'a Trace>,
    cfg: ReplayConfig,
    /// Hoisted `seed::derive(cfg.seed, "realize")`: the label fold costs one
    /// mix round per byte and the realization stream is derived per call ×
    /// option, so the base is computed once here and mixed with
    /// [`seed::derive_indexed_from`] on the hot path (bit-identical seeds).
    realize_base: u64,
    /// Hoisted `seed::derive(cfg.seed, "call")`, same reasoning.
    call_base: u64,
}

impl<'a> ReplaySim<'a> {
    /// Creates a simulator over a world and its materialized trace.
    pub fn new(world: &'a World, trace: &'a Trace, cfg: ReplayConfig) -> Self {
        // The verdict is cached on the trace (one O(n) scan per trace, not
        // per run); the streamed path validates incrementally instead.
        debug_assert!(
            trace.is_chronological(),
            "replay requires a chronological trace"
        );
        let realize_base = seed::derive(cfg.seed, "realize");
        let call_base = seed::derive(cfg.seed, "call");
        Self {
            world,
            trace: Some(trace),
            cfg,
            realize_base,
            call_base,
        }
    }

    /// Creates a simulator for source-backed replay ([`ReplaySim::run_stream`]):
    /// no materialized trace exists, records arrive window by window.
    pub fn streaming(world: &'a World, cfg: ReplayConfig) -> Self {
        let realize_base = seed::derive(cfg.seed, "realize");
        let call_base = seed::derive(cfg.seed, "call");
        Self {
            world,
            trace: None,
            cfg,
            realize_base,
            call_base,
        }
    }

    /// The replay configuration.
    pub fn config(&self) -> &ReplayConfig {
        &self.cfg
    }

    /// Candidate options for an AS pair, honoring the relay-fleet
    /// restriction and the transit toggle. Allocating form for cold paths
    /// (budget gate pass, oracle, active probes); the per-call hot path uses
    /// [`ReplaySim::candidates_into`] with worker-local scratch instead.
    fn candidates_for(&self, src: AsId, dst: AsId) -> Vec<RelayOption> {
        let mut scratch = Scratch::default();
        self.candidates_for_into(src, dst, &mut scratch);
        std::mem::take(&mut scratch.cand)
    }

    /// Candidate options for a call.
    fn candidates(&self, call: &CallRecord) -> Vec<RelayOption> {
        self.candidates_for(call.src_as, call.dst_as)
    }

    /// Fills `scratch.cand` with the candidate options for an AS pair
    /// without allocating (beyond the buffers' first growth). Content and
    /// order are identical to [`ReplaySim::candidates_for`].
    fn candidates_for_into(&self, src: AsId, dst: AsId, scratch: &mut Scratch) {
        self.world
            .candidate_options_into(src, dst, &mut scratch.topo, &mut scratch.cand);
        let opts = &mut scratch.cand;
        if !self.cfg.allow_transit {
            opts.retain(|o| !o.is_transit());
        }
        if let Some(allowed) = &self.cfg.allowed_relays {
            opts.retain(|o| o.relays().iter().all(|r| allowed.contains(r)));
            if opts.is_empty() {
                opts.push(RelayOption::Direct);
            }
        }
    }

    /// Fills `scratch.cand` with a call's candidate options.
    fn candidates_into(&self, call: &CallRecord, scratch: &mut Scratch) {
        self.candidates_for_into(call.src_as, call.dst_as, scratch);
    }

    /// The pre-replay warm pass: enumerates every segment reachable from the
    /// trace (unique AS pairs × their candidate options) and materializes the
    /// segment latents in parallel, so the replay loop itself never takes a
    /// first-touch write lock. Returns `(enumerated, built)`: the unique
    /// segments enumerated (a pure function of trace and config) and how
    /// many of them were freshly built (depends on what earlier runs
    /// already cached — wall-clock-ish, never reported deterministically).
    /// Purely an initialization-cost move — segment latents are a pure
    /// function of the world seed, so results are identical with or without
    /// warming.
    fn warm_world(&self, trace: &Trace, workers: usize) -> (u64, u64) {
        let records = &trace.records;
        let mut seen_pairs = std::collections::HashSet::new();
        let mut pairs: Vec<(AsId, AsId)> = Vec::new();
        for r in records {
            if seen_pairs.insert((r.src_as, r.dst_as)) {
                pairs.push((r.src_as, r.dst_as));
            }
        }
        let mut seen_segs = std::collections::HashSet::new();
        let mut segs: Vec<via_netsim::Segment> = Vec::new();
        let mut scratch = Scratch::default();
        for &(src, dst) in &pairs {
            self.candidates_for_into(src, dst, &mut scratch);
            for &opt in &scratch.cand {
                let path = self.world.perf().segments_of(src, dst, opt);
                for &seg in path.segments() {
                    if seen_segs.insert(seg) {
                        segs.push(seg);
                    }
                }
            }
        }
        let n = segs.len();
        let chunk = n.div_ceil(workers.max(1)).max(1);
        let tasks: Vec<Vec<via_netsim::Segment>> = segs.chunks(chunk).map(<[_]>::to_vec).collect();
        let built = crate::par::par_run(workers, tasks, |chunk| self.world.perf().warm(chunk))
            .into_iter()
            .sum();
        (n as u64, built)
    }

    /// Realizes a call over an option with common random numbers: the seed
    /// derivation depends only on `(call, option)`, so the draws are
    /// bit-identical however often and wherever the realization happens.
    /// The scratch memoizes segment means shared between the options a call
    /// evaluates at one instant (chosen vs. direct baseline, racing sets).
    fn realize_with(
        &self,
        call: &CallRecord,
        option: RelayOption,
        sample: &mut via_netsim::SampleScratch,
    ) -> PathMetrics {
        let mut rng = StdRng::seed_from_u64(self.realize_stream(call, option));
        let path = self.world.perf().sample_option_scratch(
            call.src_as,
            call.dst_as,
            option,
            call.t,
            &mut rng,
            sample,
        );
        call.access_extra.apply(&path)
    }

    /// Realization stream seed for `(call, option)` — `derive_indexed(seed,
    /// "realize", …)` with the label fold hoisted into `realize_base`.
    fn realize_stream(&self, call: &CallRecord, option: RelayOption) -> u64 {
        seed::derive_indexed_from(
            self.realize_base,
            (u64::from(call.id.0) << 34) ^ option.stable_code(),
        )
    }

    /// Realizes a call over `option` together with a common-random-numbers
    /// direct-path baseline, from the *same* realization stream and the same
    /// noise draws (see [`via_netsim::PerfModel::sample_option_paired_scratch`]).
    /// The first result is bit-identical to [`ReplaySim::realize_with`] for
    /// `option`; the second is the direct path under the call's own luck —
    /// the MOS-delta baseline, at the cost of stack math over `parts` only.
    /// `parts` must cover `(call.src_as, call.dst_as, call.t.day())` for the
    /// direct path — the shard loop caches it per pair group so the baseline
    /// never touches a memo map on the per-call path.
    fn realize_paired(
        &self,
        call: &CallRecord,
        option: RelayOption,
        parts: &via_netsim::PathDayParts,
        sample: &mut via_netsim::SampleScratch,
    ) -> (PathMetrics, PathMetrics) {
        let mut rng = StdRng::seed_from_u64(self.realize_stream(call, option));
        let (chosen, direct) = self.world.perf().sample_option_paired_from_parts(
            call.src_as,
            call.dst_as,
            option,
            parts,
            call.t,
            &mut rng,
            sample,
        );
        (
            call.access_extra.apply(&chosen),
            call.access_extra.apply(&direct),
        )
    }

    /// Per-call decision RNG, derived from the call's trace index: the
    /// stream a call sees is independent of every other call, so decisions
    /// are identical no matter which shard (or how many shards) carried it.
    fn call_rng(&self, call: &CallRecord) -> StdRng {
        StdRng::seed_from_u64(seed::derive_indexed_from(
            self.call_base,
            u64::from(call.id.0),
        ))
    }

    /// Ground-truth best option for the oracle, per (pair, window). The
    /// candidate scan shares segment means through `sample` — one (pair,
    /// window) evaluation touches each distinct segment once instead of per
    /// option.
    fn oracle_choice(
        &self,
        call: &CallRecord,
        window: Window,
        scratch: &mut Scratch,
        sample: &mut via_netsim::SampleScratch,
    ) -> RelayOption {
        let t_eval = window.start() + window.len.secs() / 2;
        let mut best = (f64::INFINITY, RelayOption::Direct);
        self.candidates_into(call, scratch);
        for &opt in &scratch.cand {
            let m = self.world.perf().option_mean_scratch(
                call.src_as,
                call.dst_as,
                opt,
                t_eval,
                sample,
            );
            let v = m[self.cfg.objective];
            if v < best.0 {
                best = (v, opt);
            }
        }
        best.1
    }

    /// Builds the engine state shared by both replay drivers — everything
    /// the per-run setup does before the first window.
    fn engine_start(&self, kind: StrategyKind) -> EngineState {
        // Wall-clock (via the via-obs facade) feeds ReplayStats and the obs
        // timing layer only — both excluded from serialized summaries.
        let t_run = Stopwatch::started();
        let obs: Option<MetricSink> = self.cfg.metrics.then(MetricSink::with_timing);
        let workers = crate::par::resolve_workers(self.cfg.workers);
        let mut pred_cfg = self.cfg.predictor;
        pred_cfg.workers = workers;
        pred_cfg.tomography.workers = workers;
        let budget_gate = match kind {
            StrategyKind::ViaBudgeted { budget } => Some(BudgetGate::new(budget)),
            // An unbudgeted multipath run (budget = 1.0) carries no gate at
            // all, so its window pass — and its metrics snapshot — stays
            // byte-identical to plain Via at k = 1.
            StrategyKind::Multipath { budget, .. } if budget < 1.0 => Some(BudgetGate::new(budget)),
            _ => None,
        };
        let stats = ReplayStats {
            workers,
            shard_calls: vec![0; workers],
            ..ReplayStats::default()
        };
        let hot_ids = HotIds::new();
        let worker_slots: Vec<WorkerSlot> =
            (0..workers).map(|_| WorkerSlot::new(&hot_ids)).collect();
        let prior = GeoPrior::new(
            self.cfg.granularity.key_positions(self.world),
            self.world.relays.iter().map(|r| r.pos).collect(),
        );
        let backbone_table = self.backbone_table();
        EngineState {
            t_run,
            obs,
            workers,
            pred_cfg,
            history: CallHistory::new(),
            predictor: None,
            budget_gate,
            fcfs_relayed: 0,
            fcfs_total: 0,
            decision_cache: HashMap::new(),
            controller_contacts: 0,
            race_probes: 0,
            demands: HashMap::new(),
            stats,
            hot_ids,
            worker_slots,
            outcomes: Vec::new(),
            aggregate: ReplayAggregate::default(),
            thresholds: Thresholds::default(),
            prior,
            backbone_table,
        }
    }

    /// Runs one strategy over the whole materialized trace.
    ///
    /// # Panics
    /// If the simulator was built with [`ReplaySim::streaming`] — streamed
    /// sims replay through [`ReplaySim::run_stream`].
    pub fn run(&mut self, kind: StrategyKind) -> Outcome {
        let Some(trace) = self.trace else {
            panic!("ReplaySim::run needs a materialized trace; use run_stream on a streaming sim")
        };
        let mut st = self.engine_start(kind);
        if self.cfg.warm {
            let t_warm = Stopwatch::started();
            let (enumerated, _built) = self.warm_world(trace, st.workers);
            st.stats.warmed_segments = enumerated;
            if let Some(sink) = st.obs.as_mut() {
                sink.inc("replay_warm_segments_total", enumerated);
                sink.time("replay.warm", t_warm);
            }
        }
        if self.cfg.collect_calls {
            st.outcomes.reserve(trace.len());
        }
        let records = &trace.records;
        let n = records.len();
        let mut start = 0usize;
        while start < n {
            // ---- window boundary: the barrier ------------------------------
            let window = self.cfg.window.window_of(records[start].t);
            let mut end = start + 1;
            while end < n && self.cfg.window.window_of(records[end].t) == window {
                end += 1;
            }
            self.engine_window(&mut st, kind, window, &records[start..end]);
            start = end;
        }
        self.engine_finish(st, kind)
    }

    /// Streamed replay: records arrive from a [`RecordSource`], re-windowed
    /// by a [`WindowStream`] on a producer thread that prefetches the next
    /// window while the engine replays the current one (spent batch buffers
    /// are recycled back to the producer). One window is resident in the
    /// engine while a bounded handful more sit in the prefetch queue, so
    /// peak memory is independent of trace length. Results are
    /// byte-identical to [`ReplaySim::run`] over the materialized
    /// equivalent, at every worker count.
    ///
    /// # Errors
    /// Any decode or chronology error surfaced by the source; the engine
    /// stops at the first bad window.
    pub fn run_stream<S>(&self, source: S, kind: StrategyKind) -> Result<Outcome, StreamError>
    where
        S: RecordSource + Send,
    {
        let mut st = self.engine_start(kind);
        if self.cfg.collect_calls {
            if let Some(n) = source.size_hint() {
                st.outcomes.reserve(usize::try_from(n).unwrap_or(0));
            }
        }
        let mut stream = WindowStream::new(source, self.cfg.window);
        let bytes = std::thread::scope(|scope| -> Result<u64, StreamError> {
            // Bounded prefetch: at most two windows queued ahead of the one
            // being replayed. The recycle channel hands spent batch buffers
            // back to the producer for reuse.
            let (tx, rx) = std::sync::mpsc::sync_channel::<Result<WindowBatch, StreamError>>(2);
            let (recycle_tx, recycle_rx) = std::sync::mpsc::channel::<WindowBatch>();
            let producer = scope.spawn(move || {
                loop {
                    match stream.next_batch() {
                        Ok(Some(batch)) => {
                            if tx.send(Ok(batch)).is_err() {
                                break; // consumer bailed on an earlier error
                            }
                            while let Ok(spent) = recycle_rx.try_recv() {
                                stream.recycle(spent);
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            break;
                        }
                    }
                }
                stream
            });
            let mut first_err = None;
            for item in rx {
                match item {
                    Ok(batch) => {
                        self.engine_window(&mut st, kind, batch.window, &batch.records);
                        let _ = recycle_tx.send(batch);
                    }
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            drop(recycle_tx);
            let stream = match producer.join() {
                Ok(s) => s,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            match first_err {
                Some(e) => Err(e),
                None => Ok(stream.source().bytes_read()),
            }
        })?;
        st.stats.bytes_decoded = bytes;
        Ok(self.engine_finish(st, kind))
    }

    /// Advances the engine by one control window. `batch` holds the window's
    /// calls in chronological order; every index inside is batch-relative, so
    /// the caller may hand over a slice of a materialized trace or a streamed
    /// batch interchangeably.
    fn engine_window(
        &self,
        st: &mut EngineState,
        kind: StrategyKind,
        window: Window,
        batch: &[CallRecord],
    ) {
        let EngineState {
            obs,
            workers,
            pred_cfg,
            history,
            predictor,
            budget_gate,
            fcfs_relayed,
            fcfs_total,
            decision_cache,
            controller_contacts,
            race_probes,
            demands,
            stats,
            hot_ids,
            worker_slots,
            outcomes,
            aggregate,
            thresholds,
            prior,
            backbone_table,
            ..
        } = st;
        let workers = *workers;
        let pred_cfg = *pred_cfg;
        let hot_ids: &HotIds = hot_ids;
        let objective = self.cfg.objective;
        stats.windows += 1;
        let t_window = Stopwatch::started();

        if kind.uses_history() {
            let t_fit = Stopwatch::started();
            let fits_before = stats.predictor_fits;
            let fit_predictor = |history: &CallHistory| {
                window.prev().map(|prev| {
                    Predictor::fit(
                        history,
                        prev,
                        prior.clone(),
                        Self::backbone_fn_from(backbone_table.clone()),
                        pred_cfg,
                    )
                })
            };
            *predictor = fit_predictor(history);
            stats.predictor_fits += 1;

            // §7 active measurements: probe tomography holes for the
            // pairs that carried traffic last window, fold the mock
            // calls into the training window, and refit.
            if self.cfg.active_probes_per_window > 0 {
                if let (Some(pred), Some(prev)) = (predictor.as_ref(), window.prev()) {
                    let mut demand_list: Vec<(u32, u32, Vec<RelayOption>)> = demands
                        .iter()
                        .map(|(kp, &(sa, sb))| (kp.lo, kp.hi, self.candidates_for(sa, sb)))
                        .collect();
                    demand_list.sort_by_key(|d| (d.0, d.1));
                    let plan = crate::active::plan_probes(
                        &demand_list,
                        pred,
                        self.cfg.active_probes_per_window,
                    );
                    if !plan.is_empty() {
                        let mut probe_rng = StdRng::seed_from_u64(seed::derive_indexed(
                            self.cfg.seed,
                            "active-probes",
                            window.index,
                        ));
                        for probe in plan {
                            let kp = KeyPair::new(probe.a, probe.b);
                            let Some(&(sa, sb)) = demands.get(&kp) else {
                                continue;
                            };
                            let m = self.world.perf().sample_option(
                                sa,
                                sb,
                                probe.option,
                                window.start(),
                                &mut probe_rng,
                            );
                            history.record(prev, kp, probe.option, &m);
                        }
                        *predictor = fit_predictor(history);
                        stats.predictor_fits += 1;
                    }
                }
            }
            demands.clear();

            if predictor.is_none() {
                *predictor = Some(Predictor::cold(
                    prior.clone(),
                    Self::backbone_fn_from(backbone_table.clone()),
                    pred_cfg,
                ));
            }
            // The controller only ever trains on the last window.
            history.prune_before(window.index.saturating_sub(1));
            stats.predictor_fit_ms += t_fit.elapsed_ms();
            if let Some(sink) = obs.as_mut() {
                let fits = stats.predictor_fits - fits_before;
                sink.inc("replay_predictor_fits_total", fits);
                let (cells, segs) = predictor.as_ref().map_or((0, 0), |p| {
                    (p.empirical_cells() as u64, p.tomography_segments() as u64)
                });
                sink.span(
                    "replay.refit",
                    window.index,
                    &[
                        ("fits", fits),
                        ("history_cells", cells),
                        ("tomography_segments", segs),
                    ],
                );
                sink.time("replay.refit", t_fit);
            }
        }

        // ---- group the window's calls by decision key ------------------
        let mut slot_of_pair: HashMap<KeyPair, usize> = HashMap::new();
        let mut groups: Vec<PairGroup> = Vec::new();
        let mut slot_of_call: Vec<usize> = Vec::with_capacity(batch.len());
        for (i, call) in batch.iter().enumerate() {
            let ka = self
                .cfg
                .granularity
                .key_of(self.world, call.src_as, call.caller.0);
            let kb = self
                .cfg
                .granularity
                .key_of(self.world, call.dst_as, call.callee.0);
            let pair = KeyPair::new(ka, kb);
            let slot = *slot_of_pair.entry(pair).or_insert_with(|| {
                groups.push(PairGroup {
                    pair,
                    ka,
                    kb,
                    calls: Vec::new(),
                    state: None,
                    cached: decision_cache.get(&pair).copied(),
                });
                groups.len() - 1
            });
            groups[slot].calls.push(i);
            slot_of_call.push(slot);
        }

        // ---- budget gate pass (sequential, O(1) per call) --------------
        // The gate is global sequential state, but a call's predicted
        // benefit is fixed per (pair, window) — it never depends on how
        // the bandit evolves within the window. So the states are built
        // in parallel, the gate walks the window in trace order once,
        // and the per-call verdicts ride into the shards as plain flags.
        let t_gate = Stopwatch::started();
        let wants_gate = matches!(
            kind,
            StrategyKind::ViaBudgeted { .. } | StrategyKind::ViaBudgetUnaware { .. }
        ) || matches!(kind, StrategyKind::Multipath { budget, .. } if budget < 1.0);
        let gated: Option<Vec<bool>> = if !wants_gate {
            None
        } else {
            {
                predictor.as_ref().map(|pred| {
                    let built: Vec<Option<PairState>> =
                        crate::par::par_map(workers, &groups, |_, g| {
                            g.calls.first().map(|&i| {
                                let call = &batch[i];
                                Self::build_pair_state(
                                    pred,
                                    g.ka,
                                    g.kb,
                                    &self.candidates(call),
                                    kind,
                                    objective,
                                )
                            })
                        });
                    let mut flags = Vec::with_capacity(batch.len());
                    for &slot in &slot_of_call {
                        let benefit = built[slot]
                            .as_ref()
                            .map_or(0.0, |st| st.direct_mean - st.best_mean);
                        let gated_direct = match kind {
                            StrategyKind::ViaBudgeted { .. } => {
                                budget_gate.as_mut().is_some_and(|gate| {
                                    let admitted = gate.admit(benefit);
                                    gate.validate();
                                    !admitted
                                })
                            }
                            StrategyKind::Multipath { k, mode, .. } => {
                                budget_gate.as_mut().is_some_and(|gate| {
                                    // Duplicated traffic is charged honestly
                                    // (§4.6 extended): a relayed duplicate
                                    // call sends every packet down k paths,
                                    // so it costs k× against the cap;
                                    // striping splits one stream at 1×.
                                    let cost = match mode {
                                        MultipathMode::Duplicate => k.max(1) as u64,
                                        MultipathMode::Stripe => 1,
                                    };
                                    let admitted = gate.admit_cost(benefit, cost);
                                    gate.validate();
                                    !admitted
                                })
                            }
                            _ => {
                                // ViaBudgetUnaware: FCFS under a hard cap.
                                let budget = match kind {
                                    StrategyKind::ViaBudgetUnaware { budget } => budget,
                                    _ => 0.0,
                                };
                                *fcfs_total += 1;
                                let frac = *fcfs_relayed as f64 / (*fcfs_total).max(1) as f64;
                                if benefit > 0.0 && frac < budget {
                                    *fcfs_relayed += 1;
                                    false
                                } else {
                                    true
                                }
                            }
                        };
                        flags.push(gated_direct);
                    }
                    for (g, st) in groups.iter_mut().zip(built) {
                        g.state = st;
                    }
                    flags
                })
            }
        };
        stats.gate_ms += t_gate.elapsed_ms();
        // Gate verdicts are produced by the sequential pass above, so
        // the admit/deny counts are worker-count invariant by
        // construction (flags[i] == true means "forced direct").
        let (gate_admitted, gate_denied) = gated.as_ref().map_or((0, 0), |flags| {
            let denied = flags.iter().filter(|f| **f).count() as u64;
            (flags.len() as u64 - denied, denied)
        });
        if let Some(sink) = obs.as_mut() {
            if gated.is_some() {
                sink.inc("replay_gate_admitted_total", gate_admitted);
                sink.inc("replay_gate_denied_total", gate_denied);
            }
            sink.time("replay.gate", t_gate);
        }
        let n_groups = groups.len() as u64;

        // ---- shard assignment: LPT by per-pair call count --------------
        let nshards = workers.min(groups.len()).max(1);
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&s| (std::cmp::Reverse(groups[s].calls.len()), groups[s].pair));
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        let mut loads = vec![0usize; nshards];
        for slot in order {
            let dest = (0..nshards).min_by_key(|&i| (loads[i], i)).unwrap_or(0);
            loads[dest] += groups[slot].calls.len();
            assignment[dest].push(slot);
        }
        let mut group_cells: Vec<Option<PairGroup>> = groups.into_iter().map(Some).collect();
        let tasks: Vec<Vec<PairGroup>> = assignment
            .iter()
            .map(|slots| {
                slots
                    .iter()
                    .filter_map(|&s| group_cells[s].take())
                    .collect()
            })
            .collect();

        // ---- parallel shard processing ---------------------------------
        let gated_ref = gated.as_deref();
        let pred_ref = predictor.as_ref();
        let t_shard = Stopwatch::started();
        let shard_results: Vec<ShardResult> =
            crate::par::par_run_with(workers, tasks, worker_slots, |task, slot| {
                self.process_shard(
                    kind, window, pred_ref, gated_ref, batch, task, hot_ids, slot,
                )
            });
        stats.shard_ms += t_shard.elapsed_ms();

        // ---- deterministic merge back into trace order -----------------
        let t_merge = Stopwatch::started();
        let mut window_out: Vec<Option<CallOutcome>> = vec![None; batch.len()];
        for (shard_idx, res) in shard_results.into_iter().enumerate() {
            stats.shard_calls[shard_idx] += res.outcomes.len() as u64;
            // Fold the shard's hot sink first (fixed shard-index order;
            // the deterministic core is order-independent anyway), then
            // reset the slot for the next window.
            if let Some(sink) = obs.as_mut() {
                sink.fold_hot(&hot_ids.schema, &worker_slots[shard_idx].hot);
            }
            worker_slots[shard_idx].hot.clear();
            for (i, co) in res.outcomes {
                window_out[i] = Some(co);
            }
            if kind.uses_history() {
                history.merge(res.history);
                for (p, ex) in res.demands {
                    demands.entry(p).or_insert(ex);
                }
            }
            for (p, entry) in res.cache_updates {
                decision_cache.insert(p, entry);
            }
            *controller_contacts += res.contacts;
            *race_probes += res.race_probes;
        }
        stats.merge_ms += t_merge.elapsed_ms();
        // Fold the window's outcomes into the running aggregate in trace
        // order (the digest is order-sensitive); materialize them only
        // when the config asks for per-call outcomes.
        let mut filled = 0usize;
        for co in window_out.into_iter().flatten() {
            aggregate.update(&co, thresholds);
            if self.cfg.collect_calls {
                outcomes.push(co);
            }
            filled += 1;
        }
        assert_eq!(
            filled,
            batch.len(),
            "every call in the window must yield exactly one outcome"
        );
        if let Some(sink) = obs.as_mut() {
            sink.inc("replay_windows_total", 1);
            sink.inc("replay_pair_groups_total", n_groups);
            sink.time("replay.shard", t_shard);
            sink.time("replay.merge", t_merge);
            sink.span(
                "replay.window",
                window.index,
                &[
                    ("calls", batch.len() as u64),
                    ("pairs", n_groups),
                    ("gate_admitted", gate_admitted),
                    ("gate_denied", gate_denied),
                ],
            );
            sink.time("replay.window", t_window);
        }
    }

    /// Folds the engine state into the run's [`Outcome`].
    fn engine_finish(&self, st: EngineState, kind: StrategyKind) -> Outcome {
        let EngineState {
            t_run,
            obs,
            mut stats,
            outcomes,
            aggregate,
            controller_contacts,
            race_probes,
            ..
        } = st;
        stats.wall_ms = t_run.elapsed_ms();
        stats.calls_per_sec = if stats.wall_ms > 0.0 {
            aggregate.calls as f64 / (stats.wall_ms / 1e3)
        } else {
            0.0
        };

        Outcome {
            strategy: kind.name(),
            objective: self.cfg.objective,
            controller_contacts: if matches!(kind, StrategyKind::ViaCached { .. }) {
                controller_contacts
            } else {
                aggregate.calls
            },
            race_probes,
            calls: outcomes,
            aggregate,
            stats,
            obs: obs.map(|mut sink| {
                sink.time("replay.run", t_run);
                sink.snapshot()
            }),
        }
    }

    /// Replays one shard's pair groups for one window. Everything a pair
    /// touches — its bandit, decision-cache entry, oracle memo, history
    /// cells — lives on this shard alone, so the per-pair computation is
    /// identical to a sequential walk of the same calls.
    #[allow(clippy::too_many_arguments)] // internal fork–join entry point
    fn process_shard(
        &self,
        kind: StrategyKind,
        window: Window,
        predictor: Option<&Predictor>,
        gated: Option<&[bool]>,
        batch: &[CallRecord],
        work: Vec<PairGroup>,
        ids: &HotIds,
        slot: &mut WorkerSlot,
    ) -> ShardResult {
        let objective = self.cfg.objective;
        let track = kind.uses_history();
        // The MOS-delta histogram needs an extra direct-path realization per
        // relayed call; that cost is only paid when metrics are collected.
        // Everything else records unconditionally into the slot-indexed hot
        // sink (a plain array bump) and is folded — or discarded — at the
        // window barrier.
        let want_mos = self.cfg.metrics;
        // Batch-relative view of the window's calls (PairGroup indices are
        // batch-relative too, whichever driver produced them).
        let records = batch;
        // Worker-local scratch and hot sink, reused across every call on
        // this shard and across windows (split borrows so the decision arms
        // can hold `scratch` and `hot` mutably at the same time).
        let WorkerSlot {
            hot,
            scratch,
            sample,
        } = slot;
        let mut out = ShardResult {
            outcomes: Vec::new(),
            history: CallHistory::new(),
            demands: Vec::new(),
            cache_updates: Vec::new(),
            contacts: 0,
            race_probes: 0,
        };

        for mut g in work {
            let mut state = g.state.take();
            let mut cached = g.cached;
            let mut cache_dirty = false;
            // One oracle decision per (pair, window) — keyed by the same
            // granularity KeyPair as every learning strategy. (Keying by raw
            // AS pair would hand the oracle finer spatial resolution than
            // the Figure 17a granularity sweep grants the contenders.)
            let mut oracle_memo: Option<RelayOption> = None;
            // Direct-path day parts for the MOS-delta baseline, captured on
            // the first relayed call and reused across the group (same pair,
            // and windows stay within a day in every stock config). Coarse
            // pair granularities can mix AS endpoints inside one group, so
            // reuse is guarded by `covers` — a mismatch just recaptures.
            let mut direct_parts: Option<via_netsim::PathDayParts> = None;
            // One prediction resolve per (pair, window): predictions are
            // constant between refit barriers, so the prediction-only
            // strategy decides once per decision key from the pair's
            // exemplar call — the same per-(pair, window) decision model the
            // oracle memo and the Via bandit arms already use.
            let mut pred_memo: Option<RelayOption> = None;
            if track {
                if let Some(&first) = g.calls.first() {
                    let c = &records[first];
                    out.demands.push((g.pair, (c.src_as, c.dst_as)));
                }
            }

            for &i in &g.calls {
                let call = &records[i];
                let option = match kind {
                    StrategyKind::Default => RelayOption::Direct,
                    StrategyKind::Oracle => {
                        if oracle_memo.is_none() {
                            oracle_memo = Some(self.oracle_choice(call, window, scratch, sample));
                            hot.inc(ids.oracle_evals, 1);
                        }
                        oracle_memo.unwrap_or(RelayOption::Direct)
                    }
                    // `uses_history()` guarantees a predictor for the arms
                    // below; a defensive `None` (cold controller) falls back
                    // to the direct path instead of panicking.
                    StrategyKind::PredictionOnly => match predictor {
                        None => RelayOption::Direct,
                        Some(pred) => *pred_memo.get_or_insert_with(|| {
                            self.candidates_into(call, scratch);
                            let mut best = (f64::INFINITY, RelayOption::Direct);
                            for &opt in &scratch.cand {
                                let p = pred.predict(g.ka, g.kb, opt);
                                let v = p.mean(objective);
                                if v < best.0 {
                                    best = (v, opt);
                                }
                            }
                            best.1
                        }),
                    },
                    StrategyKind::ExplorationOnly => {
                        if state.is_none() {
                            self.candidates_into(call, scratch);
                        }
                        let st = state.get_or_insert_with(|| {
                            let mut bandit = UcbBandit::new(scratch.cand.clone(), 1.0);
                            bandit.normalize = false;
                            PairState {
                                bandit,
                                best_mean: 0.0,
                                direct_mean: 0.0,
                                ci_widths: Vec::new(),
                            }
                        });
                        let mut rng = self.call_rng(call);
                        if rng.random::<f64>() < 0.1 {
                            hot.inc(ids.explore_epsilon, 1);
                            scratch.staged.clear();
                            scratch.staged.extend(st.bandit.options());
                            scratch.staged[rng.random_range(0..scratch.staged.len())]
                        } else {
                            hot.inc(ids.bandit_pulls, 1);
                            st.bandit.choose().unwrap_or(RelayOption::Direct)
                        }
                    }
                    StrategyKind::ViaCached { ttl_hours } => {
                        // §7: the client reuses a cached controller decision
                        // until it expires; only cache misses consult the
                        // selection stack.
                        match (cached, predictor) {
                            (Some((opt, expires)), _) if call.t < expires => {
                                hot.inc(ids.cache_hits, 1);
                                opt
                            }
                            (_, None) => RelayOption::Direct,
                            (_, Some(pred)) => {
                                out.contacts += 1;
                                hot.inc(ids.cache_misses, 1);
                                if state.is_none() {
                                    self.candidates_into(call, scratch);
                                }
                                let st = state.get_or_insert_with(|| {
                                    Self::build_pair_state_in(
                                        pred, g.ka, g.kb, scratch, kind, objective,
                                    )
                                });
                                let opt = st.bandit.choose().unwrap_or(RelayOption::Direct);
                                cached = Some((opt, call.t + ttl_hours * 3_600));
                                cache_dirty = true;
                                opt
                            }
                        }
                    }
                    StrategyKind::HybridRacing { k } => match predictor {
                        None => RelayOption::Direct,
                        Some(pred) => {
                            // §7: race the top-k pruned options in parallel at
                            // call setup and keep the best. The race multiplies
                            // setup traffic by k; `race_probes` tracks that
                            // overhead.
                            if state.is_none() {
                                self.candidates_into(call, scratch);
                            }
                            let st = state.get_or_insert_with(|| {
                                Self::build_pair_state(
                                    pred,
                                    g.ka,
                                    g.kb,
                                    &scratch.cand,
                                    kind,
                                    objective,
                                )
                            });
                            scratch.staged.clear();
                            scratch.staged.extend(st.bandit.options().take(k.max(1)));
                            out.race_probes += scratch.staged.len() as u64;
                            hot.inc(ids.race_probes, scratch.staged.len() as u64);
                            // Realize each racer once, then compare (realize is
                            // deterministic per (call, option), so this is both
                            // the cheap and the correct form).
                            scratch
                                .staged
                                .iter()
                                .map(|&o| (self.realize_with(call, o, sample)[objective], o))
                                .min_by(|a, b| a.0.total_cmp(&b.0))
                                .map(|(_, o)| o)
                                .unwrap_or(RelayOption::Direct)
                        }
                    },
                    StrategyKind::Via
                    | StrategyKind::ViaBudgeted { .. }
                    | StrategyKind::ViaBudgetUnaware { .. }
                    | StrategyKind::ViaFixedTopK { .. }
                    | StrategyKind::ViaRawReward => match predictor {
                        None => RelayOption::Direct,
                        Some(pred) => {
                            if state.is_none() {
                                self.candidates_into(call, scratch);
                            }
                            let st = state.get_or_insert_with(|| {
                                Self::build_pair_state(
                                    pred,
                                    g.ka,
                                    g.kb,
                                    &scratch.cand,
                                    kind,
                                    objective,
                                )
                            });
                            // Budget verdicts were computed in the sequential
                            // gate pass; they arrive as per-call flags.
                            let gated_direct = gated.is_some_and(|flags| flags[i]);
                            if gated_direct {
                                RelayOption::Direct
                            } else {
                                let mut rng = self.call_rng(call);
                                if rng.random::<f64>() < self.cfg.epsilon {
                                    // Stage 4b: general exploration over all
                                    // options.
                                    hot.inc(ids.explore_epsilon, 1);
                                    self.candidates_into(call, scratch);
                                    scratch.cand[rng.random_range(0..scratch.cand.len())]
                                } else {
                                    // Stage 4a: UCB over the pruned top-k.
                                    hot.inc(ids.bandit_pulls, 1);
                                    st.bandit.choose().unwrap_or(RelayOption::Direct)
                                }
                            }
                        }
                    },
                    StrategyKind::Multipath { k, .. } => match predictor {
                        None => {
                            scratch.set.clear();
                            RelayOption::Direct
                        }
                        Some(pred) => {
                            // Identical decision skeleton to the Via arm —
                            // same state build, same gate flag, same RNG
                            // draw order — except the combinatorial bandit
                            // commits to a set of up to k paths. At k = 1
                            // every step below degenerates to Via exactly.
                            if state.is_none() {
                                self.candidates_into(call, scratch);
                            }
                            let st = state.get_or_insert_with(|| {
                                Self::build_pair_state(
                                    pred,
                                    g.ka,
                                    g.kb,
                                    &scratch.cand,
                                    kind,
                                    objective,
                                )
                            });
                            scratch.set.clear();
                            let gated_direct = gated.is_some_and(|flags| flags[i]);
                            if gated_direct {
                                RelayOption::Direct
                            } else {
                                let mut rng = self.call_rng(call);
                                if rng.random::<f64>() < self.cfg.epsilon {
                                    // General exploration picks the primary
                                    // uniformly; redundancy still comes from
                                    // the bandit's set choice so the explore
                                    // draw count matches Via's.
                                    hot.inc(ids.explore_epsilon, 1);
                                    self.candidates_into(call, scratch);
                                    let primary =
                                        scratch.cand[rng.random_range(0..scratch.cand.len())];
                                    scratch.set.push(primary);
                                    if k > 1 {
                                        st.bandit.choose_set(k, &mut scratch.staged);
                                        for &o in &scratch.staged {
                                            if scratch.set.len() >= k.max(1) {
                                                break;
                                            }
                                            if !scratch.set.contains(&o) {
                                                scratch.set.push(o);
                                            }
                                        }
                                    }
                                    primary
                                } else {
                                    hot.inc(ids.bandit_pulls, 1);
                                    st.bandit.choose_set(k.max(1), &mut scratch.set);
                                    scratch.set.first().copied().unwrap_or(RelayOption::Direct)
                                }
                            }
                        }
                    },
                };

                // The paired realize returns the chosen metrics bit-identical
                // to `realize_with` plus a CRN direct baseline from the same
                // draws, so enabling metrics cannot change call outcomes.
                let multi = matches!(kind, StrategyKind::Multipath { .. }) && scratch.set.len() > 1;
                let (metrics, direct) = if multi {
                    // Multipath: realize every path in the set under its own
                    // CRN stream, then merge receiver-side. The per-path
                    // triples stay in scratch for semi-bandit feedback; the
                    // merged effective triple is what the call records.
                    scratch.set_specs.clear();
                    scratch.set_metrics.clear();
                    for idx in 0..scratch.set.len() {
                        let o = scratch.set[idx];
                        let m = self.realize_with(call, o, sample);
                        scratch.set_metrics.push(m);
                        scratch.set_specs.push(PathSpec::alive(m, o.stable_code()));
                    }
                    let mmode = match kind {
                        StrategyKind::Multipath {
                            mode: MultipathMode::Stripe,
                            ..
                        } => MergeMode::Stripe,
                        _ => MergeMode::Duplicate,
                    };
                    // The merge stream is keyed by the call and the set's
                    // composition (the XOR fold is order-invariant), on a
                    // label distinct from every per-path realize stream.
                    let fold = scratch
                        .set
                        .iter()
                        .fold(0u64, |a, o| a ^ seed::splitmix64(o.stable_code()));
                    let merge_seed = seed::derive_indexed(
                        self.realize_base,
                        "multipath-merge",
                        (u64::from(call.id.0) << 34) ^ fold,
                    );
                    let report = simulate_set(
                        &scratch.set_specs,
                        mmode,
                        &MULTIPATH_MERGE,
                        merge_seed,
                        &mut scratch.merge_buf,
                    );
                    hot.inc(ids.multipath_extra_paths, scratch.set.len() as u64 - 1);
                    hot.inc(ids.multipath_dedup_drops, report.dedup_drops);
                    hot.inc(ids.multipath_failovers, report.failovers);
                    let merged = report.effective;
                    let direct = if want_mos {
                        self.realize_with(call, RelayOption::Direct, sample)
                    } else {
                        merged
                    };
                    (merged, direct)
                } else if want_mos && option != RelayOption::Direct {
                    let day = call.t.day();
                    let parts = match &mut direct_parts {
                        Some(p) if p.covers(call.src_as, call.dst_as, day) => p,
                        slot => slot.insert(self.world.perf().path_day_parts_scratch(
                            call.src_as,
                            call.dst_as,
                            RelayOption::Direct,
                            day,
                            sample,
                        )),
                    };
                    self.realize_paired(call, option, parts, sample)
                } else {
                    let m = self.realize_with(call, option, sample);
                    (m, m)
                };

                hot.inc(ids.calls, 1);
                hot.inc(
                    if option == RelayOption::Direct {
                        ids.opt_direct
                    } else if option.is_bounce() {
                        ids.opt_bounce
                    } else {
                        ids.opt_transit
                    },
                    1,
                );
                hot.observe(ids.rtt, metrics[Metric::Rtt]);
                if want_mos {
                    // MOS delta against the direct path under the call's own
                    // noise draws (a direct pick is its own baseline, so the
                    // delta is exactly zero).
                    hot.observe(
                        ids.mos_delta,
                        via_quality::mos(&metrics) - via_quality::mos(&direct),
                    );
                }
                // Regret proxy vs the predictor's best arm; only meaningful
                // for states scored by a real predictor (best_mean > 0 — the
                // exploration-only dummy is 0).
                if let Some(st) = state.as_ref() {
                    if st.best_mean > 0.0 && st.best_mean.is_finite() {
                        hot.observe(ids.regret, (metrics[objective] - st.best_mean).max(0.0));
                    }
                }

                if track {
                    if multi {
                        // Semi-bandit feedback (CUCB): every played path feeds
                        // its own realization back to its own arm and to the
                        // shared history, not the merged stream's triple.
                        for idx in 0..scratch.set.len() {
                            let o = scratch.set[idx];
                            let m = scratch.set_metrics[idx];
                            out.history.record(window, g.pair, o, &m);
                            if let Some(st) = state.as_mut() {
                                st.bandit.update(o, m[objective]);
                            }
                        }
                        if let Some(st) = state.as_mut() {
                            st.bandit.validate();
                        }
                    } else {
                        out.history.record(window, g.pair, option, &metrics);
                        if let Some(st) = state.as_mut() {
                            st.bandit.update(option, metrics[objective]);
                            st.bandit.validate();
                        }
                    }
                }

                out.outcomes.push((
                    i,
                    CallOutcome {
                        call_index: call.id.0,
                        option,
                        metrics,
                    },
                ));
            }

            // One CI-width sample per selected arm per (pair, window) with a
            // predictor-built state — recorded at group end, after the state
            // was built (eagerly by the gate pass or lazily above), so the
            // stream is identical however the groups were sharded.
            if let Some(st) = state.as_ref() {
                for &w in &st.ci_widths {
                    hot.observe(ids.ci_width, w);
                }
            }

            if cache_dirty {
                if let Some(entry) = cached {
                    out.cache_updates.push((g.pair, entry));
                }
            }
        }
        out
    }

    /// Stage 3 of Algorithm 1: score candidates, prune to top-k, and build
    /// the bandit with the normalizer `w`.
    fn build_pair_state(
        pred: &Predictor,
        ka: u32,
        kb: u32,
        candidates: &[RelayOption],
        kind: StrategyKind,
        objective: Metric,
    ) -> PairState {
        let mut scratch = Scratch::default();
        scratch.cand.extend_from_slice(candidates);
        Self::build_pair_state_in(pred, ka, kb, &mut scratch, kind, objective)
    }

    /// Scratch-buffered form of [`Self::build_pair_state`] for the shard
    /// hot path: the candidate scores and the top-k selection live in
    /// reusable buffers (reading the candidates from `scratch.cand`), so a
    /// lazily built pair state allocates nothing beyond the state itself.
    fn build_pair_state_in(
        pred: &Predictor,
        ka: u32,
        kb: u32,
        scratch: &mut Scratch,
        kind: StrategyKind,
        objective: Metric,
    ) -> PairState {
        let Scratch {
            cand,
            scored,
            order,
            selected,
            ..
        } = scratch;
        scored.clear();
        scored.extend(
            cand.iter().map(|&opt| {
                ScoredOption::from_prediction(opt, &pred.predict(ka, kb, opt), objective)
            }),
        );

        let direct_mean = scored
            .iter()
            .find(|s| s.option == RelayOption::Direct)
            .map_or(f64::INFINITY, |s| s.mean);

        match kind {
            StrategyKind::ViaFixedTopK { k } => {
                selected.clear();
                selected.extend_from_slice(scored);
                selected.sort_by(|a, b| a.mean.total_cmp(&b.mean));
                selected.truncate(k.max(1));
            }
            _ => top_k_into(scored, order, selected),
        }

        let best_mean = selected.first().map_or(direct_mean, |s| s.mean);
        // Algorithm 3 line 3: w = mean of the top-k upper bounds. Arms are
        // warm-started from their predicted means (3 virtual samples) so the
        // bandit exploits predictions immediately instead of sweeping every
        // arm once.
        let w = selected.iter().map(|s| s.upper).sum::<f64>() / selected.len().max(1) as f64;
        let mut bandit = UcbBandit::with_priors(selected.iter().map(|s| (s.option, s.mean)), w, 3);
        if matches!(kind, StrategyKind::ViaRawReward) {
            bandit.normalize = false;
        }
        bandit.validate();
        PairState {
            bandit,
            best_mean,
            direct_mean,
            ci_widths: selected.iter().map(|s| s.upper - s.lower).collect(),
        }
    }

    /// The controller's static knowledge of inter-relay performance (§3.2),
    /// computed once per run.
    fn backbone_table(&self) -> std::sync::Arc<Vec<PathMetrics>> {
        let n = self.world.relays.len();
        let mut table = vec![PathMetrics::ZERO; n * n];
        for (i, ri) in (0..n).zip(0u32..) {
            for (j, rj) in (0..n).zip(0u32..) {
                table[i * n + j] = self.world.perf().backbone_metrics(RelayId(ri), RelayId(rj));
            }
        }
        std::sync::Arc::new(table)
    }

    /// Wraps the shared backbone table as the closure the predictor expects.
    fn backbone_fn_from(
        table: std::sync::Arc<Vec<PathMetrics>>,
    ) -> Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync> {
        let n = (table.len() as f64).sqrt() as usize;
        Box::new(move |a: RelayId, b: RelayId| table[a.index() * n + b.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_netsim::WorldConfig;
    use via_trace::{TraceConfig, TraceGenerator};

    fn setup() -> (World, Trace) {
        let world = World::generate(&WorldConfig::tiny(), 77);
        let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 77).generate();
        (world, trace)
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn default_strategy_stays_direct() {
        let (world, trace) = setup();
        let mut sim = ReplaySim::new(&world, &trace, ReplayConfig::default());
        let out = sim.run(StrategyKind::Default);
        assert_eq!(out.calls.len(), trace.len());
        assert!(out.calls.iter().all(|c| c.option == RelayOption::Direct));
        let (direct, bounce, transit) = out.option_mix();
        assert_eq!(direct, 1.0);
        assert_eq!(bounce + transit, 0.0);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn runs_are_deterministic() {
        let (world, trace) = setup();
        let out1 = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Via);
        let out2 = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Via);
        assert_eq!(out1.calls, out2.calls);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn same_seed_summaries_are_byte_identical() {
        // Determinism regression: two replays from the same seed must
        // serialize to byte-identical summaries — any hidden nondeterminism
        // (unordered map iteration, wall-clock reads, entropy seeding) shows
        // up here as a diff.
        let (world, trace) = setup();
        let run = || {
            let out =
                ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Via);
            serde_json::to_string(&out).expect("outcome serializes")
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn worker_count_does_not_change_results() {
        // The engine's core guarantee: sharding a window across 2 or 8
        // workers serializes to the same bytes as the sequential walk — for
        // stateless, stateful, budgeted, and cached strategies alike, and
        // whether segment states are built lazily under contention (cold) or
        // prematerialized by the warm pass.
        let (world, trace) = setup();
        let summary = |workers: usize, warm: bool, kind: StrategyKind| {
            let cfg = ReplayConfig {
                workers,
                warm,
                ..ReplayConfig::default()
            };
            let out = ReplaySim::new(&world, &trace, cfg).run(kind);
            serde_json::to_string(&out).expect("outcome serializes")
        };
        for kind in [
            StrategyKind::Via,
            StrategyKind::ViaBudgeted { budget: 0.2 },
            StrategyKind::ViaCached { ttl_hours: 6 },
            StrategyKind::ExplorationOnly,
            StrategyKind::Multipath {
                k: 2,
                mode: MultipathMode::Duplicate,
                budget: 1.0,
            },
            StrategyKind::Multipath {
                k: 2,
                mode: MultipathMode::Stripe,
                budget: 0.25,
            },
            StrategyKind::Oracle,
        ] {
            let sequential = summary(1, false, kind);
            for w in [2usize, 8] {
                assert_eq!(
                    summary(w, false, kind),
                    sequential,
                    "worker count {w} changed cold-path results for {kind:?}"
                );
            }
            for w in [1usize, 2, 8] {
                assert_eq!(
                    summary(w, true, kind),
                    sequential,
                    "warm pass at {w} workers changed results for {kind:?}"
                );
            }
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn warm_pass_builds_trace_segments_once() {
        // The warm pass must cover every segment the decision loop touches:
        // once the controller's static backbone knowledge and the warm pass
        // are in place, replaying builds nothing new (no first-touch write
        // locks inside the measured loop).
        let (world, trace) = setup();
        // Prebuild the backbone table the controller constructs per run (it
        // spans all relay pairs, not just trace-reachable ones) so the
        // remaining build count isolates the window loop.
        let n = world.relays.len() as u32;
        for i in 0..n {
            for j in 0..n {
                let _ = world.perf().backbone_metrics(RelayId(i), RelayId(j));
            }
        }
        let before = world.perf().segment_builds();
        let cfg = ReplayConfig {
            warm: true,
            workers: 4,
            ..ReplayConfig::default()
        };
        let out = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Via);
        assert!(out.stats.warmed_segments > 0);
        // `warmed_segments` counts segments *enumerated* (deterministic);
        // the number freshly built can only be smaller (some were already
        // cached, e.g. the prebuilt backbone legs) and never larger — a
        // build beyond the enumerated set means the warm pass missed a
        // segment the replay loop then built under a write lock.
        let built = world.perf().segment_builds() - before;
        assert!(
            built <= out.stats.warmed_segments,
            "replay built {built} segments but the warm pass enumerated only {}",
            out.stats.warmed_segments
        );
        // A second run on the now-fully-warmed world builds nothing new but
        // must still report the same deterministic warm count.
        let mid = world.perf().segment_builds();
        let again = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Via);
        assert_eq!(
            world.perf().segment_builds(),
            mid,
            "second run rebuilt segments"
        );
        assert_eq!(again.stats.warmed_segments, out.stats.warmed_segments);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn metrics_snapshots_are_worker_count_invariant() {
        // Extension of the determinism regression to the obs layer: the
        // serialized deterministic core of the metrics snapshot must be
        // byte-identical across worker counts, cold and warm, for every
        // strategy family — the per-worker sinks and the barrier merge must
        // not leak the partition.
        let (world, trace) = setup();
        let snapshot_json = |workers: usize, warm: bool, kind: StrategyKind| {
            let cfg = ReplayConfig {
                workers,
                warm,
                metrics: true,
                ..ReplayConfig::default()
            };
            let out = ReplaySim::new(&world, &trace, cfg).run(kind);
            let snap = out.obs.expect("metrics enabled");
            assert!(snap.counter("replay_calls_total") == trace.len() as u64);
            serde_json::to_string(&snap).expect("snapshot serializes")
        };
        for kind in [
            StrategyKind::Via,
            StrategyKind::ViaBudgeted { budget: 0.2 },
            StrategyKind::ViaCached { ttl_hours: 6 },
            StrategyKind::HybridRacing { k: 2 },
            StrategyKind::Multipath {
                k: 2,
                mode: MultipathMode::Duplicate,
                budget: 1.0,
            },
            StrategyKind::Oracle,
        ] {
            for warm in [false, true] {
                let sequential = snapshot_json(1, warm, kind);
                for w in [2usize, 8] {
                    assert_eq!(
                        snapshot_json(w, warm, kind),
                        sequential,
                        "worker count {w} changed the metrics snapshot for {kind:?} (warm={warm})"
                    );
                }
            }
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn multipath_k1_duplicate_is_call_identical_to_via() {
        // A one-path "set" must collapse to exactly the singlepath Via run:
        // same decision RNG draws, same realizations, no merge stage, no gate
        // at budget 1.0. Only the strategy display name may differ.
        let (world, trace) = setup();
        let run = |kind: StrategyKind| {
            let cfg = ReplayConfig {
                metrics: true,
                ..ReplayConfig::default()
            };
            ReplaySim::new(&world, &trace, cfg).run(kind)
        };
        let via = run(StrategyKind::Via);
        let mp = run(StrategyKind::Multipath {
            k: 1,
            mode: MultipathMode::Duplicate,
            budget: 1.0,
        });
        let calls = |o: &Outcome| serde_json::to_string(&o.calls).expect("calls serialize");
        let agg = |o: &Outcome| serde_json::to_string(&o.aggregate).expect("aggregate serializes");
        assert_eq!(calls(&via), calls(&mp));
        assert_eq!(agg(&via), agg(&mp));
        // The shared HotSchema registers the multipath counters for every
        // strategy, so the snapshots agree byte-for-byte (all three zero).
        let snap = |o: &Outcome| {
            serde_json::to_string(o.obs.as_ref().expect("metrics enabled"))
                .expect("snapshot serializes")
        };
        assert_eq!(snap(&via), snap(&mp));
        assert_eq!(
            mp.obs
                .as_ref()
                .expect("metrics enabled")
                .counter("replay_multipath_extra_paths_total"),
            0
        );
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn multipath_k2_duplicates_paths_and_budget_gate_charges_k() {
        let (world, trace) = setup();
        let run = |budget: f64| {
            let cfg = ReplayConfig {
                metrics: true,
                ..ReplayConfig::default()
            };
            ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Multipath {
                k: 2,
                mode: MultipathMode::Duplicate,
                budget,
            })
        };
        let open = run(1.0);
        let snap = open.obs.as_ref().expect("metrics enabled");
        let extra = snap.counter("replay_multipath_extra_paths_total");
        assert!(extra > 0, "k=2 duplicate replay never opened a second path");
        assert!(
            snap.counter("replay_multipath_dedup_drops_total") > 0,
            "duplicated media never produced a duplicate copy to drop"
        );

        // Tight budget: duplicate traffic is charged 2x per relayed call, so
        // relayed traffic units stay within budget * total even though each
        // admission covers two paths.
        let tight = run(0.2);
        let direct = |o: &Outcome| {
            o.calls
                .iter()
                .filter(|c| c.option == RelayOption::Direct)
                .count()
        };
        assert!(
            direct(&tight) > direct(&open),
            "a 0.2 budget with 2x-cost admissions must push more calls direct"
        );
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn back_to_back_runs_on_one_sim_report_identical_counters() {
        // Satellite regression: the engine counters must be a pure function
        // of (config, strategy), not of what a previous run left cached in
        // the shared world. `warmed_segments` used to report the builds
        // delta, which collapsed to zero on the second run.
        let (world, trace) = setup();
        let cfg = ReplayConfig {
            warm: true,
            workers: 2,
            metrics: true,
            ..ReplayConfig::default()
        };
        let mut sim = ReplaySim::new(&world, &trace, cfg);
        let first = sim.run(StrategyKind::Via);
        let second = sim.run(StrategyKind::Via);

        assert!(first.stats.warmed_segments > 0);
        assert_eq!(first.stats.warmed_segments, second.stats.warmed_segments);
        assert_eq!(first.stats.windows, second.stats.windows);
        assert_eq!(first.stats.predictor_fits, second.stats.predictor_fits);
        assert_eq!(first.stats.shard_calls, second.stats.shard_calls);
        // The full deterministic core agrees byte-for-byte too.
        let json = |o: &Outcome| {
            serde_json::to_string(o.obs.as_ref().expect("metrics enabled"))
                .expect("snapshot serializes")
        };
        assert_eq!(json(&first), json(&second));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn metrics_are_opt_in_and_catalogued() {
        let (world, trace) = setup();
        let off = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Via);
        assert!(off.obs.is_none(), "metrics must be off by default");

        let cfg = ReplayConfig {
            metrics: true,
            ..ReplayConfig::default()
        };
        let out = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Via);
        let snap = out.obs.expect("metrics enabled");
        let n = trace.len() as u64;
        assert_eq!(snap.counter("replay_calls_total"), n);
        assert_eq!(
            snap.counter("replay_option_direct_total")
                + snap.counter("replay_option_bounce_total")
                + snap.counter("replay_option_transit_total"),
            n,
            "every call contributes to exactly one option-mix counter"
        );
        assert_eq!(
            snap.counter("replay_explore_epsilon_total")
                + snap.counter("replay_bandit_pulls_total"),
            n,
            "every Via call is either an ε-exploration or a bandit pull"
        );
        assert!(snap.counter("replay_windows_total") > 0);
        assert!(snap.counter("replay_predictor_fits_total") > 0);

        let rtt = snap.histogram("replay_call_rtt_ms").expect("rtt histogram");
        assert_eq!(rtt.count, n);
        let mos = snap.histogram("replay_mos_delta").expect("mos histogram");
        assert_eq!(mos.count, n);
        assert!(snap.histogram("replay_predictor_ci_width").is_some());
        assert!(snap.histogram("replay_bandit_regret").is_some());

        // One window span per window, with deterministic fields.
        let windows = snap.counter("replay_windows_total");
        assert_eq!(snap.spans_named("replay.window").count() as u64, windows);
        let total_span_calls: u64 = snap
            .spans_named("replay.window")
            .flat_map(|s| s.fields.iter())
            .filter(|f| f.key == "calls")
            .map(|f| f.value)
            .sum();
        assert_eq!(total_span_calls, n);
        assert_eq!(snap.spans_named("replay.refit").count() as u64, windows);

        // The in-memory timing layer is populated, but never serialized.
        assert!(!snap.timings.is_empty());
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        assert!(
            !json.contains("timing"),
            "timings leaked into the wire form"
        );
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn budget_gate_counters_cover_every_call() {
        let (world, trace) = setup();
        let cfg = ReplayConfig {
            metrics: true,
            ..ReplayConfig::default()
        };
        let out =
            ReplaySim::new(&world, &trace, cfg).run(StrategyKind::ViaBudgeted { budget: 0.2 });
        let snap = out.obs.expect("metrics enabled");
        let gated =
            snap.counter("replay_gate_admitted_total") + snap.counter("replay_gate_denied_total");
        // The gate sees every call in windows where a predictor exists; the
        // cold first window bypasses it.
        assert!(gated > 0 && gated <= trace.len() as u64);
        assert!(
            snap.counter("replay_gate_denied_total") > 0,
            "0.2 budget must deny"
        );
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn stats_track_engine_counters() {
        let (world, trace) = setup();
        let cfg = ReplayConfig {
            workers: 4,
            ..ReplayConfig::default()
        };
        let out = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Via);
        let s = &out.stats;
        assert_eq!(s.workers, 4);
        assert_eq!(s.shard_calls.len(), 4);
        assert_eq!(
            s.shard_calls.iter().sum::<u64>(),
            trace.len() as u64,
            "every call must be attributed to exactly one shard"
        );
        assert!(s.windows > 0);
        assert!(s.predictor_fits >= s.windows);
        assert!(s.shard_utilization() > 0.0 && s.shard_utilization() <= 1.0);
        assert!(s.summary().contains("4 workers"));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn common_random_numbers_pair_strategies() {
        let (world, trace) = setup();
        let d = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Default);
        let o = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Oracle);
        // Wherever the oracle chose Direct, the realized metrics must match
        // the default run exactly (same CRN stream).
        let mut checked = 0;
        for (a, b) in d.calls.iter().zip(&o.calls) {
            if b.option == RelayOption::Direct {
                assert_eq!(a.metrics, b.metrics);
                checked += 1;
            }
        }
        assert!(checked > 0, "oracle should pick direct at least sometimes");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn oracle_beats_default_on_objective() {
        let (world, trace) = setup();
        let cfg = ReplayConfig::default();
        let d = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Default);
        let o = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Oracle);
        let dm: f64 = d.metric_values(Metric::Rtt).iter().sum::<f64>() / d.calls.len() as f64;
        let om: f64 = o.metric_values(Metric::Rtt).iter().sum::<f64>() / o.calls.len() as f64;
        assert!(
            om < dm,
            "oracle mean RTT {om:.1} should beat default {dm:.1}"
        );
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn via_lands_between_default_and_oracle() {
        let (world, trace) = setup();
        let cfg = ReplayConfig::default();
        let thresholds = Thresholds::default();
        let d = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Default);
        let o = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Oracle);
        let v = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Via);
        let (dp, op, vp) = (
            d.pnr(&thresholds).rtt,
            o.pnr(&thresholds).rtt,
            v.pnr(&thresholds).rtt,
        );
        assert!(
            op <= vp + 0.02,
            "oracle {op:.3} must lower-bound via {vp:.3}"
        );
        assert!(
            vp < dp,
            "via PNR {vp:.3} should improve on default {dp:.3} (oracle {op:.3})"
        );
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn budget_gate_limits_relayed_fraction() {
        let (world, trace) = setup();
        let cfg = ReplayConfig::default();
        let out =
            ReplaySim::new(&world, &trace, cfg).run(StrategyKind::ViaBudgeted { budget: 0.2 });
        let f = out.relayed_fraction();
        // ε-exploration adds a small overshoot on top of the gate.
        assert!(f <= 0.3, "relayed fraction {f} far exceeds budget 0.2");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn relay_restriction_is_honored() {
        let (world, trace) = setup();
        let allowed = vec![RelayId(0), RelayId(1)];
        let cfg = ReplayConfig {
            allowed_relays: Some(allowed.clone()),
            ..ReplayConfig::default()
        };
        let out = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Via);
        for c in &out.calls {
            for r in c.option.relays() {
                assert!(allowed.contains(&r), "used forbidden relay {r}");
            }
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn granularity_changes_decision_keys() {
        let (world, trace) = setup();
        for g in [
            SpatialGranularity::Country,
            SpatialGranularity::As,
            SpatialGranularity::SubAs { buckets: 4 },
        ] {
            let cfg = ReplayConfig {
                granularity: g,
                ..ReplayConfig::default()
            };
            let out = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Via);
            assert_eq!(out.calls.len(), trace.len());
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn oracle_respects_decision_granularity() {
        // Regression for the Figure 17a comparison: the oracle must make one
        // decision per granularity key pair per window (like every other
        // strategy), not one per raw AS pair.
        let (world, trace) = setup();
        let cfg = ReplayConfig {
            granularity: SpatialGranularity::Country,
            ..ReplayConfig::default()
        };
        let out = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Oracle);
        // Group outcomes by (country pair, window): each group must use one
        // single option.
        let mut seen: HashMap<(KeyPair, u64), RelayOption> = HashMap::new();
        for c in &out.calls {
            let r = &trace.records[c.call_index as usize];
            let ka = cfg.granularity.key_of(&world, r.src_as, r.caller.0);
            let kb = cfg.granularity.key_of(&world, r.dst_as, r.callee.0);
            let w = cfg.window.window_of(r.t);
            let prev = seen
                .entry((KeyPair::new(ka, kb), w.index))
                .or_insert(c.option);
            assert_eq!(
                *prev, c.option,
                "oracle made multiple decisions for one key pair in one window"
            );
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn active_probes_do_not_break_replay_and_stay_deterministic() {
        let (world, trace) = setup();
        let cfg = ReplayConfig {
            active_probes_per_window: 20,
            ..ReplayConfig::default()
        };
        let a = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Via);
        let b = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Via);
        assert_eq!(a.calls, b.calls, "active probing must stay deterministic");
        assert_eq!(a.calls.len(), trace.len());
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full replay sims are orders of magnitude too slow under miri"
    )]
    fn outcome_filters_by_predicate() {
        let (world, trace) = setup();
        let out =
            ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Default);
        let thresholds = Thresholds::default();
        let intl = out.pnr_where(&trace, &thresholds, CallRecord::is_international);
        let dom = out.pnr_where(&trace, &thresholds, |r| !r.is_international());
        assert_eq!(intl.calls + dom.calls, trace.len());
    }
}
