//! The live controller's acceptance pins:
//!
//! 1. **Server ≡ batch.** Selections from the sharded incremental-refit
//!    controller are byte-identical to a reference loop that refits with
//!    `Predictor::fit` at every window barrier — the batch replay engine's
//!    training schedule — over the same seeded closed-loop trace.
//! 2. **Socket ≡ in-process.** Driving the same rounds over the framed-TCP
//!    plane produces the same selections and a byte-identical selection
//!    snapshot.
//! 3. **Snapshot/restore.** A restored controller re-snapshots to the same
//!    bytes and, from the next window rollover on, selects identically to
//!    the uninterrupted original.

// Test code: panicking on a broken fixture or a failed round trip is the
// right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use via_core::budget::BudgetGate;
use via_core::history::{CallHistory, KeyPair};
use via_core::predictor::{GeoPrior, Predictor};
use via_core::topk::{top_k_into, ScoredOption};
use via_core::{BackboneFn, UcbBandit};
use via_model::ids::RelayId;
use via_model::metrics::{Metric, PathMetrics};
use via_model::options::RelayOption;
use via_model::seed;
use via_model::time::{SimTime, Window, WindowLen};
use via_server::{serve, Client, Controller, Selection, SelectionSnapshot, ServerConfig};

const N_KEYS: u32 = 4;
const N_RELAYS: u32 = 3;

fn config() -> ServerConfig {
    ServerConfig {
        seed: 42,
        objective: Metric::Rtt,
        window: WindowLen::hours(1),
        epsilon: 0.1,
        budget: Some(0.5),
        shards: 4,
        start: SimTime::ZERO,
        ..ServerConfig::default()
    }
}

fn prior() -> GeoPrior {
    GeoPrior::new(
        vec![
            via_netsim::GeoPoint::new(40.7, -74.0),
            via_netsim::GeoPoint::new(51.5, -0.1),
            via_netsim::GeoPoint::new(35.7, 139.7),
            via_netsim::GeoPoint::new(-33.9, 151.2),
        ],
        vec![
            via_netsim::GeoPoint::new(38.9, -77.5),
            via_netsim::GeoPoint::new(50.1, 8.7),
            via_netsim::GeoPoint::new(1.3, 103.8),
        ],
    )
}

fn backbone() -> BackboneFn {
    Arc::new(|a: RelayId, b: RelayId| {
        let d = (a.0 as f64 - b.0 as f64).abs();
        PathMetrics::new(15.0 + 12.0 * d, 0.04, 0.8)
    })
}

fn candidates() -> Vec<RelayOption> {
    let mut c = vec![RelayOption::Direct];
    c.extend((0..N_RELAYS).map(|r| RelayOption::Bounce(RelayId(r))));
    c.push(RelayOption::Transit(RelayId(0), RelayId(1)));
    c
}

/// One synthetic call of the closed-loop trace.
struct Call {
    id: u64,
    t: SimTime,
    src: u32,
    dst: u32,
}

/// `calls_per_window` calls per window for `windows` windows, evenly spaced.
fn trace(windows: u64, calls_per_window: u64) -> Vec<Call> {
    let mut rng = StdRng::seed_from_u64(7);
    let spacing = WindowLen::hours(1).secs() / calls_per_window;
    let mut calls = Vec::new();
    for w in 0..windows {
        for i in 0..calls_per_window {
            let src = rng.random_range(0..N_KEYS);
            let dst = (src + rng.random_range(1..N_KEYS)) % N_KEYS;
            calls.push(Call {
                id: w * calls_per_window + i,
                t: SimTime(w * WindowLen::hours(1).secs() + i * spacing),
                src,
                dst,
            });
        }
    }
    calls
}

/// Deterministic ground-truth metrics for the option a call took.
fn measure(call: &Call, option: RelayOption) -> PathMetrics {
    let mut rng = StdRng::seed_from_u64(seed::derive_indexed(99, "truth", call.id));
    let base = match option.canonical() {
        RelayOption::Direct => 90.0 + 15.0 * ((call.src + call.dst) % 5) as f64,
        RelayOption::Bounce(r) => 70.0 + 20.0 * (r.0 % 3) as f64,
        RelayOption::Transit(a, b) => 65.0 + 8.0 * ((a.0 + b.0) % 4) as f64,
    };
    PathMetrics::new(
        base + rng.random::<f64>() * 25.0,
        rng.random::<f64>() * 1.5,
        1.0 + rng.random::<f64>() * 6.0,
    )
}

/// The batch-schedule reference: everything the controller does, but with
/// the predictor refitted by `Predictor::fit` at each window barrier — no
/// incremental cells, no shards, no epochs. Selections must match the
/// server bit for bit.
struct BatchReference {
    cfg: ServerConfig,
    prior: GeoPrior,
    backbone: BackboneFn,
    history: CallHistory,
    window: u64,
    predictor: Predictor,
    pairs: HashMap<KeyPair, (UcbBandit, f64, f64)>,
    gate: Option<BudgetGate>,
}

impl BatchReference {
    fn new(cfg: ServerConfig, prior: GeoPrior, backbone: BackboneFn) -> BatchReference {
        let start = cfg.window.window_of(cfg.start);
        let predictor = match start.prev() {
            Some(training) => Predictor::fit(
                &CallHistory::new(),
                training,
                prior.clone(),
                boxed(&backbone),
                cfg.predictor,
            ),
            None => Predictor::cold(prior.clone(), boxed(&backbone), cfg.predictor),
        };
        BatchReference {
            prior,
            backbone,
            history: CallHistory::new(),
            window: start.index,
            predictor,
            pairs: HashMap::new(),
            gate: cfg.budget.map(BudgetGate::new),
            cfg,
        }
    }

    fn ensure_window(&mut self, w: Window) {
        if w.index <= self.window {
            return;
        }
        let training = w.prev().unwrap();
        // The batch barrier: whole-window refit.
        self.predictor = Predictor::fit(
            &self.history,
            training,
            self.prior.clone(),
            boxed(&self.backbone),
            self.cfg.predictor,
        );
        self.history.prune_before(w.index.saturating_sub(1));
        self.pairs.clear();
        self.window = w.index;
    }

    fn select(&mut self, call: &Call, cands: &[RelayOption]) -> Selection {
        self.ensure_window(self.cfg.window.window_of(call.t));
        let pair = KeyPair::new(call.src, call.dst);
        let objective = self.cfg.objective;
        let (predictor, cfg) = (&self.predictor, &self.cfg);
        let (bandit, best_mean, direct_mean) = self.pairs.entry(pair).or_insert_with(|| {
            let scored: Vec<ScoredOption> = cands
                .iter()
                .map(|&o| {
                    ScoredOption::from_prediction(
                        o,
                        &predictor.predict(pair.lo, pair.hi, o),
                        objective,
                    )
                })
                .collect();
            let direct_mean = scored
                .iter()
                .find(|s| s.option == RelayOption::Direct)
                .map_or(f64::INFINITY, |s| s.mean);
            let mut order = Vec::new();
            let mut selected = Vec::new();
            top_k_into(&scored, &mut order, &mut selected);
            let best_mean = selected.first().map_or(direct_mean, |s| s.mean);
            let w = selected.iter().map(|s| s.upper).sum::<f64>() / selected.len().max(1) as f64;
            let bandit = UcbBandit::with_priors(selected.iter().map(|s| (s.option, s.mean)), w, 3);
            (bandit, best_mean, direct_mean)
        });
        let benefit = *direct_mean - *best_mean;
        let mut admitted = true;
        if benefit.is_finite() {
            if let Some(g) = self.gate.as_mut() {
                admitted = g.admit(benefit);
            }
        }
        let mut explored = false;
        let option = if admitted {
            let mut rng =
                StdRng::seed_from_u64(seed::derive_indexed(cfg.seed, "server.select", call.id));
            if cfg.epsilon > 0.0 && rng.random::<f64>() < cfg.epsilon {
                explored = true;
                cands[rng.random_range(0..cands.len())]
            } else {
                bandit.choose().unwrap_or(RelayOption::Direct)
            }
        } else {
            RelayOption::Direct
        };
        Selection {
            option,
            admitted,
            explored,
            window: self.window,
        }
    }

    fn report(&mut self, call: &Call, option: RelayOption, m: &PathMetrics) {
        self.ensure_window(self.cfg.window.window_of(call.t));
        let pair = KeyPair::new(call.src, call.dst);
        let window = Window {
            index: self.window,
            len: self.cfg.window,
        };
        let option = option.canonical();
        self.history.record(window, pair, option, m);
        if let Some((bandit, _, _)) = self.pairs.get_mut(&pair) {
            bandit.update(option, m[self.cfg.objective]);
        }
    }
}

fn boxed(bb: &BackboneFn) -> Box<dyn Fn(RelayId, RelayId) -> PathMetrics + Send + Sync> {
    let bb = Arc::clone(bb);
    Box::new(move |a, b| bb(a, b))
}

#[test]
fn incremental_server_selects_byte_identically_to_the_batch_reference() {
    let cfg = config();
    let server = Controller::new(cfg, prior(), backbone());
    let mut reference = BatchReference::new(cfg, prior(), backbone());
    let cands = candidates();

    let (mut relayed, mut gated, mut explored) = (0u64, 0u64, 0u64);
    for call in &trace(3, 300) {
        let a = server.select(call.id, call.t, call.src, call.dst, &cands);
        let b = reference.select(call, &cands);
        assert_eq!(a, b, "selection diverged at call {}", call.id);
        // Report a cycled option rather than only the selected one, so every
        // cell accumulates measurements (a cold prior would otherwise pick
        // Direct forever, never measure a relay, and the identity above
        // would hold vacuously over an all-Direct stream).
        let probed = cands[(call.id % cands.len() as u64) as usize];
        let m = measure(call, probed);
        server.report(call.t, call.src, call.dst, probed, &m);
        reference.report(call, probed, &m);
        if a.option != RelayOption::Direct {
            relayed += 1;
        }
        if !a.admitted {
            gated += 1;
        }
        if a.explored {
            explored += 1;
        }
    }
    // The trace must actually exercise every decision path, or the identity
    // above is vacuous.
    assert!(relayed > 50, "only {relayed} relayed calls");
    assert!(gated > 50, "budget gate never engaged ({gated})");
    assert!(explored > 10, "ε exploration never fired ({explored})");
    assert_eq!(server.window_index(), 2);
    assert_eq!(server.refit_epoch(), 2, "one publish per window rollover");
}

#[test]
fn socket_rounds_match_the_in_process_api_and_snapshot() {
    let cfg = config();
    let handle = serve(Arc::new(Controller::new(cfg, prior(), backbone()))).unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    let local = Controller::new(cfg, prior(), backbone());
    let cands = candidates();

    for call in &trace(2, 120) {
        let over_socket = client
            .select(call.id, call.t, call.src, call.dst, &cands)
            .unwrap();
        let in_process = local.select(call.id, call.t, call.src, call.dst, &cands);
        assert_eq!(over_socket, in_process, "diverged at call {}", call.id);
        let probed = cands[(call.id % cands.len() as u64) as usize];
        let m = measure(call, probed);
        let w1 = client
            .report(call.t, call.src, call.dst, probed, m)
            .unwrap();
        let w2 = local.report(call.t, call.src, call.dst, probed, &m);
        assert_eq!(w1, w2);
    }

    let remote_snapshot = client.snapshot().unwrap();
    assert_eq!(
        remote_snapshot,
        local.selection_snapshot_json(),
        "socket-driven selection state diverged from the in-process API"
    );
    // The snapshot is valid JSON of the documented shape.
    let decoded: SelectionSnapshot = serde_json::from_str(&remote_snapshot).unwrap();
    assert_eq!(decoded.current.window.index, 1);
    assert!(decoded.gate.is_some());

    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn snapshot_restore_roundtrips_and_reconverges_at_the_next_rollover() {
    let cfg = config();
    let original = Controller::new(cfg, prior(), backbone());
    let cands = candidates();

    // Run one full window plus half of the next, closed loop.
    let calls = trace(2, 200);
    let (first_half, second_half) = calls.split_at(300);
    for call in first_half {
        original.select(call.id, call.t, call.src, call.dst, &cands);
        let probed = cands[(call.id % cands.len() as u64) as usize];
        let m = measure(call, probed);
        original.report(call.t, call.src, call.dst, probed, &m);
    }

    // Restart mid-window from the serialized snapshot.
    let json = original.selection_snapshot_json();
    let snap: SelectionSnapshot = serde_json::from_str(&json).unwrap();
    let restored = Controller::restore(cfg, prior(), backbone(), snap);
    assert_eq!(
        restored.selection_snapshot_json(),
        json,
        "restore must re-snapshot to identical bytes"
    );
    assert_eq!(restored.window_index(), original.window_index());

    // Within the interrupted window, per-pair bandit arm counts are
    // deliberately not carried (documented trade-off), so selections may
    // differ until the next rollover discards per-window state on both
    // sides. From the first call of the next window on, the two must agree
    // on every decision — the restored history, gate, and predictor are
    // bit-identical.
    for call in second_half {
        original.select(call.id, call.t, call.src, call.dst, &cands);
        restored.select(call.id, call.t, call.src, call.dst, &cands);
        let probed = cands[(call.id % cands.len() as u64) as usize];
        let m = measure(call, probed);
        original.report(call.t, call.src, call.dst, probed, &m);
        restored.report(call.t, call.src, call.dst, probed, &m);
    }
    let tail = trace(3, 200);
    for call in tail
        .iter()
        .filter(|c| c.t.0 >= 2 * WindowLen::hours(1).secs())
    {
        let a = original.select(call.id, call.t, call.src, call.dst, &cands);
        let b = restored.select(call.id, call.t, call.src, call.dst, &cands);
        assert_eq!(a, b, "post-rollover selection diverged at call {}", call.id);
        let probed = cands[(call.id % cands.len() as u64) as usize];
        let m = measure(call, probed);
        original.report(call.t, call.src, call.dst, probed, &m);
        restored.report(call.t, call.src, call.dst, probed, &m);
    }
}
