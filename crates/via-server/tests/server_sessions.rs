//! Session lifecycle over the real socket plane: distinct ids per
//! connection, typed rejection of stale/foreign session ids (the
//! cross-wiring bug class fixed in `via-testbed`'s allocator), and clean
//! client-initiated shutdown.

// Test code: panicking on a failed connect or round trip is the right
// behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use via_core::predictor::GeoPrior;
use via_model::ids::RelayId;
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::time::SimTime;
use via_server::{serve, Client, ClientError, Controller, ErrorKind, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(10);

fn controller() -> Arc<Controller> {
    Arc::new(Controller::new(
        ServerConfig::default(),
        GeoPrior::new(
            vec![via_netsim::GeoPoint::new(0.0, 0.0)],
            vec![via_netsim::GeoPoint::new(1.0, 1.0)],
        ),
        Arc::new(|_: RelayId, _: RelayId| PathMetrics::new(20.0, 0.1, 1.0)),
    ))
}

/// Polls until `cond` holds or panics after 10 s — connection teardown is
/// only observed by the server within a read-poll slice.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_connections_get_distinct_live_sessions() {
    let handle = serve(controller()).unwrap();
    let a = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let b = Client::connect(handle.addr(), TIMEOUT).unwrap();
    assert_ne!(a.session(), b.session());
    assert_ne!(a.session(), 0);
    assert_ne!(b.session(), 0);
    let ctrl = Arc::clone(handle.controller());
    wait_for(|| ctrl.live_sessions() == 2, "both sessions live");
    drop(a);
    wait_for(|| ctrl.live_sessions() == 1, "session A reaped");
    drop(b);
    wait_for(|| ctrl.live_sessions() == 0, "session B reaped");
    handle.stop();
}

#[test]
fn never_issued_session_id_is_rejected_with_typed_error() {
    let handle = serve(controller()).unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
    client.set_session(0xDEAD_BEEF);
    let err = client
        .select(0, SimTime::ZERO, 0, 1, &[RelayOption::Direct])
        .unwrap_err();
    match err {
        ClientError::Remote { kind, .. } => assert_eq!(kind, ErrorKind::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    handle.stop();
}

#[test]
fn reconnect_with_stale_session_id_is_rejected() {
    let handle = serve(controller()).unwrap();
    let ctrl = Arc::clone(handle.controller());

    // Client A opens a session, works, and disconnects.
    let mut a = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let stale = a.session();
    a.select(0, SimTime::ZERO, 0, 1, &[RelayOption::Direct])
        .unwrap();
    drop(a);
    wait_for(|| !ctrl.session_live(stale), "stale session reaped");

    // Client B reconnects and replays A's old id — the pre-fix allocator
    // bug class: a stale id silently adopting live state. It must be a
    // typed rejection instead.
    let mut b = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let own = b.session();
    assert_ne!(
        own, stale,
        "stale id must not be re-issued while fresh ids remain"
    );
    b.set_session(stale);
    let err = b
        .select(1, SimTime::ZERO, 0, 1, &[RelayOption::Direct])
        .unwrap_err();
    match err {
        ClientError::Remote { kind, .. } => assert_eq!(kind, ErrorKind::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    // The connection survives the rejection: restoring its own id works.
    b.set_session(own);
    b.select(2, SimTime::ZERO, 0, 1, &[RelayOption::Direct])
        .unwrap();
    handle.stop();
}

#[test]
fn one_session_cannot_speak_for_another_live_session() {
    let handle = serve(controller()).unwrap();
    let a = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let mut b = Client::connect(handle.addr(), TIMEOUT).unwrap();
    // A's id is live, but it is not B's connection's id — still rejected.
    b.set_session(a.session());
    let err = b
        .select(0, SimTime::ZERO, 0, 1, &[RelayOption::Direct])
        .unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Remote {
                kind: ErrorKind::UnknownSession,
                ..
            }
        ),
        "cross-session id must be rejected, got {err:?}"
    );
    drop(a);
    handle.stop();
}

#[test]
fn client_shutdown_request_stops_the_server() {
    let handle = serve(controller()).unwrap();
    let addr = handle.addr();
    let client = Client::connect(addr, TIMEOUT).unwrap();
    client.shutdown().unwrap();
    handle.wait(); // returns only when the accept loop exited cleanly
                   // New connections now fail the handshake (refused or reset mid-Hello).
    assert!(Client::connect(addr, Duration::from_millis(500)).is_err());
}
