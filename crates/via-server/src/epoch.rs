//! Epoch-flipped shared pointer: the controller's read-mostly publish slot.
//!
//! The select path loads the current [`Predictor`](via_core::Predictor) on
//! every call; the refit path replaces it once per window rollover. A plain
//! `Mutex<Arc<T>>` would serialize every selection behind one cache line.
//! `EpochPtr` instead keeps **two** slots and an atomic epoch counter:
//! readers take a read lock on the slot the epoch points at (uncontended —
//! the writer never touches the live slot), clone the `Arc`, and release.
//! The writer prepares the *other* slot, then flips the epoch with a single
//! release store.
//!
//! This is the arc-swap idiom rebuilt from `std` primitives (the workspace
//! denies `unsafe` and adds no dependencies): the read path is two atomic
//! loads plus an `Arc` clone in the steady state, and a writer only ever
//! contends with readers that are a full epoch behind — i.e. readers that
//! loaded the epoch before the *previous* flip and still have not finished,
//! which a once-per-window writer wait absorbs off the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::lock::{read_lock, write_lock};

/// A shared pointer with wait-free-in-practice reads and epoch-flip writes.
#[derive(Debug)]
pub struct EpochPtr<T> {
    /// Which slot is live: `slots[epoch & 1]`.
    epoch: AtomicU64,
    slots: [RwLock<Arc<T>>; 2],
    /// Serializes publishers (the flip itself is a single store, but two
    /// concurrent publishers would race on the spare slot).
    writer: Mutex<()>,
}

impl<T> EpochPtr<T> {
    /// Creates the pointer with `initial` in the live slot. The spare slot
    /// holds a second handle to the same value until the first publish.
    pub fn new(initial: Arc<T>) -> EpochPtr<T> {
        EpochPtr {
            epoch: AtomicU64::new(0),
            slots: [RwLock::new(Arc::clone(&initial)), RwLock::new(initial)],
            writer: Mutex::new(()),
        }
    }

    /// Loads the currently published value. Any interleaving with a
    /// concurrent [`EpochPtr::publish`] returns a fully published `Arc` —
    /// either the old or the new value, never a torn one.
    pub fn load(&self) -> Arc<T> {
        let e = self.epoch.load(Ordering::Acquire);
        let slot = &self.slots[(e & 1) as usize];
        Arc::clone(&read_lock(slot))
    }

    /// Number of publishes so far (diagnostics; the refit-epoch gauge).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes `value`: stores it in the spare slot, then flips the epoch
    /// so subsequent [`EpochPtr::load`]s see it. Blocks only on readers
    /// still inside a load that began before the previous flip.
    pub fn publish(&self, value: Arc<T>) {
        let _guard = crate::lock::lock(&self.writer);
        let e = self.epoch.load(Ordering::Acquire);
        {
            let mut spare = write_lock(&self.slots[((e + 1) & 1) as usize]);
            *spare = value;
        }
        self.epoch.store(e + 1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_sees_latest_publish() {
        let p = EpochPtr::new(Arc::new(1u64));
        assert_eq!(*p.load(), 1);
        p.publish(Arc::new(2));
        assert_eq!(*p.load(), 2);
        assert_eq!(p.epoch(), 1);
        p.publish(Arc::new(3));
        assert_eq!(*p.load(), 3);
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn concurrent_readers_always_see_a_published_value() {
        let p = Arc::new(EpochPtr::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *p.load();
                        // Published values are monotone; a torn or stale-slot
                        // read would break that.
                        assert!(v >= last, "value went backwards: {last} -> {v}");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=1000u64 {
            p.publish(Arc::new(v));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*p.load(), 1000);
    }
}
