//! Live VIA controller: an online select/report plane with incremental
//! predictor refit.
//!
//! Everything else in this workspace evaluates VIA by *replaying* traces —
//! the batch engine stops the world at every window barrier to refit. This
//! crate is the deployable shape of the same algorithms: a long-running
//! controller that answers "which relay option should this call take" RPCs
//! while training continuously, one report at a time.
//!
//! * [`controller`] — sharded selection state: an epoch-flipped published
//!   [`Predictor`](via_core::Predictor), per-pair-shard histories and
//!   bandits, the §4.6 budget gate as a live control loop, and
//!   snapshot/restore for graceful restarts. Selections are bit-identical
//!   to the batch replay predictor over the same report stream.
//! * [`epoch`] — the read-mostly publish slot (two slots + an atomic epoch;
//!   `std`-only, no `unsafe`).
//! * [`session`] — non-zero `u64` session ids from a wrapping, collision-
//!   skipping allocator with typed exhaustion.
//! * [`wire`] / [`server`] / [`client`] — the framed-TCP RPC plane, reusing
//!   `via-testbed`'s length-prefixed JSON framing and deadline-bounded
//!   reads.
//!
//! Like `via-testbed`, this crate drives real sockets and wall clocks but
//! is held to the workspace's panic-safety and bounded-socket-wait rules
//! (via-audit's `panic` and `socket-wait` lints): no `unwrap`/`expect` in
//! library code, no socket wait without a deadline.

#![warn(missing_docs)]

pub mod client;
pub mod controller;
pub mod epoch;
mod lock;
pub mod server;
pub mod session;
pub mod wire;

pub use client::{Client, ClientError};
pub use controller::{Controller, Selection, SelectionSnapshot, ServerConfig};
pub use epoch::EpochPtr;
pub use server::{serve, serve_on, ServerHandle};
pub use session::{SessionExhausted, SessionTable};
pub use wire::{ErrorKind, Request, Response};
