//! Session-id allocation for the controller's socket plane.
//!
//! Every control connection gets a non-zero `u64` session id at `Hello`
//! time and must echo it on every subsequent request. Ids are allocated
//! from a wrapping counter that **skips live ids**: the same class of bug
//! fixed in `via-testbed`'s relay-session allocator (a wrapped counter
//! re-issuing an id still held by an open session, silently cross-wiring
//! two peers) also applies here, so the allocator probes forward past
//! collisions and reports exhaustion as a typed error instead of looping
//! forever when every probed id is taken.

use std::collections::HashSet;

/// How many candidate ids [`SessionTable::open`] probes before declaring
/// exhaustion. With 64-bit ids this only triggers when a test pins the
/// counter into a deliberately saturated range, but the bound keeps the
/// allocator O(1) instead of "walk the whole id space under the lock".
const PROBE_LIMIT: u64 = 65_536;

/// Allocation failure: every probed candidate id was live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionExhausted {
    /// Number of sessions live when allocation gave up.
    pub live: usize,
}

impl std::fmt::Display for SessionExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "session ids exhausted: {} live sessions, {} candidates probed",
            self.live, PROBE_LIMIT
        )
    }
}

impl std::error::Error for SessionExhausted {}

/// Live-session registry plus wrapping id allocator.
#[derive(Debug)]
pub struct SessionTable {
    /// Next candidate id (0 is reserved as "no session" and never issued).
    next: u64,
    live: HashSet<u64>,
}

impl SessionTable {
    /// An empty table allocating from id 1.
    pub fn new() -> SessionTable {
        SessionTable::starting_at(1)
    }

    /// An empty table whose first candidate id is `next` — lets tests pin
    /// the counter next to `u64::MAX` to exercise wraparound without 2⁶⁴
    /// allocations.
    pub fn starting_at(next: u64) -> SessionTable {
        SessionTable {
            next: if next == 0 { 1 } else { next },
            live: HashSet::new(),
        }
    }

    /// Allocates a fresh session id: the first candidate from the wrapping
    /// counter that is neither 0 nor currently live.
    ///
    /// # Errors
    /// [`SessionExhausted`] when [`PROBE_LIMIT`] successive candidates were
    /// all live.
    pub fn open(&mut self) -> Result<u64, SessionExhausted> {
        for _ in 0..PROBE_LIMIT {
            let candidate = self.next;
            self.next = self.next.wrapping_add(1);
            if self.next == 0 {
                self.next = 1;
            }
            if candidate != 0 && self.live.insert(candidate) {
                return Ok(candidate);
            }
        }
        Err(SessionExhausted {
            live: self.live.len(),
        })
    }

    /// Ends a session. Returns false when the id was not live (already
    /// closed, or never issued).
    pub fn close(&mut self, id: u64) -> bool {
        self.live.remove(&id)
    }

    /// True when `id` names a currently open session.
    pub fn is_live(&self, id: u64) -> bool {
        self.live.contains(&id)
    }

    /// Number of open sessions.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

impl Default for SessionTable {
    fn default() -> Self {
        SessionTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut t = SessionTable::new();
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let id = t.open().unwrap();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
        assert_eq!(t.live_count(), 1000);
    }

    #[test]
    fn wraparound_skips_zero_and_live_ids() {
        // Counter parked two short of wrap; the first two ids are still live
        // when the counter comes back around.
        let mut t = SessionTable::starting_at(u64::MAX - 1);
        let a = t.open().unwrap();
        let b = t.open().unwrap();
        assert_eq!((a, b), (u64::MAX - 1, u64::MAX));
        // Wrap: 0 is skipped, 1 is issued.
        assert_eq!(t.open().unwrap(), 1);
        // Park the counter on a live id: allocation must skip it.
        let mut t = SessionTable::starting_at(u64::MAX);
        let held = t.open().unwrap();
        assert_eq!(held, u64::MAX);
        t.next = u64::MAX; // wrapped all the way around; u64::MAX still live
        let next = t.open().unwrap();
        assert_ne!(next, held, "reissued a live id after wraparound");
        assert_eq!(next, 1);
    }

    #[test]
    fn close_frees_ids_for_reuse() {
        let mut t = SessionTable::starting_at(u64::MAX);
        let id = t.open().unwrap();
        assert!(t.is_live(id));
        assert!(t.close(id));
        assert!(!t.is_live(id));
        assert!(!t.close(id), "double close should report not-live");
        t.next = u64::MAX;
        assert_eq!(t.open().unwrap(), u64::MAX, "closed id is reusable");
    }

    #[test]
    fn exhaustion_is_a_typed_error_not_a_hang() {
        let mut t = SessionTable::starting_at(1);
        // Fill the entire probe range so every candidate collides.
        for id in 1..=super::PROBE_LIMIT {
            t.live.insert(id);
        }
        let err = t.open().unwrap_err();
        assert_eq!(err.live as u64, super::PROBE_LIMIT);
        // Giving up advanced the counter through the whole probe window, so
        // the next allocation lands on the first free id past it.
        assert_eq!(t.open().unwrap(), super::PROBE_LIMIT + 1);
    }
}
