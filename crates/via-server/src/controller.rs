//! The live selection plane: sharded controller state behind an epoch
//! pointer, with per-report incremental refit.
//!
//! The batch replay engine (`via_core::replay`) advances through a trace
//! window by window: at each barrier it refits the predictor over the
//! closed window, rebuilds per-pair bandit state lazily, and replays the
//! next window. A long-running controller answers `select` RPCs
//! continuously and cannot stall them behind a whole-window refit, so this
//! module splits the state three ways:
//!
//! * **Published predictor** — an [`EpochPtr`] holding the immutable
//!   [`Predictor`] trained on the last closed window. The select path loads
//!   it wait-free in practice; rollover publishes a replacement.
//! * **Shards** — per-pair mutable state (accumulating [`CallHistory`],
//!   live [`fit_cell`] predictions, per-pair bandits, a selection-latency
//!   histogram), partitioned by spatial key pair so concurrent selects for
//!   different pairs never contend.
//! * **Roll state** — the once-per-window merge: shard histories and cell
//!   maps are drained (disjoint by construction — each pair lives in
//!   exactly one shard), tomography is solved over the merged history, and
//!   [`Predictor::from_parts`] publishes without re-walking the cells.
//!
//! **Byte-identity with the batch path.** Every report feeds its cell's
//! Welford accumulator and re-derives that one cell through the same
//! [`fit_cell`] the batch fit uses; rollover unions the disjoint shard cell
//! maps, which is exactly the cell map `Predictor::fit` would compute from
//! the merged history. The regression tests in `tests/server_determinism.rs`
//! pin selections against a reference loop built on `Predictor::fit`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use via_core::budget::BudgetGate;
use via_core::history::{CallHistory, KeyPair};
use via_core::online::{BackboneFn, CellSnapshot, RefitSnapshot};
use via_core::predictor::{fit_cell, GeoPrior, Prediction, Predictor, PredictorConfig};
use via_core::tomography::Tomography;
use via_core::topk::{top_k_into, ScoredOption};
use via_core::UcbBandit;
use via_model::metrics::{Metric, PathMetrics};
use via_model::options::RelayOption;
use via_model::seed::{self, splitmix64};
use via_model::time::{SimTime, Window, WindowLen};

use crate::epoch::EpochPtr;
use crate::lock::lock;
use crate::session::{SessionExhausted, SessionTable};

/// Static configuration of a [`Controller`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Root seed for the ε-exploration RNG (derived per `call_id`, so a
    /// replayed request stream re-derives identical coin flips).
    pub seed: u64,
    /// Objective metric selections optimize.
    pub objective: Metric,
    /// Control-window length.
    pub window: WindowLen,
    /// ε general-exploration fraction (Algorithm 3's uniform escape hatch).
    pub epsilon: f64,
    /// Budget-gate fraction in (0, 1], or `None` to disable gating.
    pub budget: Option<f64>,
    /// Number of pair shards (clamped to at least 1).
    pub shards: usize,
    /// Predictor / tomography settings.
    pub predictor: PredictorConfig,
    /// Simulation clock at startup; decides the first accumulating window.
    pub start: SimTime,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            seed: 0,
            objective: Metric::Rtt,
            window: WindowLen::DAY,
            epsilon: 0.05,
            budget: None,
            shards: 8,
            predictor: PredictorConfig::default(),
            start: SimTime::ZERO,
        }
    }
}

/// One selection decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen option.
    pub option: RelayOption,
    /// False when the budget gate forced the direct path.
    pub admitted: bool,
    /// True when ε exploration picked a uniform random candidate.
    pub explored: bool,
    /// Window index the decision was made in.
    pub window: u64,
}

/// Per-pair selection state for one window: the mirror of the replay
/// engine's lazily built pair state.
#[derive(Debug)]
struct PairEntry {
    /// Window index this entry was built for; stale entries are rebuilt
    /// from the freshly published predictor.
    window: u64,
    bandit: UcbBandit,
    best_mean: f64,
    direct_mean: f64,
}

/// One pair shard: every mutable per-call structure for the pairs hashed
/// here. Locked per select/report; different pairs in different shards
/// proceed concurrently.
struct Shard {
    /// Window index the shard's live state belongs to.
    window: u64,
    /// Accumulating history (current window only; drained at rollover).
    history: CallHistory,
    /// Live per-cell predictions over the accumulating history.
    cells: HashMap<(KeyPair, RelayOption), Prediction>,
    /// Per-pair bandit state for the current window.
    pairs: HashMap<KeyPair, PairEntry>,
    /// Reports absorbed since the last rollover.
    pending: u64,
    /// Wall-clock select latency, microseconds (nondeterministic; only the
    /// observability snapshot carries it).
    latency: via_obs::Histogram,
}

impl Shard {
    fn new(window: u64) -> Shard {
        Shard {
            window,
            history: CallHistory::new(),
            cells: HashMap::new(),
            pairs: HashMap::new(),
            pending: 0,
            latency: via_obs::Histogram::new(via_obs::LATENCY_US),
        }
    }
}

/// State mutated only at window rollover, behind one mutex so rolls are
/// serialized and the select path never waits on a whole-window pass.
struct RollState {
    /// History of the training window behind the live predictor — what a
    /// restart needs to refit an identical predictor.
    trained: CallHistory,
    /// The training window, or `None` before any history exists (cold
    /// start at window 0).
    trained_window: Option<Window>,
    /// Deterministic roll telemetry (one span per rollover).
    obs: via_obs::MetricSink,
}

/// Serializable image of the controller's entire selection state: enough
/// to restart and keep serving bit-identical predictions.
///
/// `trained` carries the per-cell statistics of the window behind the live
/// predictor; restore refits it with [`Predictor::fit`], which is
/// bit-identical to the incremental publish over the same statistics.
/// `current` is the accumulating window in the same canonical cell order
/// [`via_core::OnlineRefit`] snapshots use. Per-pair bandit arms are *not*
/// carried: they rebuild lazily from the restored predictor's predictions
/// (a prediction-warm-started bandit, exactly what the batch engine builds
/// at a pair's first call in a window), trading the closed-over-restart
/// in-window arm observations for a snapshot that stays small and
/// deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionSnapshot {
    /// The accumulating window's cells, pending count, and window id.
    pub current: RefitSnapshot,
    /// The training window behind the live predictor, if any.
    pub trained: Option<RefitSnapshot>,
    /// Budget-gate estimator and counters, when gating is enabled.
    pub gate: Option<BudgetGate>,
}

/// The live controller: the in-process API the socket plane, the load
/// generator, and the tests all drive.
pub struct Controller {
    cfg: ServerConfig,
    prior: GeoPrior,
    backbone: BackboneFn,
    predictor: EpochPtr<Predictor>,
    /// Index of the accumulating window (shards lag only inside a roll).
    window: AtomicU64,
    shards: Vec<Mutex<Shard>>,
    gate: Mutex<Option<BudgetGate>>,
    roll: Mutex<RollState>,
    sessions: Mutex<SessionTable>,
    selections: AtomicU64,
    reports: AtomicU64,
    gated: AtomicU64,
    explored: AtomicU64,
    rolls: AtomicU64,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("window", &self.window.load(Ordering::Relaxed))
            .field("shards", &self.shards.len())
            .field("selections", &self.selections.load(Ordering::Relaxed))
            .field("reports", &self.reports.load(Ordering::Relaxed))
            .finish()
    }
}

impl Controller {
    /// Builds a controller serving from `cfg.start`. Before the first
    /// rollover it serves what the batch engine would at the same window:
    /// a predictor fitted on the (empty) preceding window, or the prior-only
    /// cold predictor when starting at window 0.
    pub fn new(cfg: ServerConfig, prior: GeoPrior, backbone: BackboneFn) -> Controller {
        let start = cfg.window.window_of(cfg.start);
        let trained_window = start.prev();
        let initial = match trained_window {
            Some(training) => Predictor::fit(
                &CallHistory::new(),
                training,
                prior.clone(),
                box_backbone(&backbone),
                cfg.predictor,
            ),
            None => Predictor::cold(prior.clone(), box_backbone(&backbone), cfg.predictor),
        };
        let n_shards = cfg.shards.max(1);
        Controller {
            prior,
            backbone,
            predictor: EpochPtr::new(Arc::new(initial)),
            window: AtomicU64::new(start.index),
            shards: (0..n_shards)
                .map(|_| Mutex::new(Shard::new(start.index)))
                .collect(),
            gate: Mutex::new(cfg.budget.map(BudgetGate::new)),
            roll: Mutex::new(RollState {
                trained: CallHistory::new(),
                trained_window,
                obs: via_obs::MetricSink::new(),
            }),
            sessions: Mutex::new(SessionTable::new()),
            selections: AtomicU64::new(0),
            reports: AtomicU64::new(0),
            gated: AtomicU64::new(0),
            explored: AtomicU64::new(0),
            rolls: AtomicU64::new(0),
            cfg,
        }
    }

    /// Rebuilds a controller from a [`SelectionSnapshot`] (graceful
    /// restart). The caller must pass the same `cfg`, `prior`, and
    /// `backbone` the snapshotting controller ran with; the restored
    /// controller then serves bit-identical predictions, carries the same
    /// accumulating statistics, and re-snapshots to the same bytes.
    pub fn restore(
        cfg: ServerConfig,
        prior: GeoPrior,
        backbone: BackboneFn,
        snap: SelectionSnapshot,
    ) -> Controller {
        let ctrl = Controller::new(cfg, prior, backbone);
        if let Some(trained) = snap.trained {
            let mut hist = CallHistory::new();
            for cell in &trained.cells {
                hist.insert_cell(
                    trained.window,
                    cell.pair,
                    cell.option.canonical(),
                    cell.stats.clone(),
                );
            }
            let refitted = Predictor::fit(
                &hist,
                trained.window,
                ctrl.prior.clone(),
                box_backbone(&ctrl.backbone),
                ctrl.cfg.predictor,
            );
            ctrl.predictor.publish(Arc::new(refitted));
            let mut roll = lock(&ctrl.roll);
            roll.trained = hist;
            roll.trained_window = Some(trained.window);
        }
        let current = snap.current.window;
        ctrl.window.store(current.index, Ordering::Release);
        for shard in &ctrl.shards {
            lock(shard).window = current.index;
        }
        for cell in snap.current.cells {
            let option = cell.option.canonical();
            let mut shard = lock(&ctrl.shards[ctrl.shard_of(cell.pair)]);
            if let Some(pred) = fit_cell(&cell.stats, &ctrl.cfg.predictor) {
                shard.cells.insert((cell.pair, option), pred);
            }
            shard
                .history
                .insert_cell(current, cell.pair, option, cell.stats);
        }
        for shard in &ctrl.shards {
            let mut shard = lock(shard);
            shard.pending = shard.history.window_calls(current);
        }
        *lock(&ctrl.gate) = snap.gate;
        ctrl
    }

    /// The controller's static configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Index of the currently accumulating window.
    pub fn window_index(&self) -> u64 {
        self.window.load(Ordering::Acquire)
    }

    /// Number of predictor publishes since startup (the refit epoch).
    pub fn refit_epoch(&self) -> u64 {
        self.predictor.epoch()
    }

    fn shard_of(&self, pair: KeyPair) -> usize {
        let h = splitmix64((u64::from(pair.lo) << 32) | u64::from(pair.hi));
        (h % self.shards.len() as u64) as usize
    }

    fn current_window(&self) -> Window {
        Window {
            index: self.window.load(Ordering::Acquire),
            len: self.cfg.window,
        }
    }

    /// Mirror of the replay engine's lazily built pair state (the `Via`
    /// strategy arm): score every candidate against the published
    /// predictor, prune with the top-k CI closure, and warm-start a
    /// normalized UCB bandit from the predicted means.
    fn build_pair_entry(
        pred: &Predictor,
        pair: KeyPair,
        candidates: &[RelayOption],
        window: u64,
        objective: Metric,
    ) -> PairEntry {
        let scored: Vec<ScoredOption> = candidates
            .iter()
            .map(|&opt| {
                ScoredOption::from_prediction(opt, &pred.predict(pair.lo, pair.hi, opt), objective)
            })
            .collect();
        let direct_mean = scored
            .iter()
            .find(|s| s.option == RelayOption::Direct)
            .map_or(f64::INFINITY, |s| s.mean);
        let mut order = Vec::new();
        let mut selected = Vec::new();
        top_k_into(&scored, &mut order, &mut selected);
        let best_mean = selected.first().map_or(direct_mean, |s| s.mean);
        // Algorithm 3 line 3: normalize by the mean top-k upper bound; arms
        // warm-start from predicted means (3 virtual samples).
        let w = selected.iter().map(|s| s.upper).sum::<f64>() / selected.len().max(1) as f64;
        let bandit = UcbBandit::with_priors(selected.iter().map(|s| (s.option, s.mean)), w, 3);
        bandit.validate();
        PairEntry {
            window,
            bandit,
            best_mean,
            direct_mean,
        }
    }

    /// Decides the relay option for one call. `call_id` seeds the
    /// ε-exploration RNG, so identical request streams select identically.
    pub fn select(
        &self,
        call_id: u64,
        t: SimTime,
        src_key: u32,
        dst_key: u32,
        candidates: &[RelayOption],
    ) -> Selection {
        let started = Instant::now();
        self.ensure_window(self.cfg.window.window_of(t));
        if candidates.is_empty() {
            // Nothing to choose between; don't charge the budget gate.
            self.selections.fetch_add(1, Ordering::Relaxed);
            return Selection {
                option: RelayOption::Direct,
                admitted: true,
                explored: false,
                window: self.window.load(Ordering::Acquire),
            };
        }
        let pred = self.predictor.load();
        let pair = KeyPair::new(src_key, dst_key);
        let mut shard = lock(&self.shards[self.shard_of(pair)]);
        let wi = shard.window;
        let objective = self.cfg.objective;
        let entry = match shard.pairs.entry(pair) {
            Entry::Occupied(mut o) => {
                if o.get().window != wi {
                    *o.get_mut() = Self::build_pair_entry(&pred, pair, candidates, wi, objective);
                }
                o.into_mut()
            }
            Entry::Vacant(v) => v.insert(Self::build_pair_entry(
                &pred, pair, candidates, wi, objective,
            )),
        };
        // Budget gate (§4.6): benefit = predicted direct cost minus best
        // predicted cost. A non-finite benefit (no direct candidate, or a
        // prior-only ∞ direct mean) bypasses the gate — such calls must
        // relay regardless and must not poison the percentile estimator.
        let benefit = entry.direct_mean - entry.best_mean;
        let mut admitted = true;
        if benefit.is_finite() {
            let mut gate = lock(&self.gate);
            if let Some(g) = gate.as_mut() {
                admitted = g.admit(benefit);
                g.validate();
            }
        }
        let mut explored = false;
        let option = if admitted {
            let mut rng = StdRng::seed_from_u64(seed::derive_indexed(
                self.cfg.seed,
                "server.select",
                call_id,
            ));
            if self.cfg.epsilon > 0.0 && rng.random::<f64>() < self.cfg.epsilon {
                explored = true;
                candidates[rng.random_range(0..candidates.len())]
            } else {
                entry.bandit.choose().unwrap_or(RelayOption::Direct)
            }
        } else {
            RelayOption::Direct
        };
        let micros = started.elapsed().as_secs_f64() * 1e6;
        shard.latency.record(micros);
        self.selections.fetch_add(1, Ordering::Relaxed);
        if explored {
            self.explored.fetch_add(1, Ordering::Relaxed);
        }
        if !admitted {
            self.gated.fetch_add(1, Ordering::Relaxed);
        }
        Selection {
            option,
            admitted,
            explored,
            window: wi,
        }
    }

    /// Absorbs the measured outcome of one call: one Welford push, one
    /// single-cell refit, one bandit update — O(1), no window scan. Returns
    /// the window index the report was filed under.
    pub fn report(
        &self,
        t: SimTime,
        src_key: u32,
        dst_key: u32,
        option: RelayOption,
        metrics: &PathMetrics,
    ) -> u64 {
        self.ensure_window(self.cfg.window.window_of(t));
        let pair = KeyPair::new(src_key, dst_key);
        let option = option.canonical();
        let mut shard = lock(&self.shards[self.shard_of(pair)]);
        let window = Window {
            index: shard.window,
            len: self.cfg.window,
        };
        shard.history.record(window, pair, option, metrics);
        shard.pending += 1;
        let fitted = shard
            .history
            .cell(window, pair, option)
            .and_then(|stats| fit_cell(stats, &self.cfg.predictor));
        if let Some(pred) = fitted {
            shard.cells.insert((pair, option), pred);
        }
        if let Some(entry) = shard.pairs.get_mut(&pair) {
            if entry.window == window.index {
                entry.bandit.update(option, metrics[self.cfg.objective]);
                entry.bandit.validate();
            }
        }
        self.reports.fetch_add(1, Ordering::Relaxed);
        window.index
    }

    /// Rolls forward when `w` is ahead of the accumulating window.
    fn ensure_window(&self, w: Window) {
        if w.index <= self.window.load(Ordering::Acquire) {
            return;
        }
        self.roll_to(w);
    }

    /// The window rollover: drains every shard's history and cell map,
    /// solves tomography over the merged history, and publishes the next
    /// predictor — all off the select path (selects keep serving the old
    /// epoch; only same-shard calls wait, briefly, for the drain).
    fn roll_to(&self, next: Window) {
        let mut roll = lock(&self.roll);
        let cur = self.window.load(Ordering::Acquire);
        if next.index <= cur {
            return; // another thread rolled first
        }
        let current_window = Window {
            index: cur,
            len: self.cfg.window,
        };
        let Some(training) = next.prev() else {
            return; // unreachable: next.index > cur >= 0
        };
        let mut merged = CallHistory::new();
        let mut cells: HashMap<(KeyPair, RelayOption), Prediction> = HashMap::new();
        let mut refit_lag = 0u64;
        for shard in &self.shards {
            let mut shard = lock(shard);
            merged.merge(std::mem::take(&mut shard.history));
            cells.extend(shard.cells.drain());
            shard.pairs.clear();
            refit_lag += shard.pending;
            shard.pending = 0;
            shard.window = next.index;
        }
        let published = if training == current_window {
            // Common case: the window that just closed is the training
            // window, and its cell map is already fitted — publish it with a
            // fresh tomography solve, no per-cell pass.
            let tomography = Tomography::fit(
                &merged,
                training,
                self.backbone.as_ref(),
                &self.cfg.predictor.tomography,
            );
            Predictor::from_parts(
                self.cfg.predictor,
                training,
                cells,
                tomography,
                self.prior.clone(),
                box_backbone(&self.backbone),
            )
        } else {
            // Idle gap: the window preceding `next` saw no traffic. Fit on
            // whatever the history holds for it (normally nothing) — the
            // batch engine's empty-window behaviour.
            Predictor::fit(
                &merged,
                training,
                self.prior.clone(),
                box_backbone(&self.backbone),
                self.cfg.predictor,
            )
        };
        let empirical = published.empirical_cells() as u64;
        let segments = published.tomography_segments() as u64;
        self.predictor.publish(Arc::new(published));
        self.window.store(next.index, Ordering::Release);
        merged.prune_before(training.index);
        roll.trained = merged;
        roll.trained_window = Some(training);
        roll.obs.span(
            "server.roll",
            next.index,
            &[
                ("training_window", training.index),
                ("empirical_cells", empirical),
                ("tomography_segments", segments),
                ("refit_lag_reports", refit_lag),
            ],
        );
        self.rolls.fetch_add(1, Ordering::Relaxed);
    }

    /// Deterministic image of the full selection state, in canonical cell
    /// order: equal request streams produce byte-equal snapshots.
    pub fn selection_snapshot(&self) -> SelectionSnapshot {
        let roll = lock(&self.roll);
        let current = self.current_window();
        let mut cells: Vec<CellSnapshot> = Vec::new();
        let mut pending = 0;
        for shard in &self.shards {
            let shard = lock(shard);
            cells.extend(
                shard
                    .history
                    .window_cells(current)
                    .map(|(&(pair, option), stats)| CellSnapshot {
                        pair,
                        option,
                        stats: stats.clone(),
                    }),
            );
            pending += shard.pending;
        }
        cells.sort_by_key(|c| (c.pair, c.option));
        let trained = roll.trained_window.map(|tw| {
            let mut cells: Vec<CellSnapshot> = roll
                .trained
                .window_cells(tw)
                .map(|(&(pair, option), stats)| CellSnapshot {
                    pair,
                    option,
                    stats: stats.clone(),
                })
                .collect();
            cells.sort_by_key(|c| (c.pair, c.option));
            RefitSnapshot {
                window: tw,
                pending: 0,
                cells,
            }
        });
        SelectionSnapshot {
            current: RefitSnapshot {
                window: current,
                pending,
                cells,
            },
            trained,
            gate: lock(&self.gate).clone(),
        }
    }

    /// [`Controller::selection_snapshot`] as a JSON document (the
    /// `Snapshot` RPC payload and the metrics snapshot's `app_state`).
    pub fn selection_snapshot_json(&self) -> String {
        // SelectionSnapshot contains no maps or non-finite floats that
        // could fail serialization; an empty document would only indicate a
        // serializer bug, and the deterministic tests would catch it.
        serde_json::to_string(&self.selection_snapshot()).unwrap_or_default()
    }

    /// Counters and roll spans — the deterministic metric core.
    fn base_sink(&self) -> via_obs::MetricSink {
        let mut sink = via_obs::MetricSink::new();
        sink.inc(
            "server_selections_total",
            self.selections.load(Ordering::Relaxed),
        );
        sink.inc("server_reports_total", self.reports.load(Ordering::Relaxed));
        sink.inc("server_gated_total", self.gated.load(Ordering::Relaxed));
        sink.inc(
            "server_explored_total",
            self.explored.load(Ordering::Relaxed),
        );
        sink.inc("server_rolls_total", self.rolls.load(Ordering::Relaxed));
        sink.inc("server_window_index", self.window.load(Ordering::Acquire));
        let pending: u64 = self.shards.iter().map(|s| lock(s).pending).sum();
        sink.inc("server_refit_pending_reports", pending);
        if let Some(g) = lock(&self.gate).as_ref() {
            sink.inc("server_gate_calls_total", g.total());
            // Stored as parts-per-million so the gauge stays integral (span
            // and counter values are u64 by design).
            sink.inc(
                "server_gate_relayed_ppm",
                (g.relayed_fraction() * 1e6).round() as u64,
            );
        }
        sink.merge(&lock(&self.roll).obs);
        sink
    }

    /// Deterministic metrics snapshot with the selection state embedded as
    /// `app_state`: counters, roll spans, no wall-clock histograms. Equal
    /// request streams serialize to equal bytes.
    pub fn metrics_snapshot(&self) -> via_obs::MetricsSnapshot {
        let app_state = self.selection_snapshot_json();
        let mut snap = self.base_sink().snapshot();
        snap.app_state = Some(app_state);
        snap
    }

    /// Operator-facing snapshot: the deterministic core *plus* the merged
    /// wall-clock selection-latency histogram. Not byte-stable across runs.
    pub fn observability_snapshot(&self) -> via_obs::MetricsSnapshot {
        let app_state = self.selection_snapshot_json();
        let mut sink = self.base_sink();
        sink.merge_histogram("server_select_latency_us", &self.latency_histogram());
        let mut snap = sink.snapshot();
        snap.app_state = Some(app_state);
        snap
    }

    /// The merged per-shard selection-latency histogram (microseconds).
    pub fn latency_histogram(&self) -> via_obs::Histogram {
        let mut merged = via_obs::Histogram::new(via_obs::LATENCY_US);
        for shard in &self.shards {
            merged.merge(&lock(shard).latency);
        }
        merged
    }

    /// Opens a session (socket plane).
    ///
    /// # Errors
    /// [`SessionExhausted`] when the id space under the probe bound is full.
    pub fn open_session(&self) -> Result<u64, SessionExhausted> {
        lock(&self.sessions).open()
    }

    /// True when `id` names a live session.
    pub fn session_live(&self, id: u64) -> bool {
        lock(&self.sessions).is_live(id)
    }

    /// Ends a session (connection closed); stale ids are then rejected.
    pub fn end_session(&self, id: u64) -> bool {
        lock(&self.sessions).close(id)
    }

    /// Number of open sessions.
    pub fn live_sessions(&self) -> usize {
        lock(&self.sessions).live_count()
    }
}

/// Wraps the shared backbone closure in the boxed form `via-core`'s
/// predictor constructors take.
fn box_backbone(
    bb: &BackboneFn,
) -> Box<dyn Fn(via_model::ids::RelayId, via_model::ids::RelayId) -> PathMetrics + Send + Sync> {
    let bb = Arc::clone(bb);
    Box::new(move |a, b| bb(a, b))
}
