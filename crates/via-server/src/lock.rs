//! Poison-tolerant lock helpers.
//!
//! The workspace denies `unwrap`/`expect` in library code, and a poisoned
//! lock in the controller means a handler thread panicked while holding the
//! guard — the protected state is still structurally valid (every mutation
//! below is applied through methods that keep their own invariants), so the
//! server keeps serving rather than cascading the panic into every
//! subsequent request.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, recovering the guard from a poisoned lock.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Read-locks an `RwLock`, recovering from poison.
pub fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Write-locks an `RwLock`, recovering from poison.
pub fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
