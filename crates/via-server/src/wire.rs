//! Wire messages for the live controller's select/report plane.
//!
//! Reuses `via-testbed`'s framing (length-prefixed JSON over TCP, the
//! deadline-bounded [`FrameConn`](via_testbed::protocol::FrameConn) reader)
//! with a message set of its own: the testbed protocol orchestrates probe
//! calls between named clients, while this plane answers *selection*
//! queries — "which relay option should this call take" — and ingests the
//! measured outcome afterwards.

use serde::{Deserialize, Serialize};
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::time::SimTime;

/// Client → controller requests. Every request after [`Request::Hello`]
/// carries the session id issued in [`Response::Welcome`]; a request with a
/// stale or foreign id is rejected with [`ErrorKind::UnknownSession`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open a session. Must be the first frame on a connection.
    Hello,
    /// Ask for a relay selection for one call about to be placed.
    Select {
        /// Session id from the `Welcome`.
        session: u64,
        /// Caller-chosen call identifier; seeds the ε-exploration RNG, so
        /// re-running a trace re-derives the same explore/exploit coin flips.
        call_id: u64,
        /// Call start time on the controller's simulation clock.
        t: SimTime,
        /// Caller's spatial key (AS/prefix granularity bucket).
        src_key: u32,
        /// Callee's spatial key.
        dst_key: u32,
        /// Feasible options for this call, direct path included.
        candidates: Vec<RelayOption>,
    },
    /// Report the measured performance of one completed call.
    Report {
        /// Session id from the `Welcome`.
        session: u64,
        /// Call start time (decides which window absorbs the report).
        t: SimTime,
        /// Caller's spatial key.
        src_key: u32,
        /// Callee's spatial key.
        dst_key: u32,
        /// Option the call actually took.
        option: RelayOption,
        /// Measured path metrics.
        metrics: PathMetrics,
    },
    /// Fetch the controller's deterministic state snapshot (JSON).
    Snapshot {
        /// Session id from the `Welcome`.
        session: u64,
    },
    /// Stop the server (drains connections and exits the accept loop).
    Shutdown {
        /// Session id from the `Welcome`.
        session: u64,
    },
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The session id is not live on this controller (stale id from a
    /// previous connection, or never issued).
    UnknownSession,
    /// No session id could be allocated.
    SessionExhausted,
    /// The request was structurally invalid (e.g. `Hello` on an open
    /// session, or a non-`Hello` first frame).
    BadRequest,
}

/// Controller → client responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Session opened.
    Welcome {
        /// The issued session id.
        session: u64,
    },
    /// Selection decided.
    Selected {
        /// The chosen option.
        option: RelayOption,
        /// False when the budget gate forced the direct path.
        admitted: bool,
        /// True when ε general exploration picked a uniform random option.
        explored: bool,
        /// Control-window index the decision was made in.
        window: u64,
    },
    /// Report absorbed.
    Reported {
        /// Window index the report was filed under.
        window: u64,
    },
    /// Deterministic controller snapshot.
    Snapshot {
        /// The snapshot, as a JSON document (see
        /// [`SelectionSnapshot`](crate::SelectionSnapshot)).
        json: String,
    },
    /// Shutdown acknowledged; the server is draining.
    Bye,
    /// Request rejected.
    Error {
        /// Rejection class.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_model::ids::RelayId;
    use via_testbed::protocol::{read_frame, write_frame};

    #[test]
    fn requests_roundtrip_through_the_frame_codec() {
        let msgs = vec![
            Request::Hello,
            Request::Select {
                session: 7,
                call_id: 42,
                t: SimTime(3600),
                src_key: 1,
                dst_key: 9,
                candidates: vec![
                    RelayOption::Direct,
                    RelayOption::Bounce(RelayId(3)),
                    RelayOption::Transit(RelayId(0), RelayId(1)),
                ],
            },
            Request::Report {
                session: 7,
                t: SimTime(3601),
                src_key: 1,
                dst_key: 9,
                option: RelayOption::Bounce(RelayId(3)),
                metrics: PathMetrics::new(120.0, 0.5, 4.0),
            },
            Request::Snapshot { session: 7 },
            Request::Shutdown { session: 7 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            let decoded: Request = read_frame(&mut cursor).unwrap();
            assert_eq!(&decoded, m);
        }
    }

    #[test]
    fn responses_roundtrip_through_the_frame_codec() {
        let msgs = vec![
            Response::Welcome { session: 1 },
            Response::Selected {
                option: RelayOption::Direct,
                admitted: false,
                explored: false,
                window: 4,
            },
            Response::Reported { window: 4 },
            Response::Snapshot {
                json: "{\"window\":4}".into(),
            },
            Response::Bye,
            Response::Error {
                kind: ErrorKind::UnknownSession,
                detail: "session 9 is not live".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            let decoded: Response = read_frame(&mut cursor).unwrap();
            assert_eq!(&decoded, m);
        }
    }
}
