//! Blocking client for the select/report plane — the load generator, the
//! CLI soak driver, and the integration tests all speak through this.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::time::SimTime;
use via_testbed::protocol::{connect_deadline, FrameConn, FrameError};

use crate::controller::Selection;
use crate::wire::{ErrorKind, Request, Response};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Framing / decode / deadline failure.
    Frame(FrameError),
    /// The controller rejected the request.
    Remote {
        /// Rejection class.
        kind: ErrorKind,
        /// Controller-supplied detail.
        detail: String,
    },
    /// The controller answered with a response of the wrong shape.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "client frame error: {e}"),
            ClientError::Remote { kind, detail } => {
                write!(f, "controller rejected request ({kind:?}): {detail}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One control connection with an open session.
#[derive(Debug)]
pub struct Client {
    conn: FrameConn,
    session: u64,
    timeout: Duration,
}

impl Client {
    /// Connects, performs the `Hello` handshake, and returns a client with
    /// an open session. `timeout` bounds the connect and every RPC.
    ///
    /// # Errors
    /// Connect/frame failures, or a `Remote` error when the controller
    /// refuses the session.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        let stream = connect_deadline(addr, timeout)?;
        let conn = FrameConn::new(stream)?;
        let mut client = Client {
            conn,
            session: 0,
            timeout,
        };
        match client.rpc(&Request::Hello)? {
            Response::Welcome { session } => {
                client.session = session;
                Ok(client)
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The session id issued at connect time.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Overrides the session id echoed on subsequent requests. Test hook:
    /// lets a connection impersonate a stale id to exercise the
    /// [`ErrorKind::UnknownSession`] rejection path.
    pub fn set_session(&mut self, session: u64) {
        self.session = session;
    }

    /// Asks the controller to select a relay option for one call.
    ///
    /// # Errors
    /// Frame failures or a controller-side rejection.
    pub fn select(
        &mut self,
        call_id: u64,
        t: SimTime,
        src_key: u32,
        dst_key: u32,
        candidates: &[RelayOption],
    ) -> Result<Selection, ClientError> {
        let req = Request::Select {
            session: self.session,
            call_id,
            t,
            src_key,
            dst_key,
            candidates: candidates.to_vec(),
        };
        match self.rpc(&req)? {
            Response::Selected {
                option,
                admitted,
                explored,
                window,
            } => Ok(Selection {
                option,
                admitted,
                explored,
                window,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Reports the measured outcome of one call. Returns the window index
    /// the report was filed under.
    ///
    /// # Errors
    /// Frame failures or a controller-side rejection.
    pub fn report(
        &mut self,
        t: SimTime,
        src_key: u32,
        dst_key: u32,
        option: RelayOption,
        metrics: PathMetrics,
    ) -> Result<u64, ClientError> {
        let req = Request::Report {
            session: self.session,
            t,
            src_key,
            dst_key,
            option,
            metrics,
        };
        match self.rpc(&req)? {
            Response::Reported { window } => Ok(window),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the controller's deterministic selection snapshot as JSON.
    ///
    /// # Errors
    /// Frame failures or a controller-side rejection.
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        match self.rpc(&Request::Snapshot {
            session: self.session,
        })? {
            Response::Snapshot { json } => Ok(json),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to shut down, consuming the client.
    ///
    /// # Errors
    /// Frame failures or a controller-side rejection.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        match self.rpc(&Request::Shutdown {
            session: self.session,
        })? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    fn rpc(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.conn.write(req)?;
        let resp: Response = self.conn.read_deadline(Instant::now() + self.timeout)?;
        if let Response::Error { kind, detail } = resp {
            return Err(ClientError::Remote { kind, detail });
        }
        Ok(resp)
    }
}
