//! The socket plane: accept loop and per-connection request handlers.
//!
//! One thread accepts connections (deadline-polled so shutdown is always
//! observed within a poll slice); each connection gets a handler thread
//! reading frames through [`FrameConn::read_deadline`] — never an unbounded
//! socket wait, per the workspace's `socket-wait` lint. A connection's
//! session is closed when the connection ends, whatever the reason, so a
//! reconnecting client holding its old session id gets a typed
//! [`ErrorKind::UnknownSession`] rather than silently adopting state it no
//! longer owns.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use via_testbed::protocol::{accept_deadline, FrameConn, FrameError};

use crate::controller::Controller;
use crate::wire::{ErrorKind, Request, Response};

/// How long the accept loop and handler reads block before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(100);

/// A running server: accept-loop thread plus shutdown plumbing.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    controller: Arc<Controller>,
}

impl ServerHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The controller this server fronts.
    pub fn controller(&self) -> &Arc<Controller> {
        &self.controller
    }

    /// True once a `Shutdown` request (or [`ServerHandle::stop`]) was seen.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown and joins the accept loop (which joins every
    /// handler). Idempotent with a client-initiated `Shutdown`.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Blocks until the accept loop exits (a client sent `Shutdown`).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Binds a loopback listener on an ephemeral port and starts serving
/// `controller`. Returns immediately; use the handle to reach the address
/// and to stop or wait.
///
/// # Errors
/// Propagates bind failures.
pub fn serve(controller: Arc<Controller>) -> io::Result<ServerHandle> {
    serve_on(controller, "127.0.0.1:0".parse().map_err(io::Error::other)?)
}

/// [`serve`] on an explicit address.
///
/// # Errors
/// Propagates bind failures.
pub fn serve_on(controller: Arc<Controller>, addr: SocketAddr) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = {
        let controller = Arc::clone(&controller);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(&listener, &controller, &shutdown))
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        controller,
    })
}

fn accept_loop(listener: &TcpListener, controller: &Arc<Controller>, shutdown: &Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        match accept_deadline(listener, Instant::now() + POLL) {
            Ok(Some((stream, _peer))) => {
                let controller = Arc::clone(controller);
                let shutdown = Arc::clone(shutdown);
                handlers.push(std::thread::spawn(move || {
                    handle_conn(stream, &controller, &shutdown);
                }));
            }
            Ok(None) => {} // poll slice elapsed; re-check shutdown
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Runs one connection: `Hello` handshake, then a request loop until the
/// peer disconnects, errors, or the server shuts down. The session opened
/// here is closed on every exit path.
fn handle_conn(stream: std::net::TcpStream, controller: &Controller, shutdown: &AtomicBool) {
    let Ok(mut conn) = FrameConn::new(stream) else {
        return;
    };
    let Some(session) = handshake(&mut conn, controller, shutdown) else {
        return;
    };
    loop {
        match conn.read_deadline::<Request>(Instant::now() + POLL) {
            Err(FrameError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(_) => break, // peer gone or stream corrupt
            Ok(req) => {
                let resp = dispatch(controller, session, req, shutdown);
                let done = matches!(resp, Response::Bye);
                if conn.write(&resp).is_err() || done {
                    break;
                }
            }
        }
    }
    controller.end_session(session);
}

/// Reads the opening `Hello` and issues a session. Any other first frame is
/// a `BadRequest`; allocation failure is `SessionExhausted`.
fn handshake(conn: &mut FrameConn, controller: &Controller, shutdown: &AtomicBool) -> Option<u64> {
    let req = loop {
        match conn.read_deadline::<Request>(Instant::now() + POLL) {
            Err(FrameError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return None;
                }
            }
            Err(_) => return None,
            Ok(req) => break req,
        }
    };
    if !matches!(req, Request::Hello) {
        let _ = conn.write(&Response::Error {
            kind: ErrorKind::BadRequest,
            detail: "first frame must be Hello".to_string(),
        });
        return None;
    }
    match controller.open_session() {
        Ok(session) => {
            if conn.write(&Response::Welcome { session }).is_err() {
                controller.end_session(session);
                return None;
            }
            Some(session)
        }
        Err(e) => {
            let _ = conn.write(&Response::Error {
                kind: ErrorKind::SessionExhausted,
                detail: e.to_string(),
            });
            None
        }
    }
}

fn check_session(controller: &Controller, mine: u64, claimed: u64) -> Result<(), Response> {
    if claimed == mine && controller.session_live(claimed) {
        Ok(())
    } else {
        Err(Response::Error {
            kind: ErrorKind::UnknownSession,
            detail: format!("session {claimed} is not live on this connection"),
        })
    }
}

fn dispatch(
    controller: &Controller,
    my_session: u64,
    req: Request,
    shutdown: &AtomicBool,
) -> Response {
    match req {
        Request::Hello => Response::Error {
            kind: ErrorKind::BadRequest,
            detail: "session already open".to_string(),
        },
        Request::Select {
            session,
            call_id,
            t,
            src_key,
            dst_key,
            candidates,
        } => match check_session(controller, my_session, session) {
            Err(e) => e,
            Ok(()) => {
                let sel = controller.select(call_id, t, src_key, dst_key, &candidates);
                Response::Selected {
                    option: sel.option,
                    admitted: sel.admitted,
                    explored: sel.explored,
                    window: sel.window,
                }
            }
        },
        Request::Report {
            session,
            t,
            src_key,
            dst_key,
            option,
            metrics,
        } => match check_session(controller, my_session, session) {
            Err(e) => e,
            Ok(()) => Response::Reported {
                window: controller.report(t, src_key, dst_key, option, &metrics),
            },
        },
        Request::Snapshot { session } => match check_session(controller, my_session, session) {
            Err(e) => e,
            Ok(()) => Response::Snapshot {
                json: controller.selection_snapshot_json(),
            },
        },
        Request::Shutdown { session } => match check_session(controller, my_session, session) {
            Err(e) => e,
            Ok(()) => {
                shutdown.store(true, Ordering::Release);
                Response::Bye
            }
        },
    }
}
