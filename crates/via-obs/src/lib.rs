//! # via-obs — deterministic observability for the VIA reproduction
//!
//! A dependency-light metrics/tracing layer (std + serde only) threaded
//! through the replay engine, the predictor/tomography fit pipeline, the
//! bandit, and the §5.5 testbed control plane. It is split in two:
//!
//! * **Deterministic core** — counters (`u64`), fixed-bucket histograms
//!   ([`Histogram`]: `u64` bucket counts plus exact extremes), and
//!   structured [`SpanEvent`]s. Everything here is a pure function of the
//!   seeded workload: merging per-worker sinks at a barrier yields
//!   byte-identical [`MetricsSnapshot`]s for every worker count and rerun.
//! * **Wall-clock timing layer** — opt-in aggregated timings measured via
//!   the [`Stopwatch`] facade. Available in memory for operator summaries,
//!   excluded from serialized snapshots so snapshot diffing remains a sound
//!   determinism check.
//!
//! The parallel recording contract mirrors the replay engine's history-cell
//! merge: each worker records into its own [`MetricSink`] (no shared state,
//! no locks), and the sequential barrier merges shard sinks in shard-index
//! order. Because the core's merge algebra is associative and commutative
//! ([`Histogram::merge`]), the partition does not affect the result.

mod hist;
mod prom;
mod snapshot;
mod time;

pub use hist::{
    BucketLut, Buckets, Histogram, HistogramSnapshot, CI_WIDTH, FRACTION, LATENCY_MS, LATENCY_US,
    MAX_BOUNDS, MOS_DELTA, REGRET,
};
pub use prom::to_prometheus;
pub use snapshot::{Counter, MetricsSnapshot, SpanEvent, SpanField, Timing, TimingEntry};
pub use time::Stopwatch;

use std::collections::BTreeMap;

/// An accumulating metric recorder. Cheap to create per worker/shard;
/// recording never locks. Merge sinks at a sequential point and call
/// [`MetricSink::snapshot`] to freeze the result.
#[derive(Debug, Clone, Default)]
pub struct MetricSink {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    spans: Vec<SpanEvent>,
    timings: BTreeMap<String, Timing>,
    timing_enabled: bool,
}

impl MetricSink {
    /// A sink recording only the deterministic core; [`MetricSink::start`]
    /// hands out disabled stopwatches and timing records are dropped.
    pub fn new() -> MetricSink {
        MetricSink::default()
    }

    /// A sink that additionally aggregates wall-clock timings (the opt-in
    /// nondeterministic layer).
    pub fn with_timing() -> MetricSink {
        MetricSink {
            timing_enabled: true,
            ..MetricSink::default()
        }
    }

    /// Whether the wall-clock timing layer is active.
    pub fn timing_enabled(&self) -> bool {
        self.timing_enabled
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Records `v` into the histogram `name`, creating it over `buckets` on
    /// first use. Call sites must pair each name with one preset.
    pub fn observe(&mut self, name: &str, buckets: Buckets, v: f64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new(buckets);
            h.record(v);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Emits a structured span event. Only call from sequential code (e.g.
    /// the window barrier): span order and content must not depend on how
    /// work was partitioned across workers.
    pub fn span(&mut self, name: &str, index: u64, fields: &[(&str, u64)]) {
        self.spans.push(SpanEvent {
            name: name.to_string(),
            index,
            fields: fields
                .iter()
                .map(|(k, v)| SpanField {
                    key: (*k).to_string(),
                    value: *v,
                })
                .collect(),
        });
    }

    /// Starts a stopwatch: live when the timing layer is enabled, inert
    /// otherwise. Pair with [`MetricSink::time`].
    pub fn start(&self) -> Stopwatch {
        if self.timing_enabled {
            Stopwatch::started()
        } else {
            Stopwatch::disabled()
        }
    }

    /// Folds the stopwatch's elapsed time into the timing aggregate `name`.
    /// Dropped (not recorded) when the timing layer is disabled.
    pub fn time(&mut self, name: &str, sw: Stopwatch) {
        if !self.timing_enabled {
            return;
        }
        let t = self.timings.entry(name.to_string()).or_default();
        t.count += 1;
        t.total_ms += sw.elapsed_ms();
    }

    /// Folds another sink into this one: counters and histogram buckets
    /// add, spans append in call order, timings add. For the deterministic
    /// core this is associative and commutative, so merging per-worker
    /// sinks in any fixed sequential order reproduces the single-worker
    /// recording exactly.
    pub fn merge(&mut self, other: &MetricSink) {
        for (name, v) in &other.counters {
            self.inc(name, *v);
        }
        for (name, h) in &other.hists {
            if let Some(mine) = self.hists.get_mut(name) {
                mine.merge(h);
            } else {
                self.hists.insert(name.clone(), h.clone());
            }
        }
        self.spans.extend(other.spans.iter().cloned());
        for (name, t) in &other.timings {
            let mine = self.timings.entry(name.clone()).or_default();
            mine.count += t.count;
            mine.total_ms += t.total_ms;
        }
    }

    /// Folds a standalone histogram into the histogram `name`, creating it
    /// by clone on first use. Equivalent to replaying every `observe` call
    /// the histogram absorbed.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if let Some(mine) = self.hists.get_mut(name) {
            mine.merge(h);
        } else {
            self.hists.insert(name.to_string(), h.clone());
        }
    }

    /// Folds a [`HotSink`]'s slots into this sink under the schema's names.
    /// Untouched slots (zero counters, empty histograms) are skipped, so the
    /// result is identical to a sink whose counters/histograms were created
    /// lazily on first record — byte-identical snapshots either way.
    pub fn fold_hot(&mut self, schema: &HotSchema, hot: &HotSink) {
        for (name, &v) in schema.counters.iter().zip(&hot.counters) {
            if v > 0 {
                self.inc(name, v);
            }
        }
        for ((name, _), h) in schema.hists.iter().zip(&hot.hists) {
            if h.count() > 0 || h.dropped_nonfinite() > 0 {
                self.merge_histogram(name, h);
            }
        }
    }

    /// The current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The live histogram recorded under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// True when nothing has been recorded (timings included).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
            && self.timings.is_empty()
    }

    /// Freezes the sink into its serializable snapshot. Counters and
    /// histograms come out sorted by name (`BTreeMap` order), spans in
    /// emission order — equal recordings yield byte-equal serializations.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, value)| Counter {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|(name, h)| HistogramSnapshot::of(name, h))
                .collect(),
            spans: self.spans.clone(),
            timings: self
                .timings
                .iter()
                .map(|(name, t)| TimingEntry {
                    name: name.clone(),
                    timing: *t,
                })
                .collect(),
            app_state: None,
        }
    }
}

/// A fixed registry of hot-path metrics, built once before the hot loop.
/// Each registered counter/histogram gets a dense slot index; workers record
/// through [`HotSink`]s cut from the schema and the barrier folds them back
/// into a [`MetricSink`] by name via [`MetricSink::fold_hot`].
#[derive(Debug, Clone, Default)]
pub struct HotSchema {
    counters: Vec<&'static str>,
    hists: Vec<(&'static str, Buckets)>,
}

impl HotSchema {
    /// An empty schema.
    pub fn new() -> HotSchema {
        HotSchema::default()
    }

    /// Registers a counter and returns its slot index.
    pub fn counter(&mut self, name: &'static str) -> usize {
        debug_assert!(!self.counters.contains(&name), "duplicate slot {name}");
        self.counters.push(name);
        self.counters.len() - 1
    }

    /// Registers a histogram over `buckets` and returns its slot index.
    pub fn histogram(&mut self, name: &'static str, buckets: Buckets) -> usize {
        debug_assert!(
            self.hists.iter().all(|(n, _)| *n != name),
            "duplicate slot {name}"
        );
        self.hists.push((name, buckets));
        self.hists.len() - 1
    }

    /// Allocates an empty sink with one slot per registered metric. All
    /// allocation happens here; recording into the sink is allocation-free.
    pub fn make_sink(&self) -> HotSink {
        HotSink {
            counters: vec![0; self.counters.len()],
            hists: self.hists.iter().map(|(_, b)| Histogram::new(*b)).collect(),
        }
    }
}

/// A slot-indexed recorder for the per-call hot loop: counters are plain
/// `u64` bumps, histogram records go straight to the preset's bucket LUT.
/// No names, no map lookups, no branches on an enabled flag — whether
/// metrics are collected at all is decided where the sink is (or isn't)
/// created. Slots come from a [`HotSchema`]; recording with a slot index
/// from a different schema is a logic error (bounds-checked, not detected).
#[derive(Debug, Clone)]
pub struct HotSink {
    counters: Vec<u64>,
    hists: Vec<Histogram>,
}

impl HotSink {
    /// Adds `delta` to the counter in `slot`.
    #[inline]
    pub fn inc(&mut self, slot: usize, delta: u64) {
        self.counters[slot] += delta;
    }

    /// Records `v` into the histogram in `slot`.
    #[inline]
    pub fn observe(&mut self, slot: usize, v: f64) {
        self.hists[slot].record(v);
    }

    /// The live histogram in `slot` (for end-of-batch reads, e.g. recording
    /// a derived quantity before the fold).
    pub fn histogram(&self, slot: usize) -> &Histogram {
        &self.hists[slot]
    }

    /// Resets every slot to empty so the sink can be reused for the next
    /// batch without reallocating.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        for h in &mut self.hists {
            *h = Histogram::new(h.buckets());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut s = MetricSink::new();
        assert_eq!(s.counter("x"), 0);
        s.inc("x", 2);
        s.inc("x", 3);
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.snapshot().counter("x"), 5);
        assert_eq!(s.snapshot().counter("absent"), 0);
    }

    #[test]
    fn sink_merge_matches_single_sink_recording() {
        // Two workers record disjoint halves; the merge must equal one
        // sink that saw everything, regardless of merge order.
        let record = |sink: &mut MetricSink, vals: &[f64]| {
            for &v in vals {
                sink.inc("calls", 1);
                sink.observe("lat", LATENCY_MS, v);
            }
        };
        let mut whole = MetricSink::new();
        record(&mut whole, &[3.0, 40.0, 90.0, 800.0]);

        let (mut a, mut b) = (MetricSink::new(), MetricSink::new());
        record(&mut a, &[3.0, 40.0]);
        record(&mut b, &[90.0, 800.0]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.snapshot(), whole.snapshot());
        assert_eq!(ba.snapshot(), whole.snapshot());
    }

    #[test]
    fn spans_keep_emission_order_and_fields() {
        let mut s = MetricSink::new();
        s.span("w", 0, &[("calls", 7), ("admits", 2)]);
        s.span("w", 1, &[("calls", 5)]);
        let snap = s.snapshot();
        let spans: Vec<_> = snap.spans_named("w").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].fields[0].key, "calls");
        assert_eq!(spans[0].fields[0].value, 7);
        assert_eq!(spans[1].index, 1);
    }

    #[test]
    fn timing_layer_is_opt_in_and_never_serialized() {
        let mut core_only = MetricSink::new();
        let sw = core_only.start();
        core_only.time("t", sw);
        assert!(core_only.is_empty(), "disabled timing must record nothing");

        let mut timed = MetricSink::with_timing();
        let sw = timed.start();
        timed.time("t", sw);
        timed.inc("c", 1);
        let snap = timed.snapshot();
        assert_eq!(snap.timings.len(), 1);

        // Serialized forms are identical whether or not timings were
        // collected — the wall-clock layer never reaches the wire.
        let mut untimed = MetricSink::new();
        untimed.inc("c", 1);
        assert_eq!(
            serde_json::to_string(&snap).ok(),
            serde_json::to_string(&untimed.snapshot()).ok()
        );
        // And a deserialized snapshot carries an empty timing section.
        let back: MetricsSnapshot =
            serde_json::from_str(&serde_json::to_string(&snap).unwrap_or_default())
                .unwrap_or_default();
        assert!(back.timings.is_empty());
        assert_eq!(back.counter("c"), 1);
    }

    #[test]
    fn hot_sink_fold_matches_direct_recording() {
        let mut schema = HotSchema::new();
        let calls = schema.counter("calls");
        let idle = schema.counter("idle"); // never bumped
        let lat = schema.histogram("lat", LATENCY_MS);
        let unused = schema.histogram("unused", CI_WIDTH); // never observed

        let mut direct = MetricSink::new();
        let mut hot = schema.make_sink();
        for v in [3.0, 40.0, 90.0] {
            hot.inc(calls, 1);
            hot.observe(lat, v);
            direct.inc("calls", 1);
            direct.observe("lat", LATENCY_MS, v);
        }
        let mut folded = MetricSink::new();
        folded.fold_hot(&schema, &hot);
        assert_eq!(folded.snapshot(), direct.snapshot());
        // Untouched slots must not materialize metrics.
        assert_eq!(folded.counter("idle"), 0);
        assert!(folded.histogram("unused").is_none());
        let _ = (idle, unused);

        // Clearing makes the sink reusable: a second batch folds cleanly.
        hot.clear();
        hot.inc(calls, 2);
        hot.observe(lat, 700.0);
        folded.fold_hot(&schema, &hot);
        direct.inc("calls", 2);
        direct.observe("lat", LATENCY_MS, 700.0);
        assert_eq!(folded.snapshot(), direct.snapshot());
    }

    #[test]
    fn hot_sink_folds_dropped_only_histograms() {
        // A histogram that saw only non-finite values has count == 0 but
        // must still fold so the drop accounting survives the barrier.
        let mut schema = HotSchema::new();
        let lat = schema.histogram("lat", LATENCY_MS);
        let mut hot = schema.make_sink();
        hot.observe(lat, f64::NAN);
        let mut sink = MetricSink::new();
        sink.fold_hot(&schema, &hot);
        let h = sink.histogram("lat").expect("dropped-only hist folds");
        assert_eq!(h.count(), 0);
        assert_eq!(h.dropped_nonfinite(), 1);
    }

    #[test]
    fn snapshot_json_is_stable_across_reruns() {
        let build = || {
            let mut s = MetricSink::new();
            s.inc("b", 2);
            s.inc("a", 1);
            s.observe("h", CI_WIDTH, 3.5);
            s.span("w", 0, &[("n", 1)]);
            serde_json::to_string(&s.snapshot()).unwrap_or_default()
        };
        assert_eq!(build(), build());
        assert!(!build().is_empty());
    }
}
