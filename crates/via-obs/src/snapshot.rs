//! Serializable snapshot of a [`MetricSink`](crate::MetricSink).
//!
//! The snapshot is the *deterministic core* of the observability layer:
//! everything serialized here is byte-identical across worker counts and
//! reruns of the same seeded workload. Wall-clock timings ride along in
//! memory for operator summaries but are `#[serde(skip)]` — they never
//! reach a serialized snapshot, so snapshot diffing is a sound determinism
//! check.

use serde::{Deserialize, Serialize};

use crate::hist::HistogramSnapshot;

/// One monotonically increasing event count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    /// Metric name (e.g. `replay_calls_total`).
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// One deterministic key/value annotation on a span event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanField {
    /// Field key (e.g. `gate_admitted`).
    pub key: String,
    /// Field value. Only integral values are allowed so span streams stay
    /// byte-stable; durations belong in the wall-clock timing layer.
    pub value: u64,
}

/// A structured event describing one unit of engine progress (for the
/// replay engine: one window). Span events are emitted only from sequential
/// code — the window barrier, not the parallel shards — so their order and
/// content are independent of the worker count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span name (e.g. `replay.window`).
    pub name: String,
    /// Ordinal within the stream of same-named spans (e.g. window index).
    pub index: u64,
    /// Deterministic annotations, in emission order.
    pub fields: Vec<SpanField>,
}

/// Aggregated wall-clock timing for one label — the opt-in nondeterministic
/// layer. Never serialized.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Timing {
    /// Number of timed intervals.
    pub count: u64,
    /// Total elapsed wall-clock time, milliseconds.
    pub total_ms: f64,
}

/// Serializable timing entry (in-memory only; see [`Timing`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingEntry {
    /// Timing label (e.g. `replay.refit`).
    pub name: String,
    /// Aggregated wall-clock numbers.
    pub timing: Timing,
}

/// The full serialized form of a metric sink. Field order is fixed and all
/// sequences are sorted (counters/histograms by name, spans by emission
/// order), so equal recordings serialize to equal bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<Counter>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All span events, in emission order.
    pub spans: Vec<SpanEvent>,
    /// Wall-clock timings, sorted by label. Excluded from serialization:
    /// two byte-identical snapshots may carry different timings.
    #[serde(skip)]
    pub timings: Vec<TimingEntry>,
    /// Opaque application-state payload riding with the snapshot — e.g. a
    /// controller's serialized selection state, so one snapshot file carries
    /// everything a graceful restart needs. The payload must itself be
    /// deterministic for snapshot diffing to stay a sound determinism check.
    /// `None` (serialized as `null`) unless a producer sets it; replay
    /// snapshots never do.
    pub app_state: Option<String>,
}

impl MetricsSnapshot {
    /// The value of a counter, or 0 if it was never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The histogram recorded under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// All spans with the given name, in emission order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanEvent> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// One-line human summary: sizes of each section plus total wall time,
    /// for CLI footers.
    pub fn brief(&self) -> String {
        let wall: f64 = self.timings.iter().map(|t| t.timing.total_ms).sum();
        format!(
            "{} counters, {} histograms, {} spans, {} timings ({:.0} ms timed)",
            self.counters.len(),
            self.histograms.len(),
            self.spans.len(),
            self.timings.len(),
            wall
        )
    }
}
